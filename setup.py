"""Legacy setuptools shim (offline environments lack the wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Application Classification through Monitoring and "
        "Learning of Resource Consumption Patterns' (Zhang & Figueiredo, IPDPS 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={"console_scripts": ["repro-qa = repro.qa.cli:main"]},
)
