"""Model-cache memoization keyed by (ClassifierConfig, seed)."""

import threading

import pytest

from repro.core.config import ClassifierConfig
from repro.serve.cache import ModelCache


class FakeModel:
    """Stands in for a trained classifier; carries its own config."""

    def __init__(self, config):
        self.config = config


@pytest.fixture()
def calls():
    return []


@pytest.fixture()
def cache(calls):
    def trainer(config, seed):
        calls.append((config, seed))
        return FakeModel(config)

    return ModelCache(trainer=trainer)


class TestMemoization:
    def test_trains_once_per_key(self, cache, calls):
        first = cache.get(seed=0)
        second = cache.get(seed=0)
        assert first is second
        assert len(calls) == 1

    def test_none_config_means_default(self, cache, calls):
        a = cache.get(None, seed=0)
        b = cache.get(ClassifierConfig(), seed=0)
        assert a is b
        assert len(calls) == 1

    def test_distinct_seeds_distinct_models(self, cache, calls):
        assert cache.get(seed=0) is not cache.get(seed=1)
        assert len(calls) == 2

    def test_distinct_configs_distinct_models(self, cache, calls):
        a = cache.get(ClassifierConfig(k=3))
        b = cache.get(ClassifierConfig(k=5))
        assert a is not b
        assert calls == [(ClassifierConfig(k=3), 0), (ClassifierConfig(k=5), 0)]

    def test_clock_excluded_from_key(self, cache, calls):
        a = cache.get(ClassifierConfig())
        b = cache.get(ClassifierConfig().with_clock(lambda: 0.0))
        assert a is b
        assert len(calls) == 1

    def test_compute_dtypes_never_alias(self, cache, calls):
        # A float64 reference model and a float32 tolerance model of
        # otherwise equal tuning are distinct cache entries, whichever
        # order they are requested in.
        f64 = ClassifierConfig(compute_dtype="float64")
        f32 = ClassifierConfig(compute_dtype="float32")
        a = cache.get(f64)
        b = cache.get(f32)
        assert a is not b
        assert a.config.compute_dtype == "float64"
        assert b.config.compute_dtype == "float32"
        # Repeat gets hit their own entry, never the other dtype's.
        assert cache.get(f64) is a
        assert cache.get(f32) is b
        assert calls == [(f64, 0), (f32, 0)]


class TestPut:
    def test_put_preseeds_cache(self, cache, calls):
        model = FakeModel(ClassifierConfig())
        cache.put(model, seed=7)
        assert cache.get(ClassifierConfig(), seed=7) is model
        assert calls == []


class TestStats:
    def test_hit_miss_counters(self, cache):
        cache.get(seed=0)
        cache.get(seed=0)
        cache.get(seed=1)
        assert cache.stats == {"hits": 1, "misses": 2, "models": 2, "evictions": 0}
        assert len(cache) == 2

    def test_clear_resets(self, cache):
        cache.get(seed=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {"hits": 0, "misses": 0, "models": 0, "evictions": 0}


class TestEviction:
    def make(self, calls, max_models):
        def trainer(config, seed):
            calls.append((config, seed))
            return FakeModel(config)

        return ModelCache(trainer=trainer, max_models=max_models)

    def test_bound_must_be_positive(self, calls):
        with pytest.raises(ValueError):
            self.make(calls, max_models=0)

    def test_unbounded_by_default(self, cache, calls):
        for seed in range(50):
            cache.get(seed=seed)
        assert len(cache) == 50
        assert cache.stats["evictions"] == 0

    def test_evicts_least_recently_used(self, calls):
        cache = self.make(calls, max_models=2)
        cache.get(seed=0)
        cache.get(seed=1)
        cache.get(seed=0)  # refresh seed 0 — seed 1 is now LRU
        cache.get(seed=2)  # evicts seed 1
        assert len(cache) == 2
        assert cache.stats["evictions"] == 1
        cache.get(seed=0)  # still cached: no retraining
        assert [s for _, s in calls] == [0, 1, 2]
        cache.get(seed=1)  # was evicted: retrained
        assert [s for _, s in calls] == [0, 1, 2, 1]

    def test_put_respects_bound(self, calls):
        cache = self.make(calls, max_models=1)
        cache.get(seed=0)
        cache.put(FakeModel(ClassifierConfig()), seed=9)
        assert len(cache) == 1
        assert cache.stats["evictions"] == 1


class TestConcurrency:
    def test_concurrent_gets_share_one_training(self, calls):
        trained = threading.Barrier(9, timeout=10.0)

        def trainer(config, seed):
            calls.append((config, seed))
            return FakeModel(config)

        cache = ModelCache(trainer=trainer)
        models = []

        def fetch():
            models.append(cache.get(seed=0))
            trained.wait()

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for t in threads:
            t.start()
        trained.wait()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(m is models[0] for m in models)

    def test_same_key_waiters_block_on_inflight_training(self, calls):
        # The first caller is held *inside* the trainer; same-key callers
        # arriving meanwhile must wait for that run, not launch their own.
        entered = threading.Event()
        release = threading.Event()

        def trainer(config, seed):
            calls.append((config, seed))
            entered.set()
            assert release.wait(10.0)
            return FakeModel(config)

        cache = ModelCache(trainer=trainer)
        models = []

        def fetch():
            models.append(cache.get(seed=0))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        threads[0].start()
        assert entered.wait(10.0)
        for t in threads[1:]:
            t.start()
        release.set()
        for t in threads:
            t.join(10.0)
        assert not any(t.is_alive() for t in threads)
        assert len(calls) == 1
        assert all(m is models[0] for m in models)

    def test_different_keys_train_in_parallel(self):
        # Both trainers must be in flight at once: if the cache lock were
        # held across training, the second could never reach the barrier.
        barrier = threading.Barrier(2, timeout=10.0)

        def trainer(config, seed):
            barrier.wait()
            return FakeModel(config)

        cache = ModelCache(trainer=trainer)
        out = {}

        def fetch(seed):
            out[seed] = cache.get(seed=seed)

        threads = [threading.Thread(target=fetch, args=(seed,)) for seed in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not any(t.is_alive() for t in threads)
        assert out[0] is not out[1]
        assert cache.stats["models"] == 2

    def test_failed_training_releases_key_for_retry(self, calls):
        def trainer(config, seed):
            calls.append((config, seed))
            if len(calls) == 1:
                raise RuntimeError("transient")
            return FakeModel(config)

        cache = ModelCache(trainer=trainer)
        with pytest.raises(RuntimeError):
            cache.get(seed=0)
        model = cache.get(seed=0)
        assert isinstance(model, FakeModel)
        assert len(calls) == 2
