"""Tier-1 gate: the repro source tree must be clean under repro-qa.

Runs the full rule set over ``src/`` with the committed baseline and
fails on any non-grandfathered finding — warnings included, matching
``python -m repro.qa check src/ --strict`` in CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.qa import Analyzer, Baseline

REPO = Path(__file__).resolve().parent.parent


def test_source_tree_is_qa_clean():
    baseline = Baseline.load(REPO / "qa-baseline.txt")
    report = Analyzer(baseline=baseline).run([REPO / "src"])
    assert report.num_files > 50, "QA run should cover the whole src tree"
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"repro-qa findings in src/:\n{rendered}"


def test_baseline_entries_all_still_fire():
    """Every grandfathered fingerprint must match a live finding.

    A baseline entry whose finding was since fixed is stale and must be
    deleted, otherwise it could mask a future regression at the same
    location.
    """
    baseline = Baseline.load(REPO / "qa-baseline.txt")
    report = Analyzer(baseline=baseline).run([REPO / "src"])
    live = {f.fingerprint() for f in report.grandfathered}
    stale = baseline.fingerprints - live
    assert not stale, f"stale baseline entries (fixed but not removed): {sorted(stale)}"
