"""Tests for automated relevance/redundancy feature selection."""

import numpy as np
import pytest

from repro.core.feature_selection import (
    correlation_ratio,
    pearson_redundancy_matrix,
    select_features,
)


def labelled_data(m=300, seed=0):
    """Features with known relevance structure.

    f0: perfectly class-determined; f1: noisy copy of f0 (redundant);
    f2: pure noise; f3: weakly class-related.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=m)
    f0 = labels * 10.0
    f1 = f0 + 0.01 * rng.normal(size=m)
    f2 = rng.normal(size=m)
    f3 = labels + 3.0 * rng.normal(size=m)
    return np.column_stack([f0, f1, f2, f3]), labels


class TestCorrelationRatio:
    def test_perfectly_determined_is_one(self):
        x, labels = labelled_data()
        assert correlation_ratio(x[:, 0], labels) == pytest.approx(1.0)

    def test_noise_is_near_zero(self):
        x, labels = labelled_data()
        assert correlation_ratio(x[:, 2], labels) < 0.05

    def test_constant_feature_is_zero(self):
        labels = np.array([0, 0, 1, 1])
        assert correlation_ratio(np.full(4, 3.0), labels) == 0.0

    def test_bounded_zero_one(self):
        x, labels = labelled_data()
        for j in range(x.shape[1]):
            eta = correlation_ratio(x[:, j], labels)
            assert 0.0 <= eta <= 1.0 + 1e-12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            correlation_ratio(np.zeros((2, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            correlation_ratio(np.zeros(3), np.zeros(4, dtype=int))


class TestRedundancyMatrix:
    def test_diagonal_ones(self):
        x, _ = labelled_data()
        corr = pearson_redundancy_matrix(x)
        assert np.allclose(np.diag(corr), 1.0)

    def test_redundant_pair_detected(self):
        x, _ = labelled_data()
        corr = pearson_redundancy_matrix(x)
        assert corr[0, 1] > 0.99

    def test_independent_pair_low(self):
        x, _ = labelled_data()
        corr = pearson_redundancy_matrix(x)
        assert corr[0, 2] < 0.2

    def test_symmetric(self):
        x, _ = labelled_data()
        corr = pearson_redundancy_matrix(x)
        assert np.allclose(corr, corr.T)

    def test_constant_column_zeroed(self):
        x = np.column_stack([np.full(10, 5.0), np.arange(10.0)])
        corr = pearson_redundancy_matrix(x)
        assert corr[0, 1] == 0.0


class TestSelectFeatures:
    def test_selects_relevant_drops_redundant(self):
        x, labels = labelled_data()
        result = select_features(x, labels, ["a", "b", "noise", "weak"], max_features=3)
        assert result.selected[0] == "a"  # most relevant
        assert "b" in result.rejected_redundant  # near-copy of a
        assert "noise" not in result.selected

    def test_max_features_respected(self):
        x, labels = labelled_data()
        result = select_features(
            x, labels, ["a", "b", "c", "d"], max_features=1, redundancy_threshold=1.0
        )
        assert len(result.selected) == 1

    def test_relevance_scores_reported(self):
        x, labels = labelled_data()
        result = select_features(x, labels, ["a", "b", "c", "d"])
        assert set(result.relevance) == {"a", "b", "c", "d"}
        assert result.relevance["a"] > result.relevance["c"]

    def test_validation(self):
        x, labels = labelled_data()
        with pytest.raises(ValueError):
            select_features(x, labels[:-1], ["a", "b", "c", "d"])
        with pytest.raises(ValueError):
            select_features(x, labels, ["a", "b"])
        with pytest.raises(ValueError):
            select_features(x, labels, ["a", "b", "c", "d"], max_features=0)
        with pytest.raises(ValueError):
            select_features(x, labels, ["a", "b", "c", "d"], redundancy_threshold=0.0)

    def test_nothing_relevant_raises(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 2))
        labels = rng.integers(0, 2, size=100)
        with pytest.raises(ValueError, match="relevance"):
            select_features(x, labels, ["a", "b"], min_relevance=0.9)

    def test_recovers_expert_style_metrics_from_runs(self):
        """On real training data the automated selector should rank the
        class-defining metrics (swap/io/net/cpu) above constants."""
        # Construct gmond-like features: 3 classes stressing 3 metrics.
        rng = np.random.default_rng(1)
        m = 300
        labels = np.repeat([0, 1, 2], m // 3)
        cpu = np.where(labels == 0, 95.0, 3.0) + rng.normal(0, 2, m)
        io = np.where(labels == 1, 900.0, 10.0) + rng.normal(0, 30, m)
        net = np.where(labels == 2, 5e7, 1e3) + rng.normal(0, 1e5, m)
        const = np.full(m, 33.0)
        x = np.column_stack([cpu, io, net, const])
        result = select_features(x, labels, ["cpu", "io", "net", "mem_total"], max_features=3)
        assert set(result.selected) == {"cpu", "io", "net"}
