"""Tests for the max-min fair contention model."""

import pytest

from repro.sim.contention import (
    KAPPA_HOST,
    KAPPA_VM,
    InstanceDemand,
    allocate,
    interference_efficiency,
    max_min_factors,
)
from repro.vm.cluster import Cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand


def make_cluster(vcpus=2, hosts=1, vms_per_host=1, **cap_kwargs):
    c = Cluster()
    vm_idx = 0
    for h in range(hosts):
        c.add_host(f"h{h}", ResourceCapacity(**cap_kwargs) if cap_kwargs else None)
        for _ in range(vms_per_host):
            c.create_vm(f"h{h}", f"vm{vm_idx}", vcpus=vcpus)
            vm_idx += 1
    return c


class TestMaxMinFactors:
    def test_all_fit(self):
        assert max_min_factors([1.0, 2.0], 10.0) == [1.0, 1.0]

    def test_zero_demands_unconstrained(self):
        assert max_min_factors([0.0, 5.0], 3.0) == [1.0, 0.6]

    def test_small_users_fully_satisfied(self):
        """A tiny demand next to a hog keeps factor 1 — the core property
        proportional sharing lacks."""
        factors = max_min_factors([25.0, 1000.0, 1000.0], 1400.0)
        assert factors[0] == 1.0
        assert factors[1] == pytest.approx(687.5 / 1000.0)
        assert factors[2] == factors[1]

    def test_equal_heavy_demands_split_evenly(self):
        factors = max_min_factors([3.0, 3.0, 3.0], 2.0)
        assert factors == pytest.approx([2.0 / 9.0 * 3.0 / 3.0] * 3)
        # each gets 2/3 of capacity demanded 3 → factor 2/9... verify grant sums
        granted = sum(f * 3.0 for f in factors)
        assert granted == pytest.approx(2.0)

    def test_capacity_never_exceeded(self):
        demands = [0.5, 1.2, 7.0, 0.1]
        factors = max_min_factors(demands, 3.0)
        assert sum(d * f for d, f in zip(demands, factors)) <= 3.0 + 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            max_min_factors([1.0], 0.0)
        with pytest.raises(ValueError):
            max_min_factors([-1.0], 1.0)

    def test_empty(self):
        assert max_min_factors([], 1.0) == []


class TestInterference:
    def test_solo_is_unit(self):
        assert interference_efficiency(1, 1) == 1.0

    def test_vm_co_runners_penalize_more_than_host(self):
        same_vm = interference_efficiency(2, 2)
        other_vm = interference_efficiency(1, 2)
        assert same_vm < other_vm < 1.0

    def test_formula(self):
        assert interference_efficiency(3, 5) == pytest.approx(
            1.0 / (1.0 + 2 * KAPPA_VM + 2 * KAPPA_HOST)
        )

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            interference_efficiency(0, 1)
        with pytest.raises(ValueError):
            interference_efficiency(3, 2)


class TestAllocate:
    def test_empty(self):
        report = allocate([])
        assert report.fractions == {}

    def test_idle_instance_full_fraction(self):
        c = make_cluster()
        report = allocate([InstanceDemand(0, c.vm("vm0"), ResourceDemand(mem_mb=10.0))])
        assert report.fractions[0] == 1.0

    def test_uncontended_full_speed(self):
        c = make_cluster()
        d = ResourceDemand(cpu_user=0.9)
        report = allocate([InstanceDemand(0, c.vm("vm0"), d)])
        assert report.fractions[0] == 1.0

    def test_cpu_contention_within_vm(self):
        c = make_cluster(vcpus=2)
        vm = c.vm("vm0")
        demands = [InstanceDemand(i, vm, ResourceDemand(cpu_user=1.0)) for i in range(3)]
        report = allocate(demands)
        eff = interference_efficiency(3, 3)
        for i in range(3):
            assert report.fractions[i] == pytest.approx((2.0 / 3.0) * eff)

    def test_vcpu_cap_binds_before_host(self):
        c = make_cluster(vcpus=1)
        vm = c.vm("vm0")
        demands = [InstanceDemand(i, vm, ResourceDemand(cpu_user=1.0)) for i in range(2)]
        report = allocate(demands)
        eff = interference_efficiency(2, 2)
        for i in range(2):
            assert report.fractions[i] == pytest.approx(0.5 * eff)

    def test_cpu_small_user_not_punished(self):
        """A light CPU job next to heavy ones keeps its full share."""
        c = make_cluster(vcpus=2)
        vm = c.vm("vm0")
        demands = [
            InstanceDemand(0, vm, ResourceDemand(cpu_user=0.1)),
            InstanceDemand(1, vm, ResourceDemand(cpu_user=1.0)),
            InstanceDemand(2, vm, ResourceDemand(cpu_user=1.0)),
        ]
        report = allocate(demands)
        assert report.cpu_factor[0] == 1.0
        assert report.cpu_factor[1] < 1.0

    def test_disk_contention_host_level(self):
        c = make_cluster(vms_per_host=2)
        d = ResourceDemand(cpu_user=0.1, io_bi=1000.0)
        demands = [
            InstanceDemand(0, c.vm("vm0"), d),
            InstanceDemand(1, c.vm("vm1"), d),
        ]
        report = allocate(demands)
        # 2000 blocks demanded vs 1400 capacity → each ~0.7.
        assert report.disk_factor[0] == pytest.approx(0.7, abs=0.01)

    def test_disk_small_user_not_punished(self):
        """The CH3D-next-to-PostMark property (paper Table 4)."""
        c = make_cluster(vms_per_host=2)
        light = InstanceDemand(0, c.vm("vm0"), ResourceDemand(cpu_user=0.9, io_bo=40.0))
        heavy = InstanceDemand(1, c.vm("vm1"), ResourceDemand(cpu_user=0.2, io_bi=700.0, io_bo=700.0))
        report = allocate([light, heavy])
        assert report.disk_factor[0] == 1.0
        assert report.disk_factor[1] < 1.0

    def test_network_contention_per_direction(self):
        c = make_cluster(vms_per_host=2, net_bytes_per_s=100.0)
        out_hog = InstanceDemand(0, c.vm("vm0"), ResourceDemand(net_out=80.0, cpu_user=0.01))
        in_user = InstanceDemand(1, c.vm("vm1"), ResourceDemand(net_in=80.0, cpu_user=0.01))
        report = allocate([out_hog, in_user])
        # Different directions: both fit (full duplex).
        assert report.net_factor[0] == 1.0
        assert report.net_factor[1] == 1.0

    def test_network_remote_mirror_constrains(self):
        """Two clients on different hosts hitting one server host share its NIC."""
        c = make_cluster(hosts=3, vms_per_host=1, net_bytes_per_s=100.0)
        server_host = c.hosts["h2"]
        d = ResourceDemand(net_out=80.0, cpu_user=0.01)
        demands = [
            InstanceDemand(0, c.vm("vm0"), d, remote_host=server_host),
            InstanceDemand(1, c.vm("vm1"), d, remote_host=server_host),
        ]
        report = allocate(demands)
        # 160 B/s into the server NIC of 100 → each factor 0.625.
        assert report.net_factor[0] == pytest.approx(0.625)
        assert report.net_factor[1] == pytest.approx(0.625)

    def test_same_host_remote_not_double_counted(self):
        c = make_cluster(vms_per_host=2, net_bytes_per_s=100.0)
        host = c.hosts["h0"]
        d = ResourceDemand(net_out=80.0, cpu_user=0.01)
        report = allocate([InstanceDemand(0, c.vm("vm0"), d, remote_host=host)])
        assert report.net_factor[0] == 1.0

    def test_reference_cores_speed_scaling(self):
        """A 2.4 GHz host absorbs 2.67 reference cores of demand."""
        c = make_cluster(vcpus=2, cpu_mhz=2400.0)
        vm = c.vm("vm0")
        # One VM capped at 2 vcpus: per-VM cap still binds at 2.0.
        demands = [InstanceDemand(i, vm, ResourceDemand(cpu_user=1.0)) for i in range(2)]
        report = allocate(demands)
        assert report.cpu_factor[0] == pytest.approx(1.0)

    def test_grants_match_fractions(self):
        c = make_cluster()
        d = ResourceDemand(cpu_user=0.5, io_bi=100.0)
        report = allocate([InstanceDemand(0, c.vm("vm0"), d)])
        g = report.grants[0]
        assert g.io_bi == pytest.approx(100.0 * report.fractions[0])

    def test_detached_vm_rejected(self):
        from repro.vm.machine import VirtualMachine

        vm = VirtualMachine("orphan")
        with pytest.raises(ValueError, match="not attached"):
            allocate([InstanceDemand(0, vm, ResourceDemand(cpu_user=1.0))])
