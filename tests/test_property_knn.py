"""Property-based tests for the k-NN classifier (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.knn import KNeighborsClassifier, pairwise_sq_distances


def pools(min_n=5, max_n=40, dims=2, n_classes=3):
    def build(draw):
        n = draw(st.integers(min_n, max_n))
        x = draw(
            arrays(
                np.float64,
                (n, dims),
                elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            )
        )
        y = draw(
            arrays(np.int64, (n,), elements=st.integers(0, n_classes - 1))
        )
        return x, y

    return st.composite(build)()


@given(pool=pools())
@settings(max_examples=60, deadline=None)
def test_training_point_with_unique_position_self_classifies_k1(pool):
    x, y = pool
    # Quantize and deduplicate so distinct points are well separated
    # (distances below GEMM-expansion float noise are not meaningful).
    x = np.round(x, 1)
    _, idx = np.unique(x, axis=0, return_index=True)
    x, y = x[np.sort(idx)], y[np.sort(idx)]
    if len(x) < 1:
        return
    knn = KNeighborsClassifier(k=1).fit(x, y)
    assert (knn.predict(x) == y).all()


@given(pool=pools())
@settings(max_examples=60, deadline=None)
def test_prediction_is_always_a_neighbor_label(pool):
    x, y = pool
    if len(x) < 3:
        return
    knn = KNeighborsClassifier(k=3).fit(x, y)
    probe = x.mean(axis=0, keepdims=True)
    idx, _ = knn.kneighbors(probe)
    pred = knn.predict(probe)[0]
    assert pred in set(y[idx[0]])


@given(pool=pools())
@settings(max_examples=40, deadline=None)
def test_neighbor_distances_sorted(pool):
    x, y = pool
    if len(x) < 3:
        return
    knn = KNeighborsClassifier(k=3).fit(x, y)
    _, dist = knn.kneighbors(x)
    assert np.all(np.diff(dist, axis=1) >= -1e-9)


@given(pool=pools(), shift=st.floats(-50, 50, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_translation_invariance(pool, shift):
    """k-NN on Euclidean distance is invariant to translating all data."""
    x, y = pool
    if len(x) < 3:
        return
    probe = np.array([[1.5, -2.5]])
    a = KNeighborsClassifier(k=3).fit(x, y).predict(probe)
    b = KNeighborsClassifier(k=3).fit(x + shift, y).predict(probe + shift)
    assert a[0] == b[0]


@given(
    a=arrays(np.float64, (6, 3), elements=st.floats(-1e4, 1e4, allow_nan=False)),
    b=arrays(np.float64, (4, 3), elements=st.floats(-1e4, 1e4, allow_nan=False)),
)
@settings(max_examples=60, deadline=None)
def test_pairwise_distances_symmetric_and_non_negative(a, b):
    d_ab = pairwise_sq_distances(a, b)
    d_ba = pairwise_sq_distances(b, a)
    assert np.all(d_ab >= 0)
    assert np.allclose(d_ab, d_ba.T, rtol=1e-7, atol=1e-4)


@given(pool=pools(min_n=9))
@settings(max_examples=30, deadline=None)
def test_chunked_prediction_equivalent(pool):
    x, y = pool
    knn_big = KNeighborsClassifier(k=3, chunk_size=1024).fit(x, y)
    knn_small = KNeighborsClassifier(k=3, chunk_size=2).fit(x, y)
    probes = x[::2]
    assert np.array_equal(knn_big.predict(probes), knn_small.predict(probes))
