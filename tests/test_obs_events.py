"""Tests for the span-correlated event journal and its wired call sites."""

import json

import pytest

from repro import obs
from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    EventJournal,
    EventRecord,
    render_events_jsonl,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class ManualClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestEventJournal:
    def test_bounded_with_dropped_count(self):
        journal = EventJournal(capacity=2)
        for i in range(5):
            journal.append(EventRecord(float(i), f"e{i}", None, ()))
        assert journal.capacity == 2
        assert len(journal) == 2
        assert [r.name for r in journal.records()] == ["e3", "e4"]
        assert journal.dropped == 3

    def test_resize_keeps_newest(self):
        journal = EventJournal(capacity=10)
        for i in range(6):
            journal.append(EventRecord(float(i), f"e{i}", None, ()))
        journal.resize(3)
        assert journal.capacity == 3
        assert [r.name for r in journal.records()] == ["e3", "e4", "e5"]
        with pytest.raises(ValueError):
            journal.resize(0)

    def test_clear_keeps_capacity(self):
        journal = EventJournal(capacity=7)
        journal.append(EventRecord(0.0, "e", None, ()))
        journal.clear()
        assert len(journal) == 0
        assert journal.capacity == 7

    def test_default_capacity(self):
        assert EventJournal().capacity == DEFAULT_EVENT_CAPACITY


class TestRegistryEvents:
    def test_event_records_clock_and_fields(self):
        clock = ManualClock(3.5)
        reg = MetricsRegistry(clock=clock)
        reg.event("db.saved", path="/tmp/x.json", runs="4")
        (record,) = reg.events()
        assert record == EventRecord(
            3.5, "db.saved", None, (("path", "/tmp/x.json"), ("runs", "4"))
        )

    def test_event_correlates_to_enclosing_span(self):
        reg = MetricsRegistry(clock=ManualClock())
        with reg.span("outer"):
            with reg.span("inner"):
                reg.event("during.inner")
            reg.event("during.outer")
        reg.event("outside")
        inner_evt, outer_evt, outside = reg.events()
        spans = {s.name: s for s in reg.spans()}
        assert inner_evt.span_id == spans["inner"].span_id
        assert outer_evt.span_id == spans["outer"].span_id
        assert outside.span_id is None

    def test_event_increments_rate_counter(self):
        reg = MetricsRegistry(clock=ManualClock())
        reg.event("x.happened")
        reg.event("x.happened")
        assert reg.counter("obs.events", event="x.happened").value == 2.0

    def test_to_dict_and_jsonl(self):
        reg = MetricsRegistry(clock=ManualClock(1.0))
        with reg.span("s"):
            reg.event("a", k="v")
        text = render_events_jsonl(reg.events())
        assert text.endswith("\n")
        payload = json.loads(text.splitlines()[0])
        assert payload == {
            "t_s": 1.0,
            "name": "a",
            "span_id": reg.spans()[0].span_id,
            "fields": {"k": "v"},
        }
        assert render_events_jsonl([]) == ""


class TestFacade:
    def test_disabled_facade_discards_events(self):
        obs.disable()
        obs.event("ignored", reason="off")
        assert obs.events() == []

    def test_enabled_facade_records(self):
        obs.enable()
        obs.event("kept")
        assert [e.name for e in obs.events()] == ["kept"]


class TestWiredCallSites:
    """The event() calls wired into product code actually fire."""

    def test_db_save_event(self, tmp_path):
        from repro.core.labels import ClassComposition
        from repro.db.records import RunRecord
        from repro.db.store import ApplicationDB

        obs.enable()
        comp = ClassComposition(fractions=(0.0, 1.0, 0.0, 0.0, 0.0))
        db = ApplicationDB()
        db.add_run(
            RunRecord(
                application="postmark",
                node="VM1",
                t0=0.0,
                t1=1.0,
                num_samples=3,
                application_class=comp.dominant(),
                composition=comp,
            )
        )
        target = tmp_path / "db.json"
        db.save(target)
        (event,) = [e for e in obs.events() if e.name == "db.saved"]
        fields = dict(event.fields)
        assert fields["path"] == str(target)
        assert fields["applications"] == "1"
        assert fields["runs"] == "1"

    def test_model_cache_eviction_event(self):
        from repro.serve.cache import ModelCache

        obs.enable()
        cache = ModelCache(trainer=lambda config, seed: object(), max_models=1)
        cache.get(seed=0)
        cache.get(seed=1)  # evicts seed 0
        (event,) = [e for e in obs.events() if e.name == "serve.cache.evicted"]
        assert dict(event.fields) == {"seed": "0", "retained": "1"}

    def test_online_attach_detach_events(self):
        from repro.core.online import OnlineClassifier
        from repro.core.pipeline import ApplicationClassifier
        from repro.monitoring.multicast import MulticastChannel

        from tests.test_core_pipeline import synthetic_training

        obs.enable()
        trained = ApplicationClassifier().train(synthetic_training())
        online = OnlineClassifier(trained, MulticastChannel())
        online.attach()
        online.detach()
        names = [e.name for e in obs.events()]
        assert names.count("online.attach") == 1
        assert names.count("online.detach") == 1

    def test_service_overload_and_drain_events(self, classifier):
        from repro.errors import ServiceOverloadedError
        from repro.experiments.fleet import profile_fleet
        from repro.serve.service import ClassificationService

        obs.enable()
        fleet = profile_fleet(1, seed=100)
        # One worker, batch window long enough that the queue backs up.
        service = ClassificationService(
            classifier, batch_size=1, max_wait_s=30.0, max_queue=1, workers=1
        )
        try:
            service.submit(fleet[0])
            with pytest.raises(ServiceOverloadedError):
                for _ in range(10):
                    service.submit(fleet[0])
        finally:
            service.shutdown(drain=False)
        names = [e.name for e in obs.events()]
        assert "serve.overloaded" in names
        assert "serve.drain.begin" in names
        assert "serve.drain.end" in names
