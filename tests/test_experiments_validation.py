"""Tests for the classification-ability validation module."""

import pytest

from repro.core.labels import SnapshotClass
from repro.experiments.validation import ConfusionMatrix, validate_workloads
from repro.vm.resources import ResourceDemand
from repro.workloads.base import constant_workload


class TestConfusionMatrix:
    def test_accuracy(self):
        m = ConfusionMatrix()
        m.record(SnapshotClass.CPU, SnapshotClass.CPU)
        m.record(SnapshotClass.IO, SnapshotClass.IO)
        m.record(SnapshotClass.IO, SnapshotClass.MEM)
        assert m.total == 3
        assert m.accuracy() == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            ConfusionMatrix().accuracy()

    def test_precision_recall(self):
        m = ConfusionMatrix()
        m.record(SnapshotClass.IO, SnapshotClass.IO)
        m.record(SnapshotClass.MEM, SnapshotClass.IO)
        m.record(SnapshotClass.MEM, SnapshotClass.MEM)
        assert m.precision(SnapshotClass.IO) == pytest.approx(0.5)
        assert m.recall(SnapshotClass.IO) == 1.0
        assert m.recall(SnapshotClass.MEM) == pytest.approx(0.5)
        # Untouched classes default to 1.0 by convention.
        assert m.precision(SnapshotClass.NET) == 1.0
        assert m.recall(SnapshotClass.NET) == 1.0

    def test_render_contains_counts(self):
        m = ConfusionMatrix()
        m.record(SnapshotClass.CPU, SnapshotClass.CPU)
        text = m.render()
        assert "CPU" in text
        assert "1" in text
        assert len(text.splitlines()) == 6


class TestValidateWorkloads:
    def test_simple_suite(self, classifier):
        workloads = [
            constant_workload(
                "v-cpu", ResourceDemand(cpu_user=0.9, cpu_system=0.04, mem_mb=20.0), 60.0,
                expected_class="CPU",
            ),
            constant_workload(
                "v-io",
                ResourceDemand(cpu_user=0.08, cpu_system=0.12, io_bi=500.0, io_bo=500.0, mem_mb=20.0),
                60.0,
                expected_class="IO",
            ),
        ]
        report = validate_workloads(classifier, workloads, seed=901)
        assert report.matrix.accuracy() == 1.0
        assert report.misclassified() == []
        assert [r.workload_name for r in report.runs] == ["v-cpu", "v-io"]

    def test_rejects_mixed_intent(self, classifier):
        w = constant_workload("x", ResourceDemand(cpu_user=0.5), 10.0, expected_class="MIXED")
        with pytest.raises(ValueError, match="non-class intent"):
            validate_workloads(classifier, [w])

    def test_rejects_empty(self, classifier):
        with pytest.raises(ValueError):
            validate_workloads(classifier, [])

    def test_generated_suite_generalization(self, classifier):
        """Random workloads nobody hand-modelled still classify well."""
        from repro.workloads.synth import generate_suite

        suite = generate_suite(per_class=2, seed=5)
        report = validate_workloads(classifier, suite, seed=950)
        assert report.matrix.accuracy() >= 0.75
