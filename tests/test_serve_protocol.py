"""The 1.2.0 unified ``Classifier`` protocol and its deprecation shims."""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import short_cpu_workload
from repro.core.config import ClassifierConfig
from repro.core.online import OnlineClassifier
from repro.ingest import IngestPlane, MulticastChannel, synthetic_fleet
from repro.manager.service import ResourceManager
from repro.serve.batch import BatchClassifier
from repro.serve.protocol import Classifier
from repro.sim.execution import profiled_run


class FakeModelSource:
    """Injectable stand-in for a ModelCache: records what was requested."""

    def __init__(self, classifier):
        self.classifier = classifier
        self.requests = []

    def get(self, config=None, seed=0):
        self.requests.append((config, seed))
        return self.classifier


class TestProtocolConformance:
    def test_online_classifier_satisfies_protocol(self, classifier):
        online = OnlineClassifier(classifier, MulticastChannel())
        assert isinstance(online, Classifier)

    def test_batch_classifier_satisfies_protocol(self, classifier):
        assert isinstance(BatchClassifier(classifier), Classifier)

    def test_resource_manager_satisfies_protocol(self, classifier):
        assert isinstance(ResourceManager(classifier=classifier), Classifier)

    def test_protocol_rejects_unrelated_types(self):
        assert not isinstance(object(), Classifier)


class TestFromConfigFactories:
    def test_online_from_config(self, classifier):
        source = FakeModelSource(classifier)
        config = ClassifierConfig()
        online = OnlineClassifier.from_config(
            config, MulticastChannel(), model_source=source, seed=7
        )
        assert online.classifier is classifier
        assert source.requests == [(config, 7)]
        assert online.attached

    def test_online_from_config_accepts_a_plane(self, classifier):
        online = OnlineClassifier.from_config(
            ClassifierConfig(),
            IngestPlane(),
            model_source=FakeModelSource(classifier),
        )
        assert online.pull_mode

    def test_batch_from_config(self, classifier):
        source = FakeModelSource(classifier)
        batch = BatchClassifier.from_config(ClassifierConfig(), model_source=source)
        assert batch.classifier is classifier

    def test_manager_from_config_is_lazy(self, classifier):
        source = FakeModelSource(classifier)
        manager = ResourceManager.from_config(ClassifierConfig(), seed=3, model_cache=source)
        assert manager.classifier is None, "model fetched on first use, not at build"
        assert manager.ensure_trained() is classifier
        assert source.requests == [(ClassifierConfig(), 3)]


class TestDeprecationShims:
    def test_classify_announcement_warns_and_delegates(self, classifier):
        channel = MulticastChannel()
        online = OnlineClassifier(classifier, channel)
        announcement = synthetic_fleet(1, 1, seed=0)[0]
        with pytest.warns(DeprecationWarning, match="classify_announcement"):
            legacy = online.classify_announcement(announcement)
        assert legacy == online.classify(announcement)

    def test_batch_classify_many_warns_and_delegates(self, classifier):
        run = profiled_run(short_cpu_workload(), seed=13)
        batch = BatchClassifier(classifier)
        with pytest.warns(DeprecationWarning, match="classify_many"):
            legacy = batch.classify_many([run.series])
        current = batch.classify_batch([run.series])
        assert legacy[0].application_class == current[0].application_class
        assert np.array_equal(legacy[0].class_vector, current[0].class_vector)

    def test_manager_classify_many_warns_and_delegates(self, classifier):
        manager = ResourceManager(classifier=classifier, seed=21)
        with pytest.warns(DeprecationWarning, match="classify_many"):
            results = manager.classify_many([short_cpu_workload()])
        assert len(results) == 1
        assert results[0].application_class is not None


class TestProtocolVerbs:
    def test_classify_batch_matches_classify(self, classifier):
        online = OnlineClassifier(classifier, MulticastChannel())
        announcements = synthetic_fleet(2, 3, seed=1)
        batched = online.classify_batch(announcements)
        singles = [online.classify(a) for a in announcements]
        assert batched == singles
        assert online.classify_batch([]) == []

    def test_manager_classify_stream_yields_per_drain(self, classifier):
        manager = ResourceManager(classifier=classifier)
        plane = IngestPlane()
        for announcement in synthetic_fleet(2, 10, seed=2):
            plane.push(announcement.node, announcement.timestamp, announcement.values)
        batches = [plane.drain(flush=True)]
        results = list(manager.classify_stream(iter(batches)))
        assert len(results) == 1
        assert len(results[0]) == 2, "one result per node in the window"

    def test_batch_classify_stream(self, classifier):
        batch = BatchClassifier(classifier)
        plane = IngestPlane()
        for announcement in synthetic_fleet(3, 8, seed=3):
            plane.push(announcement.node, announcement.timestamp, announcement.values)
        windows = [plane.drain(flush=True)]
        (results,) = list(batch.classify_stream(iter(windows)))
        assert len(results) == 3

    def test_classify_requires_attachment(self, classifier):
        online = OnlineClassifier(classifier, MulticastChannel())
        online.detach()
        announcement = synthetic_fleet(1, 1, seed=0)[0]
        with pytest.raises(RuntimeError, match="detached"):
            online.classify(announcement)
        online.attach()
        assert online.classify(announcement) is not None
