"""Tests for PhysicalHost, VirtualMachine, and the memory model."""

import pytest

from repro.vm.machine import (
    OS_BASE_MEM_MB,
    PAGING_BURST_HIGH,
    PAGING_BURST_LEN_TICKS,
    PAGING_BURST_LOW,
    PAGING_BURST_PERIOD_TICKS,
    PAGING_RATE_CAP_KBPS,
    PhysicalHost,
    VirtualMachine,
    paging_burst_multiplier,
)
from repro.vm.resources import ResourceDemand


class TestMemoryModel:
    def test_no_paging_when_fits(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        p = vm.memory_pressure(100.0)
        assert not p.is_paging
        assert p.efficiency == 1.0
        assert p.swap_in_kbps == 0.0

    def test_paging_when_overflowing(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        p = vm.memory_pressure(400.0)
        assert p.is_paging
        assert p.overflow_mb == pytest.approx(400.0 - (256.0 - OS_BASE_MEM_MB))
        assert 0.0 < p.efficiency < 1.0
        assert p.swap_in_kbps > 0.0
        assert p.io_amplification == 2.0

    def test_paging_rate_capped(self):
        vm = VirtualMachine("v", mem_mb=32.0)
        p = vm.memory_pressure(500.0)
        assert p.swap_in_kbps == PAGING_RATE_CAP_KBPS

    def test_efficiency_decreases_with_overflow(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        e1 = vm.memory_pressure(300.0).efficiency
        e2 = vm.memory_pressure(500.0).efficiency
        assert e2 < e1 < 1.0

    def test_negative_working_set_rejected(self):
        with pytest.raises(ValueError):
            VirtualMachine("v").memory_pressure(-1.0)

    def test_specseis_b_calibration(self):
        """Medium SPECseis96 in a 32 MB VM: efficiency ≈ 0.37 gives the
        paper's ~1.46x runtime stretch."""
        vm = VirtualMachine("v", mem_mb=32.0)
        p = vm.memory_pressure(210.0)
        assert p.efficiency == pytest.approx(0.37, abs=0.05)


class TestEffectiveDemand:
    def test_pass_through_when_no_pressure(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        d = ResourceDemand(cpu_user=0.9, mem_mb=50.0)
        assert vm.effective_demand(d) is d

    def test_paging_injects_swap(self):
        vm = VirtualMachine("v", mem_mb=64.0)
        d = ResourceDemand(cpu_user=0.5, mem_mb=300.0)
        eff = vm.effective_demand(d)
        assert eff.swap_in > 0.0
        assert eff.swap_out > 0.0
        assert eff.cpu_user == 0.5

    def test_cached_io_mostly_absorbed_when_healthy(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        d = ResourceDemand(cpu_user=0.9, io_cached=400.0, mem_mb=50.0)
        eff = vm.effective_demand(d)
        assert eff.io_cached == 0.0
        assert eff.io_bi + eff.io_bo == pytest.approx(400.0 * 0.05)

    def test_cached_io_hits_disk_under_pressure(self):
        vm = VirtualMachine("v", mem_mb=32.0)
        d = ResourceDemand(cpu_user=0.9, io_cached=400.0, mem_mb=210.0)
        eff = vm.effective_demand(d)
        assert eff.io_bi + eff.io_bo >= 400.0  # full miss

    def test_paging_intensity_scales_swap_rate(self):
        vm = VirtualMachine("v", mem_mb=32.0)
        full = vm.effective_demand(ResourceDemand(mem_mb=210.0, cpu_user=0.5))
        gentle = vm.effective_demand(
            ResourceDemand(mem_mb=210.0, cpu_user=0.5, paging_intensity=0.3)
        )
        assert gentle.swap_in == pytest.approx(full.swap_in * 0.3)

    def test_shared_vm_working_set_raises_pressure(self):
        """Co-located jobs share RAM: a small job in a thrashing VM pages."""
        vm = VirtualMachine("v", mem_mb=256.0)
        d = ResourceDemand(cpu_user=0.5, mem_mb=50.0)
        alone = vm.effective_demand(d)
        crowded = vm.effective_demand(d, vm_working_set_mb=500.0)
        assert alone.swap_in == 0.0
        assert crowded.swap_in > 0.0

    def test_swap_attributed_by_working_set_share(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        small = vm.effective_demand(
            ResourceDemand(cpu_user=0.5, mem_mb=100.0), vm_working_set_mb=500.0
        )
        big = vm.effective_demand(
            ResourceDemand(cpu_user=0.5, mem_mb=400.0), vm_working_set_mb=500.0
        )
        assert big.swap_in == pytest.approx(small.swap_in * 4.0)

    def test_vm_working_set_cannot_undercut_own(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        with pytest.raises(ValueError):
            vm.effective_demand(ResourceDemand(mem_mb=100.0), vm_working_set_mb=50.0)

    def test_burst_pattern_applied_with_tick(self):
        vm = VirtualMachine("v", mem_mb=32.0)
        d = ResourceDemand(cpu_user=0.5, mem_mb=210.0)
        burst = vm.effective_demand(d, tick=0)
        quiet = vm.effective_demand(d, tick=PAGING_BURST_LEN_TICKS)
        assert burst.swap_in > quiet.swap_in


class TestBurstMultiplier:
    def test_period_structure(self):
        values = [paging_burst_multiplier(t) for t in range(PAGING_BURST_PERIOD_TICKS)]
        assert values[:PAGING_BURST_LEN_TICKS] == [PAGING_BURST_HIGH] * PAGING_BURST_LEN_TICKS
        assert all(v == PAGING_BURST_LOW for v in values[PAGING_BURST_LEN_TICKS:])

    def test_periodicity(self):
        assert paging_burst_multiplier(0) == paging_burst_multiplier(PAGING_BURST_PERIOD_TICKS)

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            paging_burst_multiplier(-1)


class TestGauges:
    def test_update_memory_gauges(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        vm.update_memory_gauges(100.0)
        assert vm.counters.mem_used_kb == pytest.approx((OS_BASE_MEM_MB + 100.0) * 1024.0)
        assert vm.counters.swap_used_kb == 0.0
        vm.update_memory_gauges(400.0)
        assert vm.counters.swap_used_kb > 0.0

    def test_cache_shrinks_under_use(self):
        vm = VirtualMachine("v", mem_mb=256.0)
        vm.update_memory_gauges(10.0)
        roomy = vm.counters.mem_cached_kb
        vm.update_memory_gauges(200.0)
        assert vm.counters.mem_cached_kb < roomy


class TestHostAttachment:
    def test_attach_detach(self):
        host = PhysicalHost("h")
        vm = VirtualMachine("v")
        host.attach(vm)
        assert vm.host is host
        assert host.committed_mem_mb() == vm.mem_mb
        back = host.detach("v")
        assert back is vm
        assert vm.host is None

    def test_attach_duplicate_name_rejected(self):
        host = PhysicalHost("h")
        host.attach(VirtualMachine("v"))
        with pytest.raises(ValueError):
            host.attach(VirtualMachine("v"))

    def test_attach_already_placed_rejected(self):
        h1, h2 = PhysicalHost("h1"), PhysicalHost("h2")
        vm = VirtualMachine("v")
        h1.attach(vm)
        with pytest.raises(ValueError):
            h2.attach(vm)

    def test_detach_missing_raises(self):
        with pytest.raises(KeyError):
            PhysicalHost("h").detach("ghost")

    def test_vm_validation(self):
        with pytest.raises(ValueError):
            VirtualMachine("v", mem_mb=0.0)
        with pytest.raises(ValueError):
            VirtualMachine("v", vcpus=0)
