"""The typed error hierarchy and its backward-compatible dual inheritance."""

import pytest

from repro.errors import (
    EmptySeriesError,
    NotTrainedError,
    ReproError,
    ServiceOverloadedError,
    UnknownApplicationError,
    UnknownPolicyError,
)

#: Every concrete error with the builtin type the pre-1.1 API raised.
LEGACY_TYPES = [
    (NotTrainedError, RuntimeError),
    (EmptySeriesError, ValueError),
    (UnknownApplicationError, KeyError),
    (UnknownPolicyError, ValueError),
    (ServiceOverloadedError, RuntimeError),
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type,_", LEGACY_TYPES)
    def test_all_derive_from_repro_error(self, error_type, _):
        assert issubclass(error_type, ReproError)

    @pytest.mark.parametrize("error_type,legacy", LEGACY_TYPES)
    def test_dual_inheritance(self, error_type, legacy):
        assert issubclass(error_type, legacy)

    @pytest.mark.parametrize("error_type,legacy", LEGACY_TYPES)
    def test_old_except_clauses_still_catch(self, error_type, legacy):
        with pytest.raises(legacy):
            raise error_type("boom")

    @pytest.mark.parametrize("error_type,_", LEGACY_TYPES)
    def test_one_blanket_except_catches_everything(self, error_type, _):
        with pytest.raises(ReproError):
            raise error_type("boom")


class TestMessages:
    def test_unknown_application_message_not_garbled(self):
        # Plain KeyError.__str__ would repr() the message; ours must not.
        message = "application 'ghost' has no learned runs"
        assert str(UnknownApplicationError(message)) == message

    def test_other_messages_pass_through(self):
        assert str(NotTrainedError("classifier not trained")) == "classifier not trained"


class TestRaisedFromCore:
    def test_classify_before_training(self, short_cpu_run):
        from repro.core.pipeline import ApplicationClassifier

        clf = ApplicationClassifier()
        with pytest.raises(NotTrainedError):
            clf.classify_series(short_cpu_run.series)
        # Pre-1.1 callers caught RuntimeError; they still do.
        with pytest.raises(RuntimeError):
            clf.classify_series(short_cpu_run.series)

    def test_empty_series_rejected(self, classifier):
        import numpy as np

        from repro.metrics.catalog import NUM_METRICS
        from repro.metrics.series import SnapshotSeries

        empty = SnapshotSeries(
            node="VM1",
            timestamps=np.empty(0, dtype=np.float64),
            matrix=np.empty((NUM_METRICS, 0), dtype=np.float64),
        )
        with pytest.raises(EmptySeriesError):
            classifier.classify_series(empty)

    def test_manager_unknown_application(self):
        from repro.manager.service import ResourceManager

        with pytest.raises(UnknownApplicationError):
            ResourceManager().class_of("ghost")

    def test_manager_unknown_policy(self):
        from repro.manager.service import ResourceManager

        with pytest.raises(UnknownPolicyError):
            ResourceManager().schedule(["a"], machines=1, policy="vibes")
