"""Tests for the repro.obs metrics registry and facade."""

import math
import threading

import pytest

from repro import obs
from repro.obs.registry import (
    DEFAULT_TRACE_CAPACITY,
    EVENT_CAPACITY_ENV,
    TRACE_CAPACITY_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    histogram_quantile,
)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = Gauge("active")
        g.set(10.0)
        g.inc(5.0)
        g.dec(3.0)
        assert g.value == 12.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        bounds, cumulative, total, count = h.snapshot()
        assert bounds == (0.1, 1.0, 10.0)
        assert cumulative == (1, 3, 4, 5)  # le 0.1, 1.0, 10.0, +Inf
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_histogram_boundary_lands_in_bucket(self):
        """An observation equal to a bound counts into that bucket (le)."""
        h = Histogram("lat", buckets=(1.0,))
        h.observe(1.0)
        _, cumulative, _, _ = h.snapshot()
        assert cumulative == (1, 1)

    def test_histogram_validates_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 0.5))


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        h = Histogram("lat", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(histogram_quantile((1.0,), (0, 0), 0.5))

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram("lat", buckets=(10.0,))
        h.observe(3.0)  # exact position inside the bucket is unknown
        # p50 of one observation in [0, 10] interpolates to the midpoint.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_interpolation_between_bounds(self):
        # 100 observations uniformly into (1.0, 2.0]: cumulative (0, 100, 100).
        assert histogram_quantile((1.0, 2.0), (0, 100, 100), 0.5) == pytest.approx(1.5)
        assert histogram_quantile((1.0, 2.0), (0, 100, 100), 0.9) == pytest.approx(1.9)

    def test_quantile_in_inf_bucket_clamps_to_highest_bound(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(50.0)  # lands beyond the last finite bound
        assert h.quantile(0.99) == 1.0

    def test_extreme_quantiles(self):
        cumulative = (10, 20, 20)
        assert histogram_quantile((1.0, 2.0), cumulative, 0.0) == pytest.approx(0.0)
        assert histogram_quantile((1.0, 2.0), cumulative, 1.0) == pytest.approx(2.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile((1.0,), (0, 0), 1.5)
        with pytest.raises(ValueError, match="one longer"):
            histogram_quantile((1.0,), (0, 0, 0), 0.5)

    def test_skips_empty_leading_buckets(self):
        # All mass in the last finite bucket; empty buckets before it
        # must not capture the quantile.
        assert histogram_quantile((0.1, 1.0, 10.0), (0, 0, 5, 5), 0.5) == pytest.approx(5.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1") is reg.counter("a", x="1")

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1", y="2") is reg.counter("a", y="2", x="1")

    def test_distinct_labels_are_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("a", node="VM1")
        b = reg.counter("a", node="VM2")
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_kind_mismatch_raises_type_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")
        reg.gauge("y")
        with pytest.raises(TypeError):
            reg.counter("y")

    def test_instruments_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", node="VM2")
        reg.counter("a", node="VM1")
        names = [(i.name, i.labels) for i in reg.instruments()]
        assert names == sorted(names)

    def test_reset_drops_everything(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        reg.counter("a").inc()
        with reg.span("s"):
            pass
        reg.reset()
        assert reg.instruments() == []
        assert reg.spans() == []

    def test_counter_thread_safety_exact_count(self):
        """Concurrent increments never lose updates."""
        reg = MetricsRegistry()
        c = reg.counter("threads.events")
        per_thread, n_threads = 2000, 8
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == float(per_thread * n_threads)

    def test_get_or_create_thread_safety(self):
        """Racing get-or-create converges on a single instrument."""
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(reg.counter("race"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestCapacities:
    def test_defaults(self):
        reg = MetricsRegistry()
        assert reg.trace_capacity == DEFAULT_TRACE_CAPACITY

    def test_explicit_capacities_bound_rings(self):
        reg = MetricsRegistry(clock=lambda: 0.0, trace_capacity=2, event_capacity=3)
        for i in range(5):
            with reg.span(f"s{i}"):
                pass
            reg.event(f"e{i}")
        assert [s.name for s in reg.spans()] == ["s3", "s4"]
        assert [e.name for e in reg.events()] == ["e2", "e3", "e4"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(trace_capacity=0)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(TRACE_CAPACITY_ENV, "7")
        monkeypatch.setenv(EVENT_CAPACITY_ENV, "9")
        reg = MetricsRegistry()
        assert reg.trace_capacity == 7
        assert reg.event_capacity == 9

    def test_env_junk_ignored(self, monkeypatch):
        monkeypatch.setenv(TRACE_CAPACITY_ENV, "not-a-number")
        monkeypatch.setenv(EVENT_CAPACITY_ENV, "-5")
        reg = MetricsRegistry()
        assert reg.trace_capacity == DEFAULT_TRACE_CAPACITY
        assert reg.event_capacity > 0

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TRACE_CAPACITY_ENV, "7")
        assert MetricsRegistry(trace_capacity=3).trace_capacity == 3

    def test_set_trace_capacity_keeps_newest(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        for i in range(4):
            with reg.span(f"s{i}"):
                pass
        reg.set_trace_capacity(2)
        assert [s.name for s in reg.spans()] == ["s2", "s3"]
        with pytest.raises(ValueError):
            reg.set_trace_capacity(0)

    def test_reset_preserves_capacities(self):
        reg = MetricsRegistry(clock=lambda: 0.0, trace_capacity=2, event_capacity=3)
        with reg.span("s"):
            pass
        reg.event("e")
        reg.reset()
        assert reg.spans() == []
        assert reg.events() == []
        assert reg.trace_capacity == 2
        assert reg.event_capacity == 3
        for i in range(5):
            with reg.span(f"s{i}"):
                pass
        assert len(reg.spans()) == 2  # the ring is still bounded

    def test_enable_configures_and_resizes_capacities(self):
        reg = obs.enable(trace_capacity=2)
        assert reg.trace_capacity == 2
        # Already enabled: a further enable() resizes in place.
        again = obs.enable(trace_capacity=5, event_capacity=6)
        assert again is reg
        assert reg.trace_capacity == 5
        assert reg.event_capacity == 6


class TestSpanIds:
    def test_ids_are_monotone_from_one(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        with reg.span("a"):
            pass
        with reg.span("b"):
            pass
        ids = [s.span_id for s in reg.spans()]
        assert ids == [1, 2]

    def test_parent_id_threads_through_nesting(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        by_name = {s.name: s for s in reg.spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_current_span_id_tracks_stack(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        assert reg.current_span_id() is None
        with reg.span("a"):
            outer = reg.current_span_id()
            assert outer is not None
            with reg.span("b"):
                assert reg.current_span_id() == outer + 1
            assert reg.current_span_id() == outer
        assert reg.current_span_id() is None

    def test_null_registry_has_no_span_id(self):
        assert NullRegistry().current_span_id() is None


class TestNullRegistry:
    def test_null_instruments_are_shared_noops(self):
        reg = NullRegistry()
        c = reg.counter("a")
        assert c is reg.counter("b", any="label")
        c.inc()
        assert c.value == 0.0
        g = reg.gauge("g")
        g.set(5.0)
        g.inc()
        g.dec()
        assert g.value == 0.0
        h = reg.histogram("h")
        h.observe(1.0)
        assert h.count == 0
        assert reg.instruments() == []
        assert reg.spans() == []
        reg.reset()  # harmless

    def test_null_span_never_reads_clock(self):
        calls = []

        def clock():
            calls.append(1)
            return 0.0

        reg = NullRegistry()
        with reg.span("s", clock=clock):
            pass
        assert calls == []


class TestFacade:
    def test_disabled_by_default_in_tests(self):
        assert not obs.enabled()
        assert isinstance(obs.get_registry(), NullRegistry)

    def test_enable_swaps_live_registry(self):
        reg = obs.enable()
        assert obs.enabled()
        assert isinstance(reg, MetricsRegistry)
        assert obs.get_registry() is reg
        obs.counter("facade.events").inc()
        assert reg.counter("facade.events").value == 1.0

    def test_enable_is_idempotent_and_keeps_data(self):
        reg = obs.enable()
        obs.counter("kept").inc()
        again = obs.enable()
        assert again is reg
        assert again.counter("kept").value == 1.0

    def test_enable_can_replace_clock(self):
        obs.enable()
        fake = lambda: 42.0  # noqa: E731
        reg = obs.enable(clock=fake)
        assert reg.clock is fake

    def test_disable_reverts_to_noop(self):
        obs.enable()
        obs.counter("gone").inc()
        obs.disable()
        assert not obs.enabled()
        obs.counter("gone").inc()  # no-op, no error
        assert obs.get_registry().instruments() == []

    def test_reset_while_disabled_is_noop(self):
        obs.reset()
        assert not obs.enabled()
