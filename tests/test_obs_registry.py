"""Tests for the repro.obs metrics registry and facade."""

import threading

import pytest

from repro import obs
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = Gauge("active")
        g.set(10.0)
        g.inc(5.0)
        g.dec(3.0)
        assert g.value == 12.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        bounds, cumulative, total, count = h.snapshot()
        assert bounds == (0.1, 1.0, 10.0)
        assert cumulative == (1, 3, 4, 5)  # le 0.1, 1.0, 10.0, +Inf
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_histogram_boundary_lands_in_bucket(self):
        """An observation equal to a bound counts into that bucket (le)."""
        h = Histogram("lat", buckets=(1.0,))
        h.observe(1.0)
        _, cumulative, _, _ = h.snapshot()
        assert cumulative == (1, 1)

    def test_histogram_validates_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 0.5))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1") is reg.counter("a", x="1")

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1", y="2") is reg.counter("a", y="2", x="1")

    def test_distinct_labels_are_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("a", node="VM1")
        b = reg.counter("a", node="VM2")
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_kind_mismatch_raises_type_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")
        reg.gauge("y")
        with pytest.raises(TypeError):
            reg.counter("y")

    def test_instruments_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", node="VM2")
        reg.counter("a", node="VM1")
        names = [(i.name, i.labels) for i in reg.instruments()]
        assert names == sorted(names)

    def test_reset_drops_everything(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        reg.counter("a").inc()
        with reg.span("s"):
            pass
        reg.reset()
        assert reg.instruments() == []
        assert reg.spans() == []

    def test_counter_thread_safety_exact_count(self):
        """Concurrent increments never lose updates."""
        reg = MetricsRegistry()
        c = reg.counter("threads.events")
        per_thread, n_threads = 2000, 8
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == float(per_thread * n_threads)

    def test_get_or_create_thread_safety(self):
        """Racing get-or-create converges on a single instrument."""
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(reg.counter("race"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestNullRegistry:
    def test_null_instruments_are_shared_noops(self):
        reg = NullRegistry()
        c = reg.counter("a")
        assert c is reg.counter("b", any="label")
        c.inc()
        assert c.value == 0.0
        g = reg.gauge("g")
        g.set(5.0)
        g.inc()
        g.dec()
        assert g.value == 0.0
        h = reg.histogram("h")
        h.observe(1.0)
        assert h.count == 0
        assert reg.instruments() == []
        assert reg.spans() == []
        reg.reset()  # harmless

    def test_null_span_never_reads_clock(self):
        calls = []

        def clock():
            calls.append(1)
            return 0.0

        reg = NullRegistry()
        with reg.span("s", clock=clock):
            pass
        assert calls == []


class TestFacade:
    def test_disabled_by_default_in_tests(self):
        assert not obs.enabled()
        assert isinstance(obs.get_registry(), NullRegistry)

    def test_enable_swaps_live_registry(self):
        reg = obs.enable()
        assert obs.enabled()
        assert isinstance(reg, MetricsRegistry)
        assert obs.get_registry() is reg
        obs.counter("facade.events").inc()
        assert reg.counter("facade.events").value == 1.0

    def test_enable_is_idempotent_and_keeps_data(self):
        reg = obs.enable()
        obs.counter("kept").inc()
        again = obs.enable()
        assert again is reg
        assert again.counter("kept").value == 1.0

    def test_enable_can_replace_clock(self):
        obs.enable()
        fake = lambda: 42.0  # noqa: E731
        reg = obs.enable(clock=fake)
        assert reg.clock is fake

    def test_disable_reverts_to_noop(self):
        obs.enable()
        obs.counter("gone").inc()
        obs.disable()
        assert not obs.enabled()
        obs.counter("gone").inc()  # no-op, no error
        assert obs.get_registry().instruments() == []

    def test_reset_while_disabled_is_noop(self):
        obs.reset()
        assert not obs.enabled()
