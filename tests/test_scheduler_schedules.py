"""Tests for the ten-schedule enumeration (paper Figure 4)."""

import pytest

from repro.scheduler.schedules import (
    Schedule,
    canonical_group,
    enumerate_schedules,
    schedule_by_number,
    spn_schedule,
)

#: The paper's Figure 4 caption, verbatim.
PAPER_LABELS = [
    "{(SSS),(PPP),(NNN)}",
    "{(SSS),(PPN),(PNN)}",
    "{(SSP),(SPP),(NNN)}",
    "{(SSP),(SPN),(PNN)}",
    "{(SSP),(SNN),(PPN)}",
    "{(SSN),(SPP),(PNN)}",
    "{(SSN),(SPN),(PPN)}",
    "{(SSN),(SNN),(PPP)}",
    "{(SPP),(SPN),(SNN)}",
    "{(SPN),(SPN),(SPN)}",
]


def test_exactly_ten_schedules():
    assert len(enumerate_schedules()) == 10


def test_numbering_matches_paper_figure4():
    labels = [s.label() for s in enumerate_schedules()]
    assert labels == PAPER_LABELS


def test_every_schedule_places_three_of_each():
    for s in enumerate_schedules():
        flat = [c for g in s.groups for c in g]
        assert flat.count("S") == flat.count("P") == flat.count("N") == 3


def test_canonical_group_sorting():
    assert canonical_group(("N", "S", "P")) == ("S", "P", "N")
    assert canonical_group(("P", "P", "S")) == ("S", "P", "P")


def test_canonical_group_validation():
    with pytest.raises(ValueError):
        canonical_group(("S", "P"))
    with pytest.raises(ValueError):
        canonical_group(("S", "P", "X"))


def test_schedule_validation():
    with pytest.raises(ValueError):
        Schedule(number=1, groups=(("S", "S", "S"),) * 3)  # 9 S jobs
    with pytest.raises(ValueError):
        Schedule(number=1, groups=(("P", "S", "S"), ("S", "P", "P"), ("N", "N", "N")))


def test_multiplicities():
    """Distinct group multisets permute 3! ways; SPN×3 only 1 way."""
    schedules = enumerate_schedules()
    assert schedules[0].multiplicity == 6  # three distinct groups
    assert spn_schedule().multiplicity == 1  # identical groups
    # Total ordered assignments of group-multisets.
    assert sum(s.multiplicity for s in schedules) == 55


def test_class_diversity():
    schedules = enumerate_schedules()
    assert spn_schedule().class_diversity() == 9  # max
    assert schedules[0].class_diversity() == 3  # min (SSS/PPP/NNN)


def test_spn_is_schedule_ten():
    assert spn_schedule().number == 10


def test_schedule_by_number():
    assert schedule_by_number(1).label() == PAPER_LABELS[0]
    assert schedule_by_number(10).label() == PAPER_LABELS[9]
    with pytest.raises(ValueError):
        schedule_by_number(0)
    with pytest.raises(ValueError):
        schedule_by_number(11)
