"""Tests for the class-aware scheduler."""

import pytest

from repro.core.labels import ClassComposition, SnapshotClass
from repro.db.records import RunRecord
from repro.db.store import ApplicationDB
from repro.scheduler.class_aware import (
    ClassAwareScheduler,
    Placement,
    placement_to_schedule,
)


def db_with_classes(**app_classes):
    """Build a DB whose consensus class per app is as given."""
    db = ApplicationDB()
    for app, cls in app_classes.items():
        fractions = [0.0] * 5
        fractions[int(cls)] = 1.0
        db.add_run(
            RunRecord(
                application=app,
                node="VM1",
                t0=0.0,
                t1=100.0,
                num_samples=20,
                application_class=cls,
                composition=ClassComposition(fractions=tuple(fractions)),
            )
        )
    return db


def paper_db():
    return db_with_classes(
        S=SnapshotClass.CPU, P=SnapshotClass.IO, N=SnapshotClass.NET
    )


class TestClassLookup:
    def test_learned_class(self):
        sched = ClassAwareScheduler(paper_db())
        assert sched.class_of("S") is SnapshotClass.CPU
        assert sched.class_of("P") is SnapshotClass.IO

    def test_default_for_unknown(self):
        sched = ClassAwareScheduler(ApplicationDB(), default_class=SnapshotClass.NET)
        assert sched.class_of("mystery") is SnapshotClass.NET


class TestScheduleJobs:
    def test_paper_nine_jobs_spread_spn(self):
        """Three of each class on three machines → one of each per machine."""
        sched = ClassAwareScheduler(paper_db())
        placement = sched.schedule_jobs(["S", "S", "S", "P", "P", "P", "N", "N", "N"], machines=3)
        for machine in placement.machines:
            classes = {sched.class_of(j) for j in machine}
            assert len(classes) == 3

    def test_balanced_load(self):
        sched = ClassAwareScheduler(paper_db())
        placement = sched.schedule_jobs(["S"] * 6, machines=3)
        assert all(len(m) == 2 for m in placement.machines)

    def test_more_classes_than_machines(self):
        db = db_with_classes(
            a=SnapshotClass.CPU, b=SnapshotClass.IO, c=SnapshotClass.NET, d=SnapshotClass.MEM
        )
        sched = ClassAwareScheduler(db)
        placement = sched.schedule_jobs(["a", "b", "c", "d"], machines=2)
        assert all(len(m) == 2 for m in placement.machines)

    def test_validation(self):
        sched = ClassAwareScheduler(paper_db())
        with pytest.raises(ValueError):
            sched.schedule_jobs([], machines=3)
        with pytest.raises(ValueError):
            sched.schedule_jobs(["S"], machines=0)


class TestPickSchedule:
    def test_picks_spn_with_paper_classes(self):
        """The headline behaviour: class knowledge selects schedule 10."""
        sched = ClassAwareScheduler(paper_db())
        assert sched.pick_schedule().number == 10

    def test_defaults_to_paper_mapping(self):
        assert ClassAwareScheduler(ApplicationDB()).pick_schedule().number == 10

    def test_degenerate_classes_fall_back(self):
        """If all jobs share a class, every schedule ties; first wins."""
        mapping = {c: SnapshotClass.CPU for c in "SPN"}
        chosen = ClassAwareScheduler(ApplicationDB()).pick_schedule(mapping)
        assert chosen.number == 1


class TestPlacementConversion:
    def test_placement_machine_of(self):
        p = Placement(machines=(("a", "b"), ("c",)))
        assert p.machine_of(0) == 0
        assert p.machine_of(2) == 1
        with pytest.raises(IndexError):
            p.machine_of(3)

    def test_placement_to_schedule(self):
        p = Placement(machines=(("j1", "j2", "j3"),) * 3)
        code_of = {"j1": "S", "j2": "P", "j3": "N"}
        assert placement_to_schedule(p, code_of).number == 10

    def test_placement_to_schedule_validation(self):
        with pytest.raises(ValueError):
            placement_to_schedule(Placement(machines=(("a",),)), {"a": "S"})

    def test_end_to_end_scheduler_produces_spn(self):
        sched = ClassAwareScheduler(paper_db())
        jobs = ["S", "S", "S", "P", "P", "P", "N", "N", "N"]
        placement = sched.schedule_jobs(jobs, machines=3)
        schedule = placement_to_schedule(placement, {j: j for j in "SPN"})
        assert schedule.number == 10
