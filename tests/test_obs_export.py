"""Tests for the Prometheus and JSON exporters."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    PROMETHEUS_PREFIX,
    prometheus_name,
    registry_to_dict,
    render_json,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry, NullRegistry


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class TestPrometheusName:
    def test_dots_become_underscores_and_prefix_applied(self):
        assert prometheus_name("pipeline.snapshots") == "repro_pipeline_snapshots"

    def test_counter_gets_total_suffix(self):
        assert prometheus_name("pipeline.runs", "counter") == "repro_pipeline_runs_total"

    def test_total_suffix_not_duplicated(self):
        assert prometheus_name("x_total", "counter") == "repro_x_total"

    def test_invalid_characters_sanitized(self):
        name = prometheus_name("weird metric-name!")
        assert name.startswith(PROMETHEUS_PREFIX)
        assert " " not in name and "-" not in name and "!" not in name


class TestRenderPrometheus:
    def test_counter_line_with_header(self):
        reg = MetricsRegistry()
        reg.counter("pipeline.runs", help="Pipeline invocations.").inc(3)
        text = render_prometheus(reg)
        assert "# HELP repro_pipeline_runs_total Pipeline invocations." in text
        assert "# TYPE repro_pipeline_runs_total counter" in text
        assert "repro_pipeline_runs_total 3" in text

    def test_gauge_line(self):
        reg = MetricsRegistry()
        reg.gauge("sim.active_instances").set(4.0)
        assert "repro_sim_active_instances 4" in render_prometheus(reg)

    def test_labels_rendered_sorted_and_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m", node='VM"1"', zone="a").inc()
        text = render_prometheus(reg)
        assert 'repro_m_total{node="VM\\"1\\"",zone="a"} 1' in text

    def test_histogram_cumulative_buckets_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg)
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 5.55" in text
        assert "repro_lat_count 3" in text

    def test_histogram_keeps_existing_labels_alongside_le(self):
        reg = MetricsRegistry()
        reg.histogram("span.seconds", span="pipeline.pca").observe(0.01)
        text = render_prometheus(reg)
        assert 'repro_span_seconds_bucket{le="0.01",span="pipeline.pca"} ' in text
        assert 'repro_span_seconds_count{span="pipeline.pca"} 1' in text

    def test_families_sorted_and_terminated(self):
        reg = MetricsRegistry()
        reg.counter("zzz").inc()
        reg.counter("aaa").inc()
        text = render_prometheus(reg)
        assert text.index("repro_aaa_total") < text.index("repro_zzz_total")
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert render_prometheus(NullRegistry()) == ""

    def test_headers_once_per_family_across_label_sets(self):
        """HELP/TYPE must appear exactly once even with many label sets."""
        reg = MetricsRegistry()
        for node in ("VM1", "VM2", "VM3"):
            reg.counter("gmond.announcements", help="Announcements.", node=node).inc()
        text = render_prometheus(reg)
        assert text.count("# HELP repro_gmond_announcements_total") == 1
        assert text.count("# TYPE repro_gmond_announcements_total") == 1
        for node in ("VM1", "VM2", "VM3"):
            assert f'repro_gmond_announcements_total{{node="{node}"}} 1' in text

    def test_first_nonempty_help_wins(self):
        reg = MetricsRegistry()
        reg.counter("m", node="a").inc()  # registered first, no help
        reg.counter("m", help="Real help.", node="b").inc()
        text = render_prometheus(reg)
        assert "# HELP repro_m_total Real help." in text
        assert text.count("# HELP repro_m_total") == 1

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m", help="line one\nback\\slash").inc()
        text = render_prometheus(reg)
        assert "# HELP repro_m_total line one\\nback\\\\slash" in text

    def test_every_render_ends_with_newline(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        reg.gauge("g").set(1.0)
        text = render_prometheus(reg)
        assert text.endswith("\n")
        assert not text.endswith("\n\n")


class TestJsonExport:
    def test_round_trips_through_json(self):
        reg = MetricsRegistry(clock=iter(range(100)).__next__)
        reg.counter("c", node="VM1").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        with reg.span("s"):
            pass
        parsed = json.loads(render_json(reg))
        assert parsed == registry_to_dict(reg)
        assert parsed["enabled"] is True
        assert parsed["counters"] == [{"name": "c", "labels": {"node": "VM1"}, "value": 2.0}]
        assert parsed["gauges"] == [{"name": "g", "labels": {}, "value": 1.5}]
        (hist,) = [h for h in parsed["histograms"] if h["name"] == "h"]
        assert hist["buckets"] == [1.0]
        assert hist["cumulative_counts"] == [1, 1]
        assert hist["count"] == 1
        (span,) = parsed["spans"]
        assert span["name"] == "s"
        assert span["parent"] is None
        assert span["duration_s"] == 1.0

    def test_spans_carry_ids(self):
        reg = MetricsRegistry(clock=iter(range(100)).__next__)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        spans = {s["name"]: s for s in registry_to_dict(reg)["spans"]}
        assert spans["outer"]["span_id"] == 1
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["parent_id"] == 1

    def test_events_included(self):
        reg = MetricsRegistry(clock=iter(range(100)).__next__)
        with reg.span("s"):
            reg.event("cache.evicted", seed="3")
        (event,) = registry_to_dict(reg)["events"]
        assert event["name"] == "cache.evicted"
        assert event["fields"] == {"seed": "3"}
        assert event["span_id"] == 1

    def test_null_registry_dict_is_empty(self):
        d = registry_to_dict(NullRegistry())
        assert d["enabled"] is False
        assert d["counters"] == d["gauges"] == d["histograms"] == d["spans"] == []
        assert d["events"] == []
