"""Tests for cluster diagrams (paper Figure 3)."""

import numpy as np
import pytest

from repro.analysis.clustering import CLASS_GLYPHS, ClusterDiagram
from repro.core.labels import SnapshotClass


def make_diagram():
    points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5], [-1.0, -2.0]])
    labels = np.array([0, 2, 2, 3])
    return ClusterDiagram(title="t", points=points, labels=labels)


def test_validation():
    with pytest.raises(ValueError):
        ClusterDiagram("t", np.zeros((3, 1)), np.zeros(3, dtype=int))
    with pytest.raises(ValueError):
        ClusterDiagram("t", np.zeros((3, 2)), np.zeros(2, dtype=int))


def test_classes_present_ordered():
    d = make_diagram()
    assert d.classes_present() == [SnapshotClass.IDLE, SnapshotClass.CPU, SnapshotClass.NET]


def test_points_of():
    d = make_diagram()
    cpu = d.points_of(SnapshotClass.CPU)
    assert cpu.shape == (2, 2)
    assert d.points_of(SnapshotClass.MEM).shape == (0, 2)


def test_bounds():
    xmin, xmax, ymin, ymax = make_diagram().bounds()
    assert (xmin, xmax) == (-1.0, 2.0)
    assert (ymin, ymax) == (-2.0, 1.0)


def test_centroids():
    cents = make_diagram().class_centroids()
    assert np.allclose(cents[SnapshotClass.CPU], [1.5, 0.75])


def test_render_ascii_contains_glyphs_and_legend():
    text = make_diagram().render_ascii(width=40, height=12)
    assert "C=CPU" in text
    assert CLASS_GLYPHS[SnapshotClass.NET] in text
    assert text.splitlines()[0] == "t"


def test_render_ascii_canvas_validation():
    with pytest.raises(ValueError):
        make_diagram().render_ascii(width=2, height=2)


def test_from_training(classifier):
    d = ClusterDiagram.from_training(classifier)
    assert d.points.shape[1] == 2
    # All five training classes appear (paper Figure 3a).
    assert len(d.classes_present()) == 5


def test_from_training_untrained_raises():
    from repro.core.pipeline import ApplicationClassifier

    with pytest.raises(RuntimeError):
        ClusterDiagram.from_training(ApplicationClassifier())


def test_from_result(classifier, short_cpu_run):
    result = classifier.classify_series(short_cpu_run.series)
    d = ClusterDiagram.from_result(result)
    assert d.points.shape == result.scores.shape
    assert "VM1" in d.title
