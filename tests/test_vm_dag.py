"""Tests for VMPlant DAG configuration."""

import pytest

from repro.vm.dag import (
    ConfigAction,
    ConfigDAG,
    VMSpec,
    install_package,
    set_attribute,
    set_memory,
    set_vcpus,
)


class TestVMSpec:
    def test_with_package_idempotent(self):
        spec = VMSpec().with_package("ganglia").with_package("ganglia")
        assert spec.packages == ("ganglia",)

    def test_with_attribute_last_write_wins(self):
        spec = VMSpec().with_attribute("k", "a").with_attribute("k", "b")
        assert spec.attribute("k") == "b"

    def test_attribute_default(self):
        assert VMSpec().attribute("missing", "dflt") == "dflt"
        assert VMSpec().attribute("missing") is None


class TestStockActions:
    def test_set_memory(self):
        assert set_memory(512).apply(VMSpec()).mem_mb == 512.0

    def test_set_memory_rejects_non_positive(self):
        with pytest.raises(ValueError):
            set_memory(0)

    def test_set_vcpus(self):
        assert set_vcpus(2).apply(VMSpec()).vcpus == 2
        with pytest.raises(ValueError):
            set_vcpus(0)

    def test_install_package(self):
        assert install_package("specseis").apply(VMSpec()).packages == ("specseis",)

    def test_set_attribute(self):
        assert set_attribute("nfs", "on").apply(VMSpec()).attribute("nfs") == "on"


class TestConfigDAG:
    def test_materialize_applies_in_topological_order(self):
        dag = ConfigDAG()
        dag.add_action(set_memory(512))
        dag.add_action(install_package("app"), after=["set-memory-512"])
        spec = dag.materialize()
        assert spec.mem_mb == 512.0
        assert spec.packages == ("app",)

    def test_duplicate_action_rejected(self):
        dag = ConfigDAG()
        dag.add_action(set_memory(512))
        with pytest.raises(ValueError, match="duplicate"):
            dag.add_action(set_memory(512))

    def test_unknown_dependency_rejected(self):
        dag = ConfigDAG()
        with pytest.raises(ValueError, match="unknown dependency"):
            dag.add_action(set_memory(512), after=["ghost"])

    def test_cycle_rejected_on_add_edge(self):
        dag = ConfigDAG()
        dag.add_action(set_memory(512))
        dag.add_action(set_vcpus(2), after=["set-memory-512"])
        with pytest.raises(ValueError, match="cycle"):
            dag.add_edge("set-vcpus-2", "set-memory-512")

    def test_add_edge_unknown_action(self):
        dag = ConfigDAG()
        dag.add_action(set_memory(512))
        with pytest.raises(ValueError, match="unknown action"):
            dag.add_edge("set-memory-512", "ghost")

    def test_topological_order_deterministic_insertion_ties(self):
        dag = ConfigDAG()
        dag.add_action(ConfigAction("b", lambda s: s))
        dag.add_action(ConfigAction("a", lambda s: s))
        assert dag.topological_order() == ["b", "a"]  # insertion order

    def test_dependency_order_respected(self):
        dag = ConfigDAG()
        dag.add_action(ConfigAction("late", lambda s: s.with_attribute("order", "late")))
        dag.add_action(ConfigAction("early", lambda s: s.with_attribute("order", "early")))
        dag.add_edge("early", "late")
        spec = dag.materialize()
        assert spec.attribute("order") == "late"

    def test_len_and_contains(self):
        dag = ConfigDAG()
        dag.add_action(set_memory(128))
        assert len(dag) == 1
        assert "set-memory-128" in dag
        assert "ghost" not in dag

    def test_action_lookup_missing(self):
        with pytest.raises(KeyError):
            ConfigDAG().action("ghost")

    def test_materialize_with_base(self):
        dag = ConfigDAG()
        dag.add_action(install_package("x"))
        spec = dag.materialize(base=VMSpec(mem_mb=64.0))
        assert spec.mem_mb == 64.0
        assert spec.packages == ("x",)
