"""Tests for the high-level execution orchestration."""

import pytest

from repro.sim.execution import (
    classification_testbed,
    profiled_run,
    run_concurrent,
    run_solo,
    run_throughput_schedule,
)
from repro.vm.cluster import paper_testbed
from repro.vm.resources import ResourceDemand
from repro.workloads.base import constant_workload

from tests.conftest import short_cpu_workload, short_io_workload, short_net_workload


class TestClassificationTestbed:
    def test_topology(self):
        c = classification_testbed()
        assert c.vm("VM1").mem_mb == 256.0
        assert c.vm("VM4").host.name == "host2"

    def test_memory_override(self):
        assert classification_testbed(vm_mem_mb=32.0).vm("VM1").mem_mb == 32.0


class TestProfiledRun:
    def test_samples_every_five_seconds(self):
        r = profiled_run(short_cpu_workload(60.0), seed=1)
        assert r.sample_interval == 5.0
        assert r.num_samples == pytest.approx(r.duration / 5.0, abs=1.5)
        assert r.node == "VM1"

    def test_series_is_filtered_to_target(self):
        r = profiled_run(short_cpu_workload(30.0), seed=1)
        assert r.series.node == "VM1"

    def test_cpu_run_signature(self):
        r = profiled_run(short_cpu_workload(60.0), seed=1)
        assert r.series.metric("cpu_user").mean() > 50.0
        assert r.series.metric("io_bi").mean() < 50.0

    def test_io_run_signature(self):
        r = profiled_run(short_io_workload(60.0), seed=1)
        assert r.series.metric("io_bi").mean() > 300.0

    def test_network_run_uses_server(self):
        r = profiled_run(short_net_workload(60.0), seed=1)
        assert r.series.metric("bytes_out").mean() > 10e6

    def test_custom_heartbeat(self):
        r = profiled_run(short_cpu_workload(60.0), seed=1, heartbeat=10.0)
        assert r.series.sampling_interval() == pytest.approx(10.0)

    def test_deterministic(self):
        a = profiled_run(short_cpu_workload(30.0), seed=9)
        b = profiled_run(short_cpu_workload(30.0), seed=9)
        assert a.duration == b.duration
        assert (a.series.matrix == b.series.matrix).all()


class TestSoloAndConcurrent:
    def test_run_solo_duration(self):
        assert run_solo(short_cpu_workload(50.0), seed=2) == pytest.approx(50.0, abs=2.0)

    def test_concurrent_pair_stretches_both(self):
        cpu, io = short_cpu_workload(50.0), short_io_workload(50.0)
        result = run_concurrent([cpu, io], seed=2)
        assert result.elapsed["mini-cpu"] > 50.0
        assert result.elapsed["mini-io"] > 50.0
        assert result.makespan == max(result.elapsed.values())

    def test_concurrent_beats_sequential_for_different_classes(self):
        """The Table 4 property."""
        cpu, io = short_cpu_workload(60.0), short_io_workload(60.0)
        conc = run_concurrent([cpu, io], seed=2)
        seq = run_solo(cpu, seed=3) + run_solo(io, seed=4)
        assert conc.makespan < seq

    def test_concurrent_empty_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent([])


class TestThroughputSchedule:
    def test_basic_throughput_accounting(self):
        cluster = paper_testbed()
        w = constant_workload("job", ResourceDemand(cpu_user=0.5, mem_mb=10.0), 60.0)
        result = run_throughput_schedule(cluster, {"VM1": [w]}, horizon=300.0, seed=1)
        key = next(iter(result.jobs_by_instance))
        # Uncontended: ~5 jobs in 300 s → 1440 jobs/day.
        assert result.jobs_per_day(key) == pytest.approx(1440.0, rel=0.05)
        assert result.total_jobs_per_day() == result.jobs_per_day(key)

    def test_per_workload_breakdown(self):
        cluster = paper_testbed()
        a = constant_workload("a", ResourceDemand(cpu_user=0.4, mem_mb=10.0), 60.0)
        b = constant_workload("b", ResourceDemand(io_bi=300.0, cpu_user=0.1, mem_mb=10.0), 60.0)
        result = run_throughput_schedule(cluster, {"VM1": [a], "VM2": [b]}, horizon=300.0, seed=1)
        per = result.jobs_per_day_by_workload()
        assert set(per) == {"a", "b"}
        assert per["a"] > 0 and per["b"] > 0

    def test_unknown_vm_rejected(self):
        cluster = paper_testbed()
        w = constant_workload("x", ResourceDemand(cpu_user=0.1), 10.0)
        with pytest.raises(KeyError):
            run_throughput_schedule(cluster, {"ghost": [w]}, horizon=10.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            run_throughput_schedule(paper_testbed(), {}, horizon=0.0)
