"""Tests for class labels, compositions, and majority vote."""

import numpy as np
import pytest

from repro.core.labels import (
    ALL_CLASSES,
    ClassComposition,
    SnapshotClass,
    application_category,
    majority_vote,
)


class TestSnapshotClass:
    def test_five_classes(self):
        assert len(ALL_CLASSES) == 5
        assert [c.name for c in ALL_CLASSES] == ["IDLE", "IO", "CPU", "NET", "MEM"]

    def test_from_label_case_insensitive(self):
        assert SnapshotClass.from_label("cpu") is SnapshotClass.CPU
        assert SnapshotClass.from_label("MEM") is SnapshotClass.MEM

    def test_from_label_unknown(self):
        with pytest.raises(KeyError):
            SnapshotClass.from_label("GPU")


class TestClassComposition:
    def test_from_class_vector(self):
        vec = np.array([0, 1, 1, 2, 2, 2, 3, 4, 4, 4])
        comp = ClassComposition.from_class_vector(vec)
        assert comp.idle == pytest.approx(0.1)
        assert comp.io == pytest.approx(0.2)
        assert comp.cpu == pytest.approx(0.3)
        assert comp.net == pytest.approx(0.1)
        assert comp.mem == pytest.approx(0.3)

    def test_fractions_sum_to_one(self):
        comp = ClassComposition.from_class_vector(np.array([2, 2, 1]))
        assert sum(comp.fractions) == pytest.approx(1.0)

    def test_empty_vector_rejected(self):
        with pytest.raises(ValueError):
            ClassComposition.from_class_vector(np.array([], dtype=int))

    def test_unknown_codes_rejected(self):
        with pytest.raises(ValueError):
            ClassComposition.from_class_vector(np.array([0, 7]))
        with pytest.raises(ValueError):
            ClassComposition.from_class_vector(np.array([-1]))

    def test_direct_construction_validation(self):
        with pytest.raises(ValueError):
            ClassComposition(fractions=(0.5, 0.5))  # wrong length
        with pytest.raises(ValueError):
            ClassComposition(fractions=(0.5, 0.5, 0.5, 0.0, 0.0))  # sums to 1.5
        with pytest.raises(ValueError):
            ClassComposition(fractions=(1.2, -0.2, 0.0, 0.0, 0.0))  # negative

    def test_dominant_tie_breaks_low_code(self):
        comp = ClassComposition.from_class_vector(np.array([0, 0, 2, 2]))
        assert comp.dominant() is SnapshotClass.IDLE

    def test_as_dict_and_percentages(self):
        comp = ClassComposition.from_class_vector(np.array([2, 2, 2, 1]))
        d = comp.as_dict()
        assert d["CPU"] == pytest.approx(0.75)
        assert comp.as_percentages()["IO"] == pytest.approx(25.0)


class TestMajorityVote:
    def test_vote(self):
        assert majority_vote(np.array([2, 2, 1])) is SnapshotClass.CPU

    def test_vote_is_papers_application_class(self):
        """Table 3's SPECseis96 B: IO plurality wins despite CPU presence."""
        vec = np.array([1] * 43 + [2] * 40 + [4] * 7 + [0])
        assert majority_vote(vec) is SnapshotClass.IO


class TestApplicationCategory:
    def comp(self, idle=0.0, io=0.0, cpu=0.0, net=0.0, mem=0.0):
        return ClassComposition(fractions=(idle, io, cpu, net, mem))

    def test_cpu_intensive(self):
        assert application_category(self.comp(cpu=0.95, idle=0.05)) == "CPU Intensive"

    def test_io_and_paging_merge(self):
        """IO and MEM share the paper's application-level category."""
        assert application_category(self.comp(io=0.9, mem=0.1)) == "IO & Paging Intensive"
        assert application_category(self.comp(mem=0.8, io=0.2)) == "IO & Paging Intensive"

    def test_network_intensive(self):
        assert application_category(self.comp(net=0.97, idle=0.03)) == "Network Intensive"

    def test_interactive_mixed(self):
        """VMD-style mixes are 'Idle + Others'."""
        assert application_category(self.comp(idle=0.37, io=0.41, net=0.22)) == "Idle + Others"

    def test_pure_idle(self):
        assert application_category(self.comp(idle=1.0)) == "Idle"
