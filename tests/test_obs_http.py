"""Tests for the HTTP exposition endpoint (real sockets, deterministic health)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, TelemetryServer
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloRule, Verdict
from repro.obs.timeseries import MetricsRecorder


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class ManualClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def registry(clock):
    return MetricsRegistry(clock=clock)


@pytest.fixture()
def recorder(registry):
    return MetricsRecorder(registry)


@pytest.fixture()
def server(registry, recorder):
    srv = TelemetryServer(registry=registry, recorder=recorder).start()
    yield srv
    srv.stop()


def fetch(server, path):
    """(status, content_type, body) — 4xx/5xx do not raise."""
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type", ""), err.read().decode()


class TestLifecycle:
    def test_port_unavailable_before_start(self, registry):
        srv = TelemetryServer(registry=registry)
        with pytest.raises(RuntimeError):
            srv.port
        assert not srv.running

    def test_start_binds_free_port_and_is_idempotent(self, server):
        assert server.running
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        assert server.start() is server  # no rebind

    def test_stop_is_idempotent_and_releases(self, registry, recorder):
        srv = TelemetryServer(registry=registry, recorder=recorder).start()
        srv.stop()
        srv.stop()
        assert not srv.running

    def test_two_servers_never_collide(self, registry):
        a = TelemetryServer(registry=registry).start()
        b = TelemetryServer(registry=registry).start()
        try:
            assert a.port != b.port
        finally:
            a.stop()
            b.stop()


class TestMetricsEndpoints:
    def test_metrics_prometheus_text(self, registry, server):
        registry.counter("pipeline.runs", help="Total runs.").inc(3)
        status, ctype, body = fetch(server, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "repro_pipeline_runs_total 3" in body
        assert body.endswith("\n")

    def test_metrics_json(self, registry, server):
        registry.gauge("depth").set(4.0)
        with registry.span("work"):
            registry.event("thing.happened", detail="x")
        status, ctype, body = fetch(server, "/metrics.json")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert "depth" in [g["name"] for g in payload["gauges"]]
        assert payload["spans"][0]["name"] == "work"
        assert payload["events"][0]["name"] == "thing.happened"

    def test_tracez_renders_span_tree(self, registry, server):
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        status, _, body = fetch(server, "/tracez")
        assert status == 200
        assert "outer" in body and "inner" in body

    def test_eventz_is_jsonl(self, registry, server):
        registry.event("a", k="1")
        registry.event("b")
        status, ctype, body = fetch(server, "/eventz")
        assert status == 200
        assert ctype == "application/x-ndjson"
        lines = body.splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_unknown_path_404(self, server):
        status, _, body = fetch(server, "/nope")
        assert status == 404
        assert "/nope" in body


class TestTraceAndProfileEndpoints:
    def test_tracez_trace_filter_selects_one_trace(self, registry, server):
        first = registry.start_trace("serve.request", mark="serve.enqueue")
        registry.finish_trace(first, 1.0)
        second = registry.start_trace("serve.request", mark="serve.enqueue")
        registry.finish_trace(second, 2.0)
        status, _, body = fetch(server, f"/tracez?trace={first.trace_id}")
        assert status == 200
        assert f"trace={first.trace_id}" in body
        assert f"trace={second.trace_id}" not in body

    def test_tracez_bad_trace_id_is_400(self, server):
        status, _, body = fetch(server, "/tracez?trace=bogus")
        assert status == 400
        assert "bogus" in body

    def test_profilez_without_profiler_is_404(self, server):
        status, _, body = fetch(server, "/profilez")
        assert status == 404
        assert "no profiler" in body

    def test_profilez_serves_collapsed_stacks(self, registry):
        import sys

        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler(interval_s=1.0, registry=registry)
        profiler.sample_once(frames={99: sys._getframe()})
        srv = TelemetryServer(registry=registry, profiler=profiler).start()
        try:
            status, ctype, body = fetch(srv, "/profilez")
            assert status == 200
            assert ctype.startswith("text/plain")
            (line,) = body.splitlines()
            stack, count = line.rsplit(" ", 1)
            assert count == "1"
            assert "test_obs_http" in stack
        finally:
            srv.stop()

    def test_metrics_json_includes_recorder_windows(self, registry, recorder, server):
        registry.counter("pipeline.runs").inc(2)
        recorder.sample()
        status, _, body = fetch(server, "/metrics.json?window=30")
        assert status == 200
        payload = json.loads(body)
        assert isinstance(payload["windows"], list)
        (window,) = [w for w in payload["windows"] if w["metric"] == "pipeline.runs"]
        assert window["window_s"] == 30.0
        assert window["last"] == 2.0

    def test_metrics_json_bad_window_is_400(self, server):
        status, _, body = fetch(server, "/metrics.json?window=wide")
        assert status == 400
        assert "wide" in body


class TestHealthz:
    def make_server(self, registry, recorder):
        rules = (
            SloRule(
                "drop-rate", "counter_rate", "dropped", warn=1.0, page=10.0,
                window_s=60.0,
            ),
        )
        return TelemetryServer(registry=registry, recorder=recorder, rules=rules)

    def test_healthz_flips_ok_warn_page_under_injected_clock(
        self, registry, recorder, clock
    ):
        """Deterministic verdict flips: manual clock + manual samples, no sleeps."""
        srv = self.make_server(registry, recorder).start()
        try:
            c = registry.counter("dropped")
            # OK: no traffic.
            clock.t = 0.0
            recorder.sample()
            clock.t = 10.0
            recorder.sample()
            status, _, body = fetch(srv, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "OK"

            # WARN: 5 drops/s over the next 10 fake seconds.
            c.inc(50)
            clock.t = 20.0
            recorder.sample()
            status, _, body = fetch(srv, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "WARN"
            assert payload["rules"][0]["verdict"] == "WARN"

            # PAGE: 200 more drops in 10 fake seconds → 503.
            c.inc(2000)
            clock.t = 30.0
            recorder.sample()
            status, _, body = fetch(srv, "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "PAGE"

            # Recovery: quiet window pushes the rate back under warn.
            clock.t = 300.0
            recorder.sample()
            status, _, body = fetch(srv, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "OK"
        finally:
            srv.stop()

    def test_healthz_without_recorder_is_ok(self, registry):
        srv = TelemetryServer(registry=registry).start()
        try:
            status, _, body = fetch(srv, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "OK"
            assert payload["rules"] == []
        finally:
            srv.stop()


class TestReadyz:
    def test_ready_after_start_draining_after_flip(self, server):
        status, _, body = fetch(server, "/readyz")
        assert (status, body) == (200, "ready\n")
        server.set_ready(False)
        status, _, body = fetch(server, "/readyz")
        assert (status, body) == (503, "draining\n")
        server.set_ready(True)
        status, _, _ = fetch(server, "/readyz")
        assert status == 200


class TestFacadeResolution:
    def test_server_without_registry_serves_live_facade(self):
        srv = TelemetryServer().start()  # constructed while disabled
        try:
            obs.enable()
            obs.counter("late.metric").inc(7)
            _, _, body = fetch(srv, "/metrics")
            assert "repro_late_metric_total 7" in body
        finally:
            srv.stop()


class TestServiceEmbedding:
    def test_classification_service_lifecycle(self, classifier):
        from repro.experiments.fleet import profile_fleet
        from repro.serve.service import ClassificationService

        fleet = profile_fleet(2, seed=100)
        telemetry = TelemetryServer()
        service = ClassificationService(
            classifier, max_wait_s=0.005, telemetry=telemetry
        )
        try:
            assert telemetry.running
            status, _, body = fetch(telemetry, "/readyz")
            assert (status, body) == (200, "ready\n")
            service.classify(fleet[0], timeout=10.0)
        finally:
            service.shutdown()
        # Shutdown flipped readiness and then stopped the server.
        assert not telemetry.ready
        assert not telemetry.running


class TestConcurrentLifecycle:
    def test_concurrent_stop_is_safe(self, registry, recorder):
        srv = TelemetryServer(registry=registry, recorder=recorder).start()
        barrier = threading.Barrier(3, timeout=10.0)

        def closer():
            barrier.wait()
            srv.stop()

        threads = [threading.Thread(target=closer) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not any(t.is_alive() for t in threads)
        assert not srv.running

    def test_concurrent_start_binds_one_server(self, registry):
        srv = TelemetryServer(registry=registry)
        barrier = threading.Barrier(4, timeout=10.0)

        def opener():
            barrier.wait()
            srv.start()

        threads = [threading.Thread(target=opener) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        try:
            assert not any(t.is_alive() for t in threads)
            assert srv.running
            status, _ctype, body = fetch(srv, "/readyz")
            assert (status, body) == (200, "ready\n")
        finally:
            srv.stop()
        assert not srv.running
