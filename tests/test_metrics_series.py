"""Tests for SnapshotSeries (the A(n×m) data pool of one run)."""

import numpy as np
import pytest

from repro.metrics.catalog import EXPERT_METRIC_NAMES, NUM_METRICS, metric_index
from repro.metrics.series import SnapshotSeries, merge_feature_matrices
from repro.metrics.snapshot import Snapshot


def make_series(m=6, node="VM1", d=5.0):
    matrix = np.arange(NUM_METRICS * m, dtype=float).reshape(NUM_METRICS, m)
    ts = np.arange(1, m + 1) * d
    return SnapshotSeries(node=node, timestamps=ts, matrix=matrix)


def test_len_matches_columns():
    assert len(make_series(m=7)) == 7


def test_rejects_row_mismatch():
    with pytest.raises(ValueError, match="rows"):
        SnapshotSeries(node="x", timestamps=np.array([1.0]), matrix=np.zeros((5, 1)))


def test_rejects_timestamp_mismatch():
    with pytest.raises(ValueError, match="timestamps"):
        SnapshotSeries(node="x", timestamps=np.array([1.0, 2.0]), matrix=np.zeros((NUM_METRICS, 3)))


def test_rejects_non_increasing_timestamps():
    with pytest.raises(ValueError, match="increasing"):
        SnapshotSeries(
            node="x", timestamps=np.array([2.0, 1.0]), matrix=np.zeros((NUM_METRICS, 2))
        )


def test_from_snapshots_orders_by_time():
    snaps = [
        Snapshot.from_mapping("VM1", 10.0, {"cpu_user": 2.0}),
        Snapshot.from_mapping("VM1", 5.0, {"cpu_user": 1.0}),
    ]
    series = SnapshotSeries.from_snapshots(snaps)
    assert series.timestamps.tolist() == [5.0, 10.0]
    assert series.metric("cpu_user").tolist() == [1.0, 2.0]


def test_from_snapshots_rejects_mixed_nodes():
    snaps = [
        Snapshot.from_mapping("VM1", 5.0, {}),
        Snapshot.from_mapping("VM2", 10.0, {}),
    ]
    with pytest.raises(ValueError, match="mix"):
        SnapshotSeries.from_snapshots(snaps)


def test_from_snapshots_rejects_empty():
    with pytest.raises(ValueError):
        SnapshotSeries.from_snapshots([])


def test_snapshot_round_trip():
    series = make_series()
    snap = series.snapshot(2)
    assert snap.node == series.node
    assert snap.timestamp == series.timestamps[2]
    assert np.array_equal(snap.values, series.matrix[:, 2])


def test_snapshot_negative_index():
    series = make_series(m=4)
    assert series.snapshot(-1).timestamp == series.timestamps[-1]


def test_snapshot_out_of_range():
    with pytest.raises(IndexError):
        make_series(m=3).snapshot(3)


def test_iteration_yields_all_snapshots():
    series = make_series(m=5)
    assert [s.timestamp for s in series] == series.timestamps.tolist()


def test_select_metrics_shape_and_order():
    series = make_series(m=4)
    sub = series.select_metrics(["io_bo", "cpu_user"])
    assert sub.shape == (2, 4)
    assert np.array_equal(sub[0], series.matrix[metric_index("io_bo")])
    assert np.array_equal(sub[1], series.matrix[metric_index("cpu_user")])


def test_feature_matrix_is_transposed():
    series = make_series(m=4)
    fm = series.feature_matrix(EXPERT_METRIC_NAMES)
    assert fm.shape == (4, 8)
    assert np.array_equal(fm.T, series.select_metrics(EXPERT_METRIC_NAMES))


def test_feature_matrix_default_all_metrics():
    assert make_series(m=3).feature_matrix().shape == (3, NUM_METRICS)


def test_window_inclusive():
    series = make_series(m=6, d=5.0)  # times 5..30
    w = series.window(10.0, 20.0)
    assert w.timestamps.tolist() == [10.0, 15.0, 20.0]


def test_window_bad_bounds():
    with pytest.raises(ValueError):
        make_series().window(10.0, 5.0)


def test_concat_appends():
    a = make_series(m=3, d=5.0)
    b = SnapshotSeries(
        node="VM1",
        timestamps=np.array([100.0, 105.0]),
        matrix=np.ones((NUM_METRICS, 2)),
    )
    c = a.concat(b)
    assert len(c) == 5
    assert c.timestamps[-1] == 105.0


def test_concat_rejects_other_node():
    b = SnapshotSeries.empty("VM9")
    with pytest.raises(ValueError):
        make_series().concat(b)


def test_concat_rejects_overlap():
    a = make_series(m=3, d=5.0)
    b = make_series(m=3, d=5.0)
    with pytest.raises(ValueError, match="start after"):
        a.concat(b)


def test_duration_and_sampling_interval():
    series = make_series(m=5, d=5.0)
    assert series.duration() == 20.0
    assert series.sampling_interval() == 5.0


def test_duration_single_snapshot_zero():
    assert make_series(m=1).duration() == 0.0


def test_summary_statistics():
    series = make_series(m=4)
    summary = series.summary()
    row = series.matrix[0]
    assert summary["cpu_user"]["mean"] == pytest.approx(row.mean())
    assert summary["cpu_user"]["max"] == pytest.approx(row.max())


def test_merge_feature_matrices():
    a, b = make_series(m=2), make_series(m=3)
    merged = merge_feature_matrices([a, b], ["cpu_user", "io_bi"])
    assert merged.shape == (5, 2)


def test_merge_feature_matrices_empty_raises():
    with pytest.raises(ValueError):
        merge_feature_matrices([], ["cpu_user"])
