"""Unit tests for the flow-analysis layer under the QA rules.

Covers the intra-procedural CFG builder, the reaching-definitions and
string-constant dataflow analyses, the docstring shape-contract
grammar, and project-wide symbol/call-graph resolution — the machinery
the ``shape-contract``, ``metric-name``, ``cross-module-dead-code``
and ``unused-result`` rules stand on.
"""

from __future__ import annotations

import ast
import textwrap

from repro.qa.callgraph import ROOT, CallGraph, ProjectIndex
from repro.qa.cfg import build_cfg
from repro.qa.dataflow import UNBOUND, FunctionDataflow
from repro.qa.source import SourceModule
from repro.qa.symbols import (
    ModuleSymbols,
    build_module_symbols,
    parse_shape_contracts,
)


def _fn(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return fn


def _facts(sources: dict[str, str]) -> list[ModuleSymbols]:
    out = []
    for name, src in sources.items():
        module = SourceModule.from_source(
            textwrap.dedent(src),
            relpath=f"<{name}>",
            name=name,
            is_package=any(other.startswith(name + ".") for other in sources),
        )
        out.append(build_module_symbols(module))
    return out


def _flow(source: str) -> tuple[ast.FunctionDef, FunctionDataflow]:
    fn = _fn(source)
    return fn, FunctionDataflow(fn)


def _last_stmt(fn: ast.FunctionDef) -> ast.stmt:
    return fn.body[-1]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


def test_cfg_straight_line_is_one_block():
    fn = _fn("def f():\n    a = 1\n    b = 2\n    return a + b\n")
    cfg = build_cfg(fn)
    real = [b for b in cfg.blocks if b.statements]
    assert len(real) == 1
    assert len(real[0].statements) == 3


def test_cfg_if_produces_branch_and_join():
    fn = _fn(
        """\
        def f(c):
            if c:
                x = 1
            else:
                x = 2
            return x
        """
    )
    cfg = build_cfg(fn)
    head = next(b for b in cfg.blocks if b.statements and isinstance(b.statements[-1], ast.If))
    assert len(head.successors) == 2


def test_cfg_while_loops_back():
    fn = _fn(
        """\
        def f(n):
            while n:
                n = n - 1
            return n
        """
    )
    cfg = build_cfg(fn)
    head = next(b for b in cfg.blocks if b.statements and isinstance(b.statements[-1], ast.While))
    # One edge enters the body, one bypasses it; the body loops back.
    assert len(head.successors) == 2
    assert any(head.index in b.successors for b in cfg.blocks if b is not head)


def test_cfg_return_ends_the_path():
    fn = _fn(
        """\
        def f(c):
            if c:
                return 1
            return 2
        """
    )
    cfg = build_cfg(fn)
    ret_blocks = [
        b for b in cfg.blocks if b.statements and isinstance(b.statements[-1], ast.Return)
    ]
    assert len(ret_blocks) == 2
    assert all(b.successors == [cfg.exit_index] for b in ret_blocks)


def test_cfg_reverse_postorder_starts_at_entry():
    fn = _fn("def f():\n    return 0\n")
    cfg = build_cfg(fn)
    assert cfg.reverse_postorder()[0] == cfg.entry


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------


def test_reaching_defs_branch_join_sees_both_assignments():
    fn, flow = _flow(
        """\
        def f(c):
            if c:
                x = 1
            else:
                x = 2
            return x
        """
    )
    defs = flow.definitions(_last_stmt(fn), "x")
    assert {d.lineno for d in defs} == {3, 5}


def test_reaching_defs_reassignment_kills_previous():
    fn, flow = _flow(
        """\
        def f():
            x = 1
            x = 2
            return x
        """
    )
    defs = flow.definitions(_last_stmt(fn), "x")
    assert {d.lineno for d in defs} == {3}


def test_reaching_defs_maybe_unbound_path_carries_sentinel():
    fn, flow = _flow(
        """\
        def f(c):
            if c:
                x = 1
            return x
        """
    )
    defs = flow.definitions(_last_stmt(fn), "x")
    assert UNBOUND in defs
    assert any(d is not UNBOUND for d in defs)


def test_reaching_defs_parameters_are_defined_at_entry():
    fn, flow = _flow("def f(a, b=1):\n    return a + b\n")
    for name in ("a", "b"):
        defs = flow.definitions(_last_stmt(fn), name)
        assert len(defs) == 1
        assert next(iter(defs)).kind == "param"


# ----------------------------------------------------------------------
# string-constant propagation
# ----------------------------------------------------------------------


def test_string_constants_single_assignment():
    fn, flow = _flow('def f():\n    name = "cpu_user"\n    return name\n')
    assert flow.string_values(_last_stmt(fn), "name") == frozenset({"cpu_user"})


def test_string_constants_branch_union():
    fn, flow = _flow(
        """\
        def f(c):
            name = "cpu_user"
            if c:
                name = "bytes_in"
            return name
        """
    )
    assert flow.string_values(_last_stmt(fn), "name") == frozenset({"cpu_user", "bytes_in"})


def test_string_constants_non_constant_is_nac():
    fn, flow = _flow(
        """\
        def f(raw):
            name = raw.strip()
            return name
        """
    )
    assert flow.string_values(_last_stmt(fn), "name") is None


def test_string_constants_copy_propagation():
    fn, flow = _flow(
        """\
        def f():
            a = "cpu_user"
            b = a
            return b
        """
    )
    assert flow.string_values(_last_stmt(fn), "b") == frozenset({"cpu_user"})


def test_string_constants_loop_reaches_fixpoint():
    fn, flow = _flow(
        """\
        def f(items):
            name = "cpu_user"
            for item in items:
                name = item
            return name
        """
    )
    # The loop body makes it non-constant on at least one path.
    assert flow.string_values(_last_stmt(fn), "name") is None


# ----------------------------------------------------------------------
# shape-contract grammar
# ----------------------------------------------------------------------


def test_contract_grammar_unicode_marker():
    params, ret = parse_shape_contracts("Process the q×m component matrix x.", ["x"])
    assert params == {"x": ("q", "m")}
    assert ret is None


def test_contract_grammar_tuple_marker_with_return():
    params, ret = parse_shape_contracts(
        "Project an ``(m, p)`` input x onto the ``(m, q)`` space.", ["x"]
    )
    assert params == {"x": ("m", "p")}
    assert ret == ("m", "q")


def test_contract_grammar_numpy_sections():
    doc = textwrap.dedent(
        """\
        Do the projection.

        Parameters
        ----------
        x : ndarray
            The ``(m, p)`` samples-by-features input.

        Returns
        -------
        ndarray
            The ``(m, q)`` projection.
        """
    )
    params, ret = parse_shape_contracts(doc, ["x"])
    assert params == {"x": ("m", "p")}
    assert ret == ("m", "q")


def test_contract_grammar_rejects_prose_parentheses():
    params, ret = parse_shape_contracts(
        "Return a pair (package, lineno) for the statement stmt.", ["stmt"]
    )
    assert params == {}
    assert ret is None


def test_contract_grammar_accepts_axis_word_whitelist():
    params, _ = parse_shape_contracts("A samples×features matrix x.", ["x"])
    assert params == {"x": ("samples", "features")}


def test_contract_grammar_no_docstring():
    assert parse_shape_contracts(None, ["x"]) == ({}, None)


# ----------------------------------------------------------------------
# symbols: call sites, purity, metric extraction
# ----------------------------------------------------------------------


def test_symbols_records_discarded_and_used_results():
    (facts,) = _facts(
        {
            "repro.core.mod": """\
                def helper():
                    "doc"
                    return 1

                def run():
                    "doc"
                    helper()
                    y = helper()
                    return y
            """
        }
    )
    sites = [s for s in facts.call_sites if s.callee_name == "helper"]
    assert sorted(s.result_used for s in sites) == [False, True]


def test_symbols_purity_heuristic():
    (facts,) = _facts(
        {
            "repro.core.mod": """\
                def pure(x):
                    "doc"
                    return sorted(x)

                def impure(x):
                    "doc"
                    x.append(1)
                    return x
            """
        }
    )
    by_name = {f.name: f for f in facts.functions}
    assert by_name["pure"].is_pure
    assert not by_name["impure"].is_pure


def test_symbols_methods_marked_and_contracted():
    (facts,) = _facts(
        {
            "repro.core.mod": """\
                class Model:
                    "doc"

                    def fit(self, x):
                        "Fit on an ``(m, p)`` matrix."
                        return self
            """
        }
    )
    fit = next(f for f in facts.functions if f.name == "fit")
    assert fit.is_method
    assert fit.qualname == "repro.core.mod.Model.fit"
    assert fit.shape_of_param("x") == ("m", "p")


def test_symbols_extracts_metric_vocabulary_from_catalog_source():
    (facts,) = _facts(
        {
            "repro.metrics.catalog": """\
                GANGLIA_DEFAULT_METRICS = (
                    _m("cpu_user"),
                    _m("bytes_in"),
                )

                EXPERT_METRIC_NAMES = ("cpu_user", "load_one")
            """
        }
    )
    assert set(facts.metric_names) == {"cpu_user", "bytes_in", "load_one"}


def test_symbols_roundtrip_through_dict():
    (facts,) = _facts(
        {
            "repro.core.mod": """\
                from repro.metrics.series import SnapshotSeries

                __all__ = ["run"]

                def run(x):
                    "Run on a ``(m, p)`` matrix."
                    y = helper(x)
                    return y

                def helper(x):
                    "doc"
                    return x  # qa: ignore[shape-doc]
            """
        }
    )
    restored = ModuleSymbols.from_dict(facts.to_dict())
    assert restored == facts


# ----------------------------------------------------------------------
# project index / call graph
# ----------------------------------------------------------------------


def test_index_resolves_reexports_through_package_init():
    facts = _facts(
        {
            "repro.metrics": """\
                from .catalog import metric_index
            """,
            "repro.metrics.catalog": """\
                def metric_index(name):
                    "doc"
                    return 0
            """,
        }
    )
    index = ProjectIndex.build(facts)
    fn = index.resolve("repro.metrics.metric_index")
    assert fn is not None
    assert fn.qualname == "repro.metrics.catalog.metric_index"


def test_callgraph_edges_follow_imports():
    facts = _facts(
        {
            "repro.core.a": """\
                def helper():
                    "doc"
                    return 1
            """,
            "repro.core.b": """\
                from repro.core.a import helper

                def run():
                    "doc"
                    return helper()
            """,
        }
    )
    graph = CallGraph(ProjectIndex.build(facts))
    assert "repro.core.a.helper" in graph.edges["repro.core.b.run"]


def test_callgraph_unresolved_bare_name_roots_all_matches():
    facts = _facts(
        {
            "repro.core.a": """\
                def helper():
                    "doc"
                    return 1
            """,
            "repro.core.b": """\
                def run(helper):
                    "doc"
                    return helper()
            """,
        }
    )
    graph = CallGraph(ProjectIndex.build(facts))
    assert "repro.core.a.helper" in graph.edges[ROOT]


def test_callgraph_reachable_excludes_orphans():
    facts = _facts(
        {
            "repro.core.a": """\
                __all__ = ["api"]

                def api():
                    "doc"
                    return _impl()

                def _impl():
                    "doc"
                    return 1

                def _orphan():
                    "doc"
                    return 2
            """,
        }
    )
    graph = CallGraph(ProjectIndex.build(facts))
    live = graph.reachable(roots=(ROOT, "repro.core.a.api"))
    assert "repro.core.a._impl" in live
    assert "repro.core.a._orphan" not in live
