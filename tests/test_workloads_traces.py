"""Tests for trace replay (series → workload reconstruction)."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS, metric_index
from repro.metrics.series import SnapshotSeries
from repro.sim.execution import profiled_run
from repro.workloads.traces import ReplayOptions, workload_from_series

from tests.conftest import short_cpu_workload, short_io_workload


def synthetic_trace(segments, d=5.0):
    """Build a series from (windows, {metric: value}) segments."""
    cols = []
    for windows, metrics in segments:
        col = np.zeros(NUM_METRICS)
        for name, value in metrics.items():
            col[metric_index(name)] = value
        cols.extend([col] * windows)
    matrix = np.stack(cols, axis=1)
    ts = np.arange(1, matrix.shape[1] + 1) * d
    return SnapshotSeries(node="VM1", timestamps=ts, matrix=matrix)


class TestReconstruction:
    def test_too_short_rejected(self):
        series = synthetic_trace([(1, {"cpu_user": 50.0})])
        with pytest.raises(ValueError):
            workload_from_series(series)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ReplayOptions(merge_tolerance=1.0)

    def test_similar_windows_merge_into_one_phase(self):
        series = synthetic_trace([(10, {"cpu_user": 90.0})])
        w = workload_from_series(series)
        assert len(w.phases) == 1
        assert w.phases[0].work == pytest.approx(50.0)  # 10 windows × 5 s
        assert w.phases[0].demand.cpu_user == pytest.approx(0.9, abs=0.02)

    def test_distinct_segments_become_phases(self):
        series = synthetic_trace(
            [
                (6, {"cpu_user": 90.0}),
                (6, {"io_bi": 500.0, "io_bo": 500.0, "cpu_system": 12.0}),
            ]
        )
        w = workload_from_series(series)
        assert len(w.phases) == 2
        assert w.phases[0].demand.cpu_user > 0.8
        assert w.phases[1].demand.io_bi == pytest.approx(500.0)

    def test_noise_floors_zero_out_daemon_activity(self):
        series = synthetic_trace([(4, {"cpu_user": 0.8, "io_bi": 5.0, "bytes_in": 1200.0})])
        w = workload_from_series(series)
        d = w.phases[0].demand
        assert d.is_idle()

    def test_swap_traffic_subtracted_from_block_io(self):
        """Observed bi/bo includes paging blocks; the replay must not
        double-count them (swap is replayed explicitly)."""
        series = synthetic_trace(
            [(4, {"io_bi": 900.0, "io_bo": 800.0, "swap_in": 600.0, "swap_out": 500.0, "cpu_user": 25.0})]
        )
        w = workload_from_series(series)
        d = w.phases[0].demand
        assert d.swap_in == pytest.approx(600.0)
        assert d.io_bi == pytest.approx(300.0)
        assert d.io_bo == pytest.approx(300.0)

    def test_network_phase_gets_server(self):
        series = synthetic_trace([(4, {"bytes_out": 2e7, "cpu_system": 20.0})])
        w = workload_from_series(series)
        assert w.phases[0].remote_vm == "VM4"

    def test_duration_preserved(self):
        series = synthetic_trace([(8, {"cpu_user": 90.0}), (4, {"io_bi": 400.0})])
        w = workload_from_series(series)
        assert w.solo_duration == pytest.approx(60.0)

    def test_vcpus_scaling(self):
        series = synthetic_trace([(4, {"cpu_user": 50.0})])
        w1 = workload_from_series(series, vcpus=1.0)
        w2 = workload_from_series(series, vcpus=2.0)
        assert w2.phases[0].demand.cpu_user == pytest.approx(
            2 * w1.phases[0].demand.cpu_user
        )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory,expected",
        [(short_cpu_workload, "CPU"), (short_io_workload, "IO")],
    )
    def test_replay_classifies_like_the_original(self, classifier, factory, expected):
        """Record a run, rebuild a workload from the trace, run the
        replay, and classify it: the class survives the round trip."""
        original_run = profiled_run(factory(100.0), seed=31)
        original = classifier.classify_series(original_run.series)
        assert original.application_class.name == expected

        replay = workload_from_series(original_run.series, name="replayed")
        replay_run = profiled_run(replay, seed=32)
        replayed = classifier.classify_series(replay_run.series)
        assert replayed.application_class.name == expected
        assert replay_run.duration == pytest.approx(original_run.duration, rel=0.2)
