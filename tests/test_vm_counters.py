"""Tests for kernel-style node counters."""

import math

import pytest

from repro.vm.counters import LoadAverages, NodeCounters


class TestLoadAverages:
    def test_converges_to_runnable(self):
        load = LoadAverages()
        for _ in range(3600):
            load.update(runnable=2.0, dt=1.0)
        assert load.one == pytest.approx(2.0, abs=1e-6)
        assert load.five == pytest.approx(2.0, abs=1e-3)
        assert load.fifteen == pytest.approx(2.0, abs=0.05)

    def test_one_minute_reacts_fastest(self):
        load = LoadAverages()
        for _ in range(60):
            load.update(runnable=1.0, dt=1.0)
        assert load.one > load.five > load.fifteen > 0.0

    def test_exponential_form_single_step(self):
        load = LoadAverages()
        load.update(runnable=1.0, dt=60.0)
        assert load.one == pytest.approx(1.0 - math.exp(-1.0))

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ValueError):
            LoadAverages().update(1.0, 0.0)


class TestNodeCounters:
    def test_cpu_accounting_accumulates(self):
        c = NodeCounters()
        c.account_cpu(user_s=1.0, system_s=0.5, wio_s=0.1, nice_s=0.0, idle_s=0.4)
        c.account_cpu(user_s=1.0, system_s=0.5, wio_s=0.1, nice_s=0.0, idle_s=0.4)
        assert c.cpu_user_s == 2.0
        assert c.total_cpu_s() == pytest.approx(4.0)

    def test_cpu_accounting_rejects_negative(self):
        with pytest.raises(ValueError):
            NodeCounters().account_cpu(user_s=-1.0, system_s=0, wio_s=0, nice_s=0, idle_s=0)

    def test_io_and_swap_accounting(self):
        c = NodeCounters()
        c.account_io(blocks_in=100.0, blocks_out=50.0)
        c.account_swap(kb_in=10.0, kb_out=5.0)
        assert c.io_blocks_in == 100.0
        assert c.swap_kb_out == 5.0
        with pytest.raises(ValueError):
            c.account_io(-1.0, 0.0)
        with pytest.raises(ValueError):
            c.account_swap(-1.0, 0.0)

    def test_net_accounting_with_packets(self):
        c = NodeCounters()
        c.account_net(bytes_in=15000.0, bytes_out=3000.0)
        assert c.net_bytes_in == 15000.0
        assert c.net_pkts_in == pytest.approx(10.0)
        assert c.net_pkts_out == pytest.approx(2.0)
        with pytest.raises(ValueError):
            c.account_net(-1.0, 0.0)

    def test_advance_time(self):
        c = NodeCounters()
        c.advance_time(dt=5.0, runnable=1.5)
        assert c.uptime_s == 5.0
        assert c.load.one > 0.0
        with pytest.raises(ValueError):
            c.advance_time(0.0, 1.0)

    def test_copy_is_independent(self):
        c = NodeCounters()
        c.account_io(10.0, 0.0)
        d = c.copy()
        c.account_io(10.0, 0.0)
        assert d.io_blocks_in == 10.0
        assert c.io_blocks_in == 20.0

    def test_counters_monotonic_under_accounting(self):
        """Cumulative fields never decrease — monitors rely on this."""
        c = NodeCounters()
        history = []
        for i in range(10):
            c.account_cpu(0.5, 0.1, 0.0, 0.0, 0.4)
            c.account_io(float(i), float(i) / 2)
            c.account_swap(1.0, 1.0)
            c.account_net(100.0, 100.0)
            history.append(
                (c.cpu_user_s, c.io_blocks_in, c.swap_kb_in, c.net_bytes_in)
            )
        for a, b in zip(history, history[1:]):
            assert all(x2 >= x1 for x1, x2 in zip(a, b))
