"""Tests for runtime prediction from classified history."""

import pytest

from repro.core.labels import ClassComposition
from repro.db.prediction import KnnRuntimePredictor, MeanPredictor, RuntimePrediction
from repro.db.records import RunRecord
from repro.db.store import ApplicationDB


def comp(idle=0.0, io=0.0, cpu=0.0, net=0.0, mem=0.0):
    total = idle + io + cpu + net + mem
    idle += max(1.0 - total, 0.0)
    return ClassComposition(fractions=(idle, io, cpu, net, mem))


def record(app, composition, duration, env=None):
    return RunRecord(
        application=app,
        node="VM1",
        t0=0.0,
        t1=duration,
        num_samples=20,
        application_class=composition.dominant(),
        composition=composition,
        environment=env or {},
    )


@pytest.fixture()
def seis_db():
    """SPECseis96-like history: CPU-dominant runs fast, paging runs slow."""
    db = ApplicationDB()
    for dur in (17500.0, 17600.0, 17400.0):
        db.add_run(record("seis", comp(cpu=0.99, io=0.01), dur, env={"vm_mem_mb": 256}))
    for dur in (25500.0, 26000.0):
        db.add_run(
            record("seis", comp(cpu=0.49, io=0.40, mem=0.11), dur, env={"vm_mem_mb": 32})
        )
    return db


class TestRuntimePrediction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimePrediction("a", -1.0, 1)
        with pytest.raises(ValueError):
            RuntimePrediction("a", 1.0, 0)


class TestMeanPredictor:
    def test_mean_over_history(self, seis_db):
        pred = MeanPredictor(seis_db).predict("seis")
        assert pred.supporting_runs == 5
        assert pred.predicted_seconds == pytest.approx(
            (17500 + 17600 + 17400 + 25500 + 26000) / 5
        )

    def test_unknown_app(self, seis_db):
        with pytest.raises(KeyError):
            MeanPredictor(seis_db).predict("ghost")


class TestKnnPredictor:
    def test_composition_disambiguates_environment(self, seis_db):
        """A CPU-pure query predicts ~17.5 ks; a paging-mix query ~25.7 ks —
        the environment-induced runtime split the mean predictor blurs."""
        knn = KnnRuntimePredictor(seis_db, k=3)
        fast = knn.predict("seis", comp(cpu=0.99, io=0.01))
        slow = knn.predict("seis", comp(cpu=0.50, io=0.40, mem=0.10))
        assert fast.predicted_seconds == pytest.approx(17500.0, rel=0.02)
        assert slow.predicted_seconds == pytest.approx(25750.0, rel=0.03)

    def test_environment_key_filters_neighbors(self, seis_db):
        knn = KnnRuntimePredictor(seis_db, k=5, environment_key="vm_mem_mb")
        pred = knn.predict("seis", comp(cpu=0.9, io=0.1), environment_value=32)
        assert pred.supporting_runs == 2
        assert pred.predicted_seconds == pytest.approx(25750.0, rel=0.02)

    def test_no_matching_environment(self, seis_db):
        knn = KnnRuntimePredictor(seis_db, environment_key="vm_mem_mb")
        with pytest.raises(KeyError, match="vm_mem_mb"):
            knn.predict("seis", comp(cpu=1.0), environment_value=1024)

    def test_exact_match_dominates(self, seis_db):
        knn = KnnRuntimePredictor(seis_db, k=5)
        pred = knn.predict("seis", comp(cpu=0.49, io=0.40, mem=0.11))
        assert pred.predicted_seconds == pytest.approx(25500.0, rel=0.01)

    def test_k_clipped_to_history(self):
        db = ApplicationDB()
        db.add_run(record("a", comp(cpu=1.0), 100.0))
        pred = KnnRuntimePredictor(db, k=7).predict("a", comp(cpu=1.0))
        assert pred.supporting_runs == 1
        assert pred.predicted_seconds == pytest.approx(100.0)

    def test_k_validation(self, seis_db):
        with pytest.raises(ValueError):
            KnnRuntimePredictor(seis_db, k=0)

    def test_leave_one_out_error_small_for_consistent_history(self, seis_db):
        knn = KnnRuntimePredictor(seis_db, k=2)
        assert knn.prediction_error("seis") < 0.1

    def test_leave_one_out_needs_two_runs(self):
        db = ApplicationDB()
        db.add_run(record("a", comp(cpu=1.0), 100.0))
        with pytest.raises(ValueError):
            KnnRuntimePredictor(db).prediction_error("a")

    def test_knn_beats_mean_on_bimodal_history(self, seis_db):
        """The complement claim: composition-aware prediction out-predicts
        the per-application mean when environments shift behaviour."""
        knn = KnnRuntimePredictor(seis_db, k=2)
        mean_pred = MeanPredictor(seis_db).predict("seis").predicted_seconds
        knn_fast = knn.predict("seis", comp(cpu=0.99, io=0.01)).predicted_seconds
        true_fast = 17500.0
        assert abs(knn_fast - true_fast) < abs(mean_pred - true_fast)
