"""Tests for request trace contexts, tail sampling, and attribution."""

import pytest

from repro import obs
from repro.obs.context import (
    DEFAULT_SLOW_THRESHOLD_S,
    NULL_TRACE,
    PIPELINE_STAGE_NAMES,
    SAMPLER_RATE_ENV,
    SAMPLER_SLOW_ENV,
    TailSampler,
    TraceContext,
    build_request_records,
    observe_attribution,
    sampler_from_env,
)
from repro.obs.registry import MAX_PENDING_TRACES, MetricsRegistry


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class ManualClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTraceContext:
    def test_marks_and_segments_telescope(self):
        ctx = TraceContext(7, 100)
        ctx.mark("serve.enqueue", 1.0)
        ctx.mark("serve.dequeue", 4.0)
        ctx.mark("serve.compute", 6.0)
        segments = ctx.segments()
        assert [s[0] for s in segments] == ["serve.queue.wait", "serve.batch.wait"]
        assert sum(d for _, _, d in segments) == ctx.marks[-1][1] - ctx.started_s

    def test_unknown_boundary_pair_gets_fallback_name(self):
        ctx = TraceContext(1, 1)
        ctx.mark("a", 0.0)
        ctx.mark("b", 1.0)
        assert ctx.segments()[0][0] == "a..b"

    def test_mark_time_and_started(self):
        ctx = TraceContext(1, 1)
        assert ctx.started_s == 0.0
        assert ctx.mark_time("missing") is None
        ctx.mark("ingest.push", 2.5)
        assert ctx.started_s == 2.5
        assert ctx.mark_time("ingest.push") == 2.5

    def test_null_trace_is_falsy_and_inert(self):
        assert not NULL_TRACE
        NULL_TRACE.mark("anything", 1.0)
        assert NULL_TRACE.marks == []
        assert bool(TraceContext(1, 1))


class TestTailSampler:
    def test_error_slo_slow_always_kept_without_a_draw(self):
        sampler = TailSampler(keep_ratio=0.0, seed=0)
        assert sampler.decide(0.001, error=True) == (True, "error")
        assert sampler.decide(0.001, slo_breach=True) == (True, "slo")
        assert sampler.decide(DEFAULT_SLOW_THRESHOLD_S) == (True, "slow")

    def test_boring_traces_follow_the_seeded_sequence(self):
        decisions = [TailSampler(keep_ratio=0.3, seed=42).decide(0.0) for _ in range(20)]
        replay = [TailSampler(keep_ratio=0.3, seed=42).decide(0.0) for _ in range(20)]
        # Each fresh sampler replays draw #1; a single sampler's
        # sequence is deterministic too.
        assert decisions == replay
        sampler = TailSampler(keep_ratio=0.3, seed=42)
        seq1 = [sampler.decide(0.0) for _ in range(50)]
        sampler2 = TailSampler(keep_ratio=0.3, seed=42)
        seq2 = [sampler2.decide(0.0) for _ in range(50)]
        assert seq1 == seq2
        assert {r for _, r in seq1} == {"sampled", "dropped"}

    def test_privileged_outcomes_do_not_advance_the_rng(self):
        a = TailSampler(keep_ratio=0.5, seed=7)
        b = TailSampler(keep_ratio=0.5, seed=7)
        a.decide(0.0, error=True)
        a.decide(0.0, slo_breach=True)
        a.decide(10.0)
        # a consumed no draws, so both samplers agree from here on.
        assert [a.decide(0.0) for _ in range(10)] == [b.decide(0.0) for _ in range(10)]

    def test_keep_ratio_bounds(self):
        with pytest.raises(ValueError):
            TailSampler(keep_ratio=1.5)
        assert TailSampler(keep_ratio=1.0).decide(0.0) == (True, "sampled")
        assert TailSampler(keep_ratio=0.0).decide(0.0) == (False, "dropped")


class TestSamplerFromEnv:
    def test_unset_means_no_sampler(self, monkeypatch):
        monkeypatch.delenv(SAMPLER_RATE_ENV, raising=False)
        assert sampler_from_env() is None

    def test_rate_and_slow_override(self, monkeypatch):
        monkeypatch.setenv(SAMPLER_RATE_ENV, "0.25")
        monkeypatch.setenv(SAMPLER_SLOW_ENV, "2.5")
        sampler = sampler_from_env()
        assert sampler.keep_ratio == 0.25
        assert sampler.slow_threshold_s == 2.5

    def test_junk_values_mean_no_sampler(self, monkeypatch):
        monkeypatch.setenv(SAMPLER_RATE_ENV, "lots")
        assert sampler_from_env() is None
        monkeypatch.setenv(SAMPLER_RATE_ENV, "7.0")
        assert sampler_from_env() is None


class TestBuildRequestRecords:
    def test_segments_and_stage_children_telescope(self):
        registry = MetricsRegistry(clock=ManualClock())
        ctx = registry.start_trace("serve.request")
        ctx.mark("serve.enqueue", 1.0)
        ctx.mark("serve.dequeue", 3.0)
        ctx.mark("serve.compute", 4.0)
        records = build_request_records(
            registry, ctx, 14.0, stage_seconds=(2.0, 2.0, 2.0, 2.0, 2.0)
        )
        names = [r.name for r in records]
        assert names[:3] == ["serve.queue.wait", "serve.batch.wait", "pipeline.classify"]
        assert names[3:] == [f"pipeline.stage.{s}" for s in PIPELINE_STAGE_NAMES]
        # Depth-1 children sum exactly to end-to-end; stage children sum
        # exactly to the compute tail.
        depth1 = [r for r in records if r.depth == 1]
        assert sum(r.duration_s for r in depth1) == 14.0 - ctx.started_s
        stages = [r for r in records if r.depth == 2]
        tail = next(r for r in records if r.name == "pipeline.classify")
        assert sum(r.duration_s for r in stages) == tail.duration_s
        assert all(r.trace_id == ctx.trace_id for r in records)
        assert all(r.parent_id == ctx.span_id for r in depth1)
        assert all(r.parent_id == tail.span_id for r in stages)

    def test_error_tail_is_serve_failed_without_stages(self):
        registry = MetricsRegistry(clock=ManualClock())
        ctx = registry.start_trace("serve.request")
        ctx.mark("serve.enqueue", 0.0)
        records = build_request_records(
            registry, ctx, 5.0, stage_seconds=(1.0,) * 5, error=True
        )
        assert [r.name for r in records] == ["serve.failed"]
        assert records[0].duration_s == 5.0


class TestObserveAttribution:
    def test_histograms_with_exemplars(self):
        registry = MetricsRegistry(clock=ManualClock())
        ctx = registry.start_trace("serve.request")
        ctx.mark("ingest.drain", 1.0)
        ctx.mark("serve.enqueue", 2.0)
        ctx.mark("serve.dequeue", 5.0)
        ctx.mark("serve.compute", 6.0)
        observe_attribution(registry, ctx)
        qw = registry.histogram("serve.queue_wait.seconds")
        bw = registry.histogram("serve.batch_wait.seconds")
        dc = registry.histogram("ingest.drain_to_classify.seconds")
        assert (qw.count, bw.count, dc.count) == (1, 1, 1)
        for hist, value in ((qw, 3.0), (bw, 1.0), (dc, 5.0)):
            (ex,) = hist.exemplars()
            assert ex["value"] == value
            assert ex["trace_id"] == ctx.trace_id

    def test_missing_marks_skip_their_histograms(self):
        registry = MetricsRegistry(clock=ManualClock())
        ctx = registry.start_trace("serve.request")
        ctx.mark("serve.enqueue", 0.0)
        observe_attribution(registry, ctx)
        assert registry.instruments() == []


class TestRegistryTraceLifecycle:
    def test_finish_without_sampler_always_keeps(self):
        registry = MetricsRegistry(clock=ManualClock())
        ctx = registry.start_trace("serve.request", mark="serve.enqueue")
        assert registry.finish_trace(ctx, 2.0)
        (root,) = registry.spans()
        assert (root.name, root.trace_id, root.duration_s) == ("serve.request", ctx.trace_id, 2.0)
        (kept,) = [i for i in registry.instruments() if i.name == "obs.traces.kept"]
        assert dict(kept.labels)["reason"] == "unsampled"

    def test_sampler_drops_boring_and_keeps_errored(self):
        registry = MetricsRegistry(
            clock=ManualClock(), sampler=TailSampler(keep_ratio=0.0, seed=0)
        )
        dropped = registry.start_trace("serve.request", mark="serve.enqueue")
        with registry.span("work", parent=dropped):
            pass
        assert not registry.finish_trace(dropped, 0.001)
        assert registry.spans() == []  # buffered spans discarded with the trace
        errored = registry.start_trace("serve.request", mark="serve.enqueue")
        with registry.span("work", parent=errored):
            pass
        assert registry.finish_trace(errored, 0.002, error=True)
        assert {s.name for s in registry.spans()} == {"work", "serve.request"}
        counters = {
            (i.name, dict(i.labels).get("reason")): i.value
            for i in registry.instruments()
            if i.name.startswith("obs.traces.")
        }
        assert counters[("obs.traces.dropped", None)] == 1
        assert counters[("obs.traces.kept", "error")] == 1

    def test_slow_traces_survive_a_zero_keep_ratio(self):
        registry = MetricsRegistry(
            clock=ManualClock(),
            sampler=TailSampler(keep_ratio=0.0, slow_threshold_s=0.5, seed=0),
        )
        ctx = registry.start_trace("serve.request", mark="serve.enqueue")
        assert registry.finish_trace(ctx, 1.0)
        (root,) = registry.spans()
        assert root.trace_id == ctx.trace_id

    def test_pending_buffer_is_bounded(self):
        registry = MetricsRegistry(
            clock=ManualClock(), sampler=TailSampler(keep_ratio=1.0, seed=0)
        )
        contexts = [
            registry.start_trace("serve.request", mark="serve.enqueue")
            for _ in range(MAX_PENDING_TRACES + 5)
        ]
        for ctx in contexts:
            with registry.span("work", parent=ctx):
                pass
        evicted = next(
            i for i in registry.instruments() if i.name == "obs.traces.evicted"
        )
        assert evicted.value == 5
        # The evicted (oldest) traces lost their buffered spans: finishing
        # them commits only the root.
        assert registry.finish_trace(contexts[0], 1.0)
        assert [s.name for s in registry.spans()] == ["serve.request"]

    def test_adopt_trace_zero_is_null(self):
        registry = MetricsRegistry(clock=ManualClock())
        assert registry.adopt_trace("serve.request", 0) is NULL_TRACE
        ctx = registry.adopt_trace("serve.request", 9)
        assert ctx.trace_id == 9
        assert ctx.span_id


class TestFacade:
    def test_disabled_facade_returns_null_trace(self):
        ctx = obs.start_trace("serve.request")
        assert ctx is NULL_TRACE
        assert obs.finish_trace(ctx, 1.0) is False
        assert obs.current_trace_id() == 0
        obs.set_sampler(TailSampler())  # no-op while disabled

    def test_enable_installs_and_replaces_sampler(self):
        registry = obs.enable(clock=ManualClock())
        assert registry.sampler is None
        sampler = TailSampler(keep_ratio=0.5)
        obs.set_sampler(sampler)
        assert registry.sampler is sampler
        replacement = TailSampler(keep_ratio=0.25)
        assert obs.enable(sampler=replacement) is registry
        assert registry.sampler is replacement

    def test_enable_consults_env_for_fresh_registry(self, monkeypatch):
        monkeypatch.setenv(SAMPLER_RATE_ENV, "0.125")
        registry = obs.enable(clock=ManualClock())
        assert registry.sampler is not None
        assert registry.sampler.keep_ratio == 0.125
