"""Engine-level conservation and monotonicity invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.contention import InstanceDemand, allocate
from repro.sim.engine import SimulationEngine
from repro.vm.cluster import Cluster, single_vm_cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand
from repro.workloads.base import WorkloadInstance, constant_workload


def demand_strategy():
    return st.builds(
        ResourceDemand,
        cpu_user=st.floats(0, 1, allow_nan=False),
        cpu_system=st.floats(0, 0.3, allow_nan=False),
        io_bi=st.floats(0, 2000, allow_nan=False),
        io_bo=st.floats(0, 2000, allow_nan=False),
        net_in=st.floats(0, 8e7, allow_nan=False),
        net_out=st.floats(0, 8e7, allow_nan=False),
        swap_in=st.floats(0, 1000, allow_nan=False),
        swap_out=st.floats(0, 1000, allow_nan=False),
        mem_mb=st.floats(0, 300, allow_nan=False),
    )


@given(demands=st.lists(demand_strategy(), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_allocation_never_exceeds_host_capacities(demands):
    """Granted CPU/disk/net stay within the host's hardware, always."""
    cluster = Cluster()
    cluster.add_host("h", ResourceCapacity())
    for i in range(len(demands)):
        cluster.create_vm("h", f"vm{i}", vcpus=2)
    instance_demands = [
        InstanceDemand(i, cluster.vm(f"vm{i}"), d) for i, d in enumerate(demands)
    ]
    report = allocate(instance_demands)
    cap = cluster.hosts["h"].capacity
    cpu = disk = net_in = net_out = 0.0
    for i, d in enumerate(demands):
        g = report.grants[i]
        cpu += g.cpu_user + g.cpu_system
        disk += g.io_bi + g.io_bo
        net_in += g.net_in
        net_out += g.net_out
    tol = 1e-6
    assert cpu <= cap.reference_cores * (1 + tol)
    assert disk <= cap.disk_blocks_per_s * (1 + tol) + 1.0
    assert net_in <= cap.net_bytes_per_s * (1 + tol)
    assert net_out <= cap.net_bytes_per_s * (1 + tol)


@given(demands=st.lists(demand_strategy(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_fractions_bounded(demands):
    cluster = Cluster()
    cluster.add_host("h", ResourceCapacity())
    cluster.create_vm("h", "vm0", vcpus=2)
    vm = cluster.vm("vm0")
    report = allocate([InstanceDemand(i, vm, d) for i, d in enumerate(demands)])
    for f in report.fractions.values():
        assert 0.0 <= f <= 1.0 + 1e-12


class TestEngineInvariants:
    def test_counters_monotonic_through_run(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        w = constant_workload(
            "mix",
            ResourceDemand(cpu_user=0.5, io_bi=300.0, net_out=1e6, swap_in=50.0, mem_mb=20.0),
            60.0,
        )
        engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        c = cluster.vm("VM1").counters
        last = (0.0, 0.0, 0.0, 0.0, 0.0)
        for _ in range(65):
            engine.step()
            cur = (c.cpu_user_s, c.io_blocks_in, c.net_bytes_out, c.swap_kb_in, c.uptime_s)
            assert all(b >= a for a, b in zip(last, cur))
            last = cur

    def test_time_advances_exactly_by_dt(self):
        engine = SimulationEngine(single_vm_cluster(), seed=0)
        for i in range(10):
            engine.step()
            assert engine.now == pytest.approx((i + 1) * engine.dt)
            assert engine.tick_index == i + 1

    def test_progress_bounded_by_wall_clock(self):
        """No instance completes more solo-work than elapsed wall time."""
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        w = constant_workload("cpu", ResourceDemand(cpu_user=0.9, mem_mb=10.0), 40.0)
        keys = [engine.add_instance(WorkloadInstance(w, vm_name="VM1")) for _ in range(3)]
        engine.run(until=30.0)
        for key in keys:
            inst = engine.instance(key)
            done_work = inst.total_jobs() * w.solo_duration
            assert done_work <= 30.0 + 1e-6

    def test_memory_gauges_bounded_by_vm_size(self):
        cluster = single_vm_cluster(mem_mb=256.0)
        engine = SimulationEngine(cluster, seed=0)
        w = constant_workload("big", ResourceDemand(cpu_user=0.3, mem_mb=500.0), 30.0)
        engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        vm = cluster.vm("VM1")
        for _ in range(20):
            engine.step()
            total = vm.mem_mb * 1024.0
            c = vm.counters
            assert c.mem_used_kb <= total + 1e-6
            assert c.mem_used_kb + c.mem_buffers_kb + c.mem_cached_kb <= total * 1.01

    def test_interference_never_makes_solo_faster(self):
        """Adding a co-runner can only slow a job down."""
        def elapsed(n_co):
            cluster = single_vm_cluster()
            engine = SimulationEngine(cluster, seed=1)
            w = constant_workload("cpu", ResourceDemand(cpu_user=0.8, mem_mb=10.0), 50.0)
            key = engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
            for _ in range(n_co):
                engine.add_instance(
                    WorkloadInstance(
                        constant_workload("co", ResourceDemand(io_bi=200.0, cpu_user=0.05, mem_mb=10.0), 1e6),
                        vm_name="VM1",
                        loop=True,
                    )
                )
            engine.run(until=500.0)
            inst = engine.instance(key)
            assert inst.done
            return inst.elapsed()

        times = [elapsed(n) for n in (0, 1, 2)]
        assert times[0] <= times[1] <= times[2]
