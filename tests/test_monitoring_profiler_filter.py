"""Tests for the performance profiler and filter (paper Figure 1 data flow)."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS
from repro.monitoring.filter import PerformanceFilter
from repro.monitoring.multicast import MetricAnnouncement, MulticastChannel
from repro.monitoring.profiler import PerformanceProfiler
from repro.monitoring.stack import MonitoringStack
from repro.sim.engine import SimulationEngine
from repro.sim.execution import classification_testbed
from repro.workloads.base import WorkloadInstance

from tests.conftest import short_cpu_workload


def announce(channel, node, t):
    channel.announce(
        MetricAnnouncement(node=node, timestamp=t, values=np.zeros(NUM_METRICS))
    )


class TestProfiler:
    def test_records_all_nodes_while_active(self):
        """The multicast pool mixes every subnet node (paper §4.1)."""
        channel = MulticastChannel()
        profiler = PerformanceProfiler(channel)
        profiler.start("VM1", now=0.0)
        announce(channel, "VM1", 5.0)
        announce(channel, "VM2", 5.0)
        profiler.stop(now=10.0)
        nodes = {s.node for s in profiler.data_pool()}
        assert nodes == {"VM1", "VM2"}

    def test_ignores_before_start_and_after_stop(self):
        channel = MulticastChannel()
        profiler = PerformanceProfiler(channel)
        announce(channel, "VM1", 1.0)  # before any session
        profiler.start("VM1", now=5.0)
        announce(channel, "VM1", 4.0)  # predates t0
        announce(channel, "VM1", 6.0)
        profiler.stop(now=10.0)
        announce(channel, "VM1", 11.0)  # after stop
        assert [s.timestamp for s in profiler.data_pool()] == [6.0]

    def test_double_start_rejected(self):
        profiler = PerformanceProfiler(MulticastChannel())
        profiler.start("VM1", now=0.0)
        with pytest.raises(RuntimeError):
            profiler.start("VM1", now=1.0)

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            PerformanceProfiler(MulticastChannel()).stop(now=1.0)

    def test_session_bookkeeping(self):
        profiler = PerformanceProfiler(MulticastChannel())
        profiler.start("VM1", now=2.0)
        assert profiler.is_active
        session = profiler.stop(now=9.0)
        assert not profiler.is_active
        assert session.t0 == 2.0
        assert session.t1 == 9.0
        assert session.closed

    def test_restartable(self):
        channel = MulticastChannel()
        profiler = PerformanceProfiler(channel)
        profiler.start("VM1", now=0.0)
        announce(channel, "VM1", 1.0)
        profiler.stop(now=2.0)
        profiler.start("VM1", now=10.0)
        announce(channel, "VM1", 11.0)
        profiler.stop(now=12.0)
        assert [s.timestamp for s in profiler.data_pool()] == [11.0]


class TestFilter:
    def test_extracts_target_node(self):
        channel = MulticastChannel()
        profiler = PerformanceProfiler(channel)
        profiler.start("VM1", now=0.0)
        for t in (5.0, 10.0):
            announce(channel, "VM1", t)
            announce(channel, "VM2", t)
        profiler.stop(now=15.0)
        filt = PerformanceFilter()
        series = filt.extract(profiler.data_pool(), "VM1")
        assert series.node == "VM1"
        assert len(series) == 2
        assert filt.snapshots_scanned == 4
        assert filt.snapshots_extracted == 2

    def test_missing_target_raises_with_context(self):
        channel = MulticastChannel()
        profiler = PerformanceProfiler(channel)
        profiler.start("VMx", now=0.0)
        announce(channel, "VM1", 5.0)
        profiler.stop(now=10.0)
        with pytest.raises(ValueError, match="VM1"):
            PerformanceFilter().extract(profiler.data_pool(), "VMx")

    def test_nodes_in_pool(self):
        channel = MulticastChannel()
        profiler = PerformanceProfiler(channel)
        profiler.start("VM1", now=0.0)
        announce(channel, "VM2", 5.0)
        announce(channel, "VM1", 5.0)
        profiler.stop(now=10.0)
        assert PerformanceFilter().nodes_in_pool(profiler.data_pool()) == ["VM1", "VM2"]


class TestMonitoringStack:
    def test_stack_wires_gmond_per_vm(self):
        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=0)
        stack = MonitoringStack(engine, seed=1)
        assert set(stack.gmonds) == {"VM1", "VM4"}
        assert stack.gmond("VM1").vm.name == "VM1"

    def test_stack_collects_during_run(self):
        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=0)
        stack = MonitoringStack(engine, seed=1)
        engine.add_instance(WorkloadInstance(short_cpu_workload(30.0), vm_name="VM1"))
        stack.profiler.start("VM1", now=0.0)
        engine.run()
        stack.profiler.stop(now=engine.now)
        pool = stack.profiler.data_pool()
        # Both subnet nodes appear; 6 heartbeats each over 30 s.
        assert {s.node for s in pool} == {"VM1", "VM4"}
        series = stack.filter.extract(pool, "VM1")
        assert len(series) == 6

    def test_aggregator_sees_cluster(self):
        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=0)
        stack = MonitoringStack(engine, seed=1)
        engine.run(until=20.0)
        assert stack.aggregator.nodes() == ["VM1", "VM4"]
