"""ClassifierConfig validation, hashability, and classifier round-trips."""

import time

import pytest

from repro.core.config import ClassifierConfig
from repro.core.pipeline import ApplicationClassifier
from repro.metrics.catalog import EXPERT_METRIC_NAMES


class TestDefaults:
    def test_paper_defaults(self):
        config = ClassifierConfig()
        assert config.metric_names == EXPERT_METRIC_NAMES
        assert config.n_components == 2
        assert config.min_variance_fraction is None
        assert config.k == 3
        assert config.clock is None

    def test_selector_round_trip(self):
        config = ClassifierConfig()
        assert config.selector().names == config.metric_names


class TestValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            ClassifierConfig(metric_names=("not_a_metric",))

    def test_empty_metric_names_rejected(self):
        with pytest.raises(ValueError):
            ClassifierConfig(metric_names=())

    def test_component_selection_exclusivity(self):
        with pytest.raises(ValueError):
            ClassifierConfig(n_components=2, min_variance_fraction=0.9)
        with pytest.raises(ValueError):
            ClassifierConfig(n_components=None, min_variance_fraction=None)

    def test_bad_n_components(self):
        with pytest.raises(ValueError):
            ClassifierConfig(n_components=0)

    def test_bad_variance_fraction(self):
        with pytest.raises(ValueError):
            ClassifierConfig(n_components=None, min_variance_fraction=1.5)

    def test_even_or_nonpositive_k(self):
        with pytest.raises(ValueError):
            ClassifierConfig(k=2)
        with pytest.raises(ValueError):
            ClassifierConfig(k=0)


class TestHashability:
    def test_equal_configs_share_hash(self):
        assert ClassifierConfig() == ClassifierConfig()
        assert hash(ClassifierConfig()) == hash(ClassifierConfig())

    def test_usable_as_dict_key(self):
        cache = {ClassifierConfig(): "a", ClassifierConfig(k=5): "b"}
        assert cache[ClassifierConfig()] == "a"
        assert cache[ClassifierConfig(k=5)] == "b"

    def test_clock_excluded_from_equality(self):
        base = ClassifierConfig()
        clocked = base.with_clock(time.perf_counter)
        assert clocked == base
        assert hash(clocked) == hash(base)
        assert clocked.clock is time.perf_counter

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ClassifierConfig().k = 5


class TestClassifierRoundTrip:
    def test_from_config_applies_settings(self):
        config = ClassifierConfig(k=5, clock=time.perf_counter)
        clf = ApplicationClassifier.from_config(config)
        assert clf.knn.k == 5
        assert clf.clock is time.perf_counter
        assert clf.preprocessor.selector.names == config.metric_names

    def test_config_property_round_trips(self):
        config = ClassifierConfig(k=5)
        clf = ApplicationClassifier.from_config(config)
        assert clf.config == config

    def test_default_classifier_reports_default_config(self):
        assert ApplicationClassifier().config == ClassifierConfig()


class TestComputeDtype:
    def test_defaults_to_float64(self):
        assert ClassifierConfig().compute_dtype == "float64"

    def test_accepts_float32(self):
        assert ClassifierConfig(compute_dtype="float32").compute_dtype == "float32"

    def test_rejects_other_dtypes(self):
        for bad in ("float16", "f8", "double", ""):
            with pytest.raises(ValueError, match="compute_dtype"):
                ClassifierConfig(compute_dtype=bad)

    def test_participates_in_equality_and_hash(self):
        # Models fitted at different precisions must not share a cache
        # slot, so unlike the clock the dtype is part of the key.
        f64 = ClassifierConfig()
        f32 = ClassifierConfig(compute_dtype="float32")
        assert f64 != f32
        assert hash(f64) != hash(f32)
        cache = {f64: "double", f32: "single"}
        assert cache[ClassifierConfig(compute_dtype="float32")] == "single"

    def test_float32_pipeline_constructs(self):
        # The tolerance mode is live: from_config builds a float32
        # classifier whose config round-trips the dtype.
        clf = ApplicationClassifier.from_config(
            ClassifierConfig(compute_dtype="float32")
        )
        assert clf.compute_dtype == "float32"
        assert clf.config.compute_dtype == "float32"

    def test_config_property_reports_float64(self):
        assert ApplicationClassifier().config.compute_dtype == "float64"
