"""Tests for the stage-triggered migration controller."""

import pytest

from repro.core.labels import SnapshotClass
from repro.core.online import OnlineClassifier
from repro.monitoring.stack import MonitoringStack
from repro.scheduler.migration import MigrationController
from repro.sim.engine import SimulationEngine
from repro.vm.cluster import Cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand
from repro.workloads.base import Phase, Workload, WorkloadInstance, constant_workload


def migration_testbed():
    """Two hosts: host1 has an IO-hog neighbor VM, host2 a CPU-hog neighbor."""
    c = Cluster()
    c.add_host("h1", ResourceCapacity())
    c.add_host("h2", ResourceCapacity())
    c.create_vm("h1", "APP1")     # app slot on host1
    c.create_vm("h1", "IOHOG")
    c.create_vm("h2", "APP2")     # app slot on host2
    c.create_vm("h2", "CPUHOG")
    return c


def two_stage_app(cpu_s=150.0, io_s=150.0):
    return Workload(
        name="two-stage",
        phases=(
            Phase("cpu-stage", ResourceDemand(cpu_user=0.9, cpu_system=0.05, mem_mb=20.0), cpu_s),
            Phase("io-stage", ResourceDemand(cpu_user=0.1, io_bi=600.0, io_bo=600.0, mem_mb=20.0), io_s),
        ),
        expected_class="MIXED",
    )


def hog(kind: str):
    if kind == "io":
        demand = ResourceDemand(cpu_user=0.1, io_bi=700.0, io_bo=700.0, mem_mb=20.0)
    else:
        demand = ResourceDemand(cpu_user=0.95, cpu_system=0.03, mem_mb=20.0)
    return constant_workload(f"{kind}-hog", demand, 100000.0)


def build(classifier, with_controller: bool):
    cluster = migration_testbed()
    engine = SimulationEngine(cluster, seed=3)
    stack = MonitoringStack(engine, seed=4)
    online = OnlineClassifier(classifier, stack.channel)
    key = engine.add_instance(WorkloadInstance(two_stage_app(), vm_name="APP1"))
    engine.add_instance(WorkloadInstance(hog("io"), vm_name="IOHOG", loop=True))
    engine.add_instance(WorkloadInstance(hog("cpu"), vm_name="CPUHOG", loop=True))
    controller = None
    if with_controller:
        controller = MigrationController(
            engine,
            online,
            instance_key=key,
            candidate_vms=["APP1", "APP2"],
            min_streak=3,
            cooldown_s=30.0,
            downtime_s=5.0,
        )
    return engine, key, controller


class TestControllerMechanics:
    def test_requires_candidates(self, classifier):
        cluster = migration_testbed()
        engine = SimulationEngine(cluster, seed=0)
        stack = MonitoringStack(engine, seed=1)
        online = OnlineClassifier(classifier, stack.channel)
        key = engine.add_instance(WorkloadInstance(two_stage_app(), vm_name="APP1"))
        with pytest.raises(ValueError):
            MigrationController(engine, online, key, candidate_vms=[])
        with pytest.raises(KeyError):
            MigrationController(engine, online, key, candidate_vms=["ghost"])

    def test_host_pressure_counts_other_vms(self, classifier):
        engine, key, controller = build(classifier, with_controller=True)
        engine.run(until=60.0)
        # The IO hog's VM shows IO pressure on host1.
        assert controller.host_pressure("APP1", SnapshotClass.IO) >= 1
        assert controller.host_pressure("APP2", SnapshotClass.IO) == 0

    def test_migrates_at_stage_boundary(self, classifier):
        engine, key, controller = build(classifier, with_controller=True)
        engine.run(until=400.0)
        migrations = controller.migrations
        # When the app turns IO-intensive it should leave the IO-hog host.
        assert any(
            m.from_vm == "APP1" and m.to_vm == "APP2" for m in migrations
        ), controller.decisions

    def test_decisions_logged(self, classifier):
        engine, key, controller = build(classifier, with_controller=True)
        engine.run(until=400.0)
        assert controller.decisions
        assert any(d.migrated for d in controller.decisions)


class TestMigrationPaysOff:
    def test_stage_aware_migration_speeds_completion(self, classifier):
        """The paper's §1 promise, end to end: migrating the IO stage away
        from the IO-contended host finishes the application sooner."""
        engine_m, key_m, _ = build(classifier, with_controller=True)
        engine_m.run(until=900.0)
        inst_m = engine_m.instance(key_m)

        engine_s, key_s, _ = build(classifier, with_controller=False)
        engine_s.run(until=900.0)
        inst_s = engine_s.instance(key_s)

        assert inst_m.done, "migrated run did not finish"
        assert inst_s.done, "static run did not finish"
        assert inst_m.elapsed() < inst_s.elapsed()
