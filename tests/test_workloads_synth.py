"""Tests for the random workload generator."""

import pytest

from repro.workloads.synth import (
    GENERATABLE_CLASSES,
    SynthesisConfig,
    generate_suite,
    generate_workload,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SynthesisConfig(dominance=0.4)
        with pytest.raises(ValueError):
            SynthesisConfig(min_phases=0)
        with pytest.raises(ValueError):
            SynthesisConfig(min_phases=5, max_phases=2)
        with pytest.raises(ValueError):
            SynthesisConfig(min_duration_s=100.0, max_duration_s=50.0)


class TestGenerateWorkload:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            generate_workload("IDLE", seed=0)
        with pytest.raises(ValueError):
            generate_workload("GPU", seed=0)

    def test_deterministic_per_seed(self):
        a = generate_workload("IO", seed=7)
        b = generate_workload("IO", seed=7)
        assert a.phases == b.phases
        c = generate_workload("IO", seed=8)
        assert c.phases != a.phases

    @pytest.mark.parametrize("cls", GENERATABLE_CLASSES)
    def test_dominance_share_respected(self, cls):
        config = SynthesisConfig(dominance=0.8)
        for seed in range(5):
            w = generate_workload(cls, seed=seed, config=config)
            dom_work = sum(
                p.work for p in w.phases if p.name.startswith(cls.lower())
            )
            assert dom_work / w.solo_duration >= 0.75

    def test_duration_near_bounds(self):
        """Duration is approximate (sub-second phases are dropped after
        dominance rescaling) but stays near the configured range."""
        config = SynthesisConfig(min_duration_s=100.0, max_duration_s=200.0)
        for seed in range(5):
            w = generate_workload("CPU", seed=seed, config=config)
            assert 70.0 <= w.solo_duration <= 220.0

    def test_net_phases_carry_server(self):
        w = generate_workload("NET", seed=3)
        net_phases = [p for p in w.phases if p.demand.net > 0]
        assert net_phases
        assert all(p.remote_vm == "VM4" for p in net_phases)

    def test_mem_workloads_overflow_256mb_vm(self):
        for seed in range(5):
            w = generate_workload("MEM", seed=seed)
            assert w.max_working_set_mb() > 256.0

    def test_expected_class_recorded(self):
        assert generate_workload("IO", seed=0).expected_class == "IO"


class TestGenerateSuite:
    def test_size_and_coverage(self):
        suite = generate_suite(per_class=3, seed=0)
        assert len(suite) == 3 * len(GENERATABLE_CLASSES)
        classes = {w.expected_class for w in suite}
        assert classes == set(GENERATABLE_CLASSES)

    def test_unique_names(self):
        suite = generate_suite(per_class=3, seed=0)
        names = [w.name for w in suite]
        assert len(set(names)) == len(names)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_suite(per_class=0)
