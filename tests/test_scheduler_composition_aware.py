"""Tests for the composition-aware contention-predicting scheduler."""

import pytest

from repro.core.labels import ClassComposition, SnapshotClass
from repro.db.records import RunRecord
from repro.db.store import ApplicationDB
from repro.scheduler.composition_aware import (
    CompositionAwareScheduler,
    excess_pressure,
    machine_pressure,
    placement_score,
    rank_schedules_by_prediction,
)


def comp(idle=0.0, io=0.0, cpu=0.0, net=0.0, mem=0.0):
    """Composition helper: unassigned mass goes to idle."""
    total = idle + io + cpu + net + mem
    idle += max(1.0 - total, 0.0)
    return ClassComposition(fractions=(idle, io, cpu, net, mem))


def db_with(**apps):
    db = ApplicationDB()
    for name, composition in apps.items():
        db.add_run(
            RunRecord(
                application=name,
                node="VM1",
                t0=0.0,
                t1=100.0,
                num_samples=20,
                application_class=composition.dominant(),
                composition=composition,
            )
        )
    return db


class TestPressureModel:
    def test_machine_pressure_sums_fractions(self):
        p = machine_pressure([comp(cpu=0.9, io=0.1), comp(cpu=0.5, net=0.5)])
        assert p[SnapshotClass.CPU] == pytest.approx(1.4)
        assert p[SnapshotClass.IO] == pytest.approx(0.1)

    def test_idle_never_contends(self):
        p = machine_pressure([comp(idle=1.0), comp(idle=1.0)])
        assert all(v == 0.0 for v in p.values())
        assert excess_pressure([comp(idle=1.0)] * 5) == 0.0

    def test_excess_only_above_unity(self):
        assert excess_pressure([comp(cpu=0.6), comp(cpu=0.3)]) == 0.0
        assert excess_pressure([comp(cpu=0.9), comp(cpu=0.6)]) == pytest.approx(0.5)

    def test_placement_score_sums_machines(self):
        machines = [[comp(cpu=0.9), comp(cpu=0.9)], [comp(io=0.9), comp(io=0.4)]]
        assert placement_score(machines) == pytest.approx(0.8 + 0.3)


class TestScheduler:
    def test_complementary_placement_preferred(self):
        db = db_with(c=comp(cpu=0.95, idle=0.05), i=comp(io=0.95, idle=0.05))
        sched = CompositionAwareScheduler(db)
        placement = sched.schedule_jobs(["c", "c", "i", "i"], machines=2)
        # Each machine should get one CPU job and one IO job.
        for machine in placement.machines:
            assert set(machine) == {"c", "i"}
        assert sched.predicted_score(placement) == 0.0

    def test_unknown_app_uses_cautious_default(self):
        sched = CompositionAwareScheduler(ApplicationDB())
        assert sched.composition_of("mystery").io == pytest.approx(0.25)

    def test_balanced_machine_sizes(self):
        db = db_with(c=comp(cpu=1.0))
        sched = CompositionAwareScheduler(db)
        placement = sched.schedule_jobs(["c"] * 6, machines=3)
        assert all(len(m) == 2 for m in placement.machines)

    def test_validation(self):
        sched = CompositionAwareScheduler(ApplicationDB())
        with pytest.raises(ValueError):
            sched.schedule_jobs([], machines=2)
        with pytest.raises(ValueError):
            sched.schedule_jobs(["a"], machines=0)

    def test_mixed_composition_beats_class_only_information(self):
        """Two 50/50 CPU-IO apps and two pure-CPU apps: the composition-
        aware scheduler pairs pure-CPU with mixed, which class-only
        scheduling (all four dominant CPU... ) cannot distinguish."""
        db = db_with(
            pure=comp(cpu=0.95, idle=0.05),
            mixed=comp(cpu=0.55, io=0.45),
        )
        sched = CompositionAwareScheduler(db)
        placement = sched.schedule_jobs(["pure", "pure", "mixed", "mixed"], machines=2)
        for machine in placement.machines:
            assert set(machine) == {"pure", "mixed"}


class TestSchedulePrediction:
    def test_predicts_spn_best_for_paper_jobs(self):
        db = db_with(
            S=comp(cpu=0.98, idle=0.02),
            P=comp(io=0.96, mem=0.02, idle=0.02),
            N=comp(net=0.95, idle=0.05),
        )
        sched = CompositionAwareScheduler(db)
        ranked = rank_schedules_by_prediction(sched, {"S": "S", "P": "P", "N": "N"})
        best_number, best_score = ranked[0]
        assert best_number == 10
        assert best_score == pytest.approx(0.0, abs=1e-9)

    def test_predicts_segregated_worst(self):
        db = db_with(
            S=comp(cpu=0.98, idle=0.02),
            P=comp(io=0.96, mem=0.02, idle=0.02),
            N=comp(net=0.95, idle=0.05),
        )
        sched = CompositionAwareScheduler(db)
        ranked = rank_schedules_by_prediction(sched, {"S": "S", "P": "P", "N": "N"})
        worst_number, worst_score = ranked[-1]
        assert worst_number in (1, 2)
        assert worst_score > 3.0

    def test_prediction_agrees_with_measured_ordering(self):
        """Predicted ranking broadly matches the measured Figure 4: SPN
        top, the two segregated schedules bottom."""
        db = db_with(
            S=comp(cpu=0.98, idle=0.02),
            P=comp(io=0.96, mem=0.02, idle=0.02),
            N=comp(net=0.95, idle=0.05),
        )
        sched = CompositionAwareScheduler(db)
        ranked = rank_schedules_by_prediction(sched, {"S": "S", "P": "P", "N": "N"})
        order = [number for number, _ in ranked]
        assert order[0] == 10
        assert set(order[-2:]) == {1, 2}
