"""Merged announcement timeline: the heap reference vs the vectorized merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ingest import iter_merged, stable_merge_order


def merge_via_heap(segments):
    """Flatten segments through the k-way heap reference, keeping labels."""
    return [(ts, seg, elem) for ts, seg, elem in iter_merged(segments)]


def merge_via_argsort(segments):
    """Flatten segments through the vectorized merge, keeping labels."""
    lengths = [len(s) for s in segments]
    flat = np.concatenate([np.asarray(s, dtype=np.float64) for s in segments])
    seg_of = np.repeat(np.arange(len(segments)), lengths)
    elem_of = np.concatenate([np.arange(n) for n in lengths])
    order = stable_merge_order(flat)
    return [(float(flat[i]), int(seg_of[i]), int(elem_of[i])) for i in order]


class TestEquivalence:
    def test_simple_interleave(self):
        segments = [[1.0, 4.0, 7.0], [2.0, 3.0, 8.0], [0.5, 6.0]]
        assert merge_via_heap(segments) == merge_via_argsort(segments)

    def test_ties_break_in_segment_order(self):
        segments = [[1.0, 2.0], [1.0, 2.0], [1.0]]
        merged = merge_via_heap(segments)
        assert merged == [
            (1.0, 0, 0),
            (1.0, 1, 0),
            (1.0, 2, 0),
            (2.0, 0, 1),
            (2.0, 1, 1),
        ]
        assert merged == merge_via_argsort(segments)

    def test_empty_segments_are_skipped(self):
        segments = [[], [3.0], [], [1.0, 2.0]]
        merged = merge_via_heap(segments)
        assert [ts for ts, _, _ in merged] == [1.0, 2.0, 3.0]
        assert merged == merge_via_argsort(segments)

    def test_all_empty(self):
        assert merge_via_heap([[], []]) == []
        assert stable_merge_order(np.empty(0)).shape == (0,)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_with_heavy_ties(self, seed):
        rng = np.random.default_rng(seed)
        segments = []
        for _ in range(rng.integers(2, 7)):
            n = int(rng.integers(0, 40))
            # Coarse quantization forces many cross-segment ties.
            segments.append(sorted(np.round(rng.uniform(0, 10, n) * 2) / 2))
        assert merge_via_heap(segments) == merge_via_argsort(segments)


class TestContract:
    def test_output_is_globally_sorted(self):
        rng = np.random.default_rng(7)
        segments = [sorted(rng.uniform(0, 100, 25)) for _ in range(4)]
        ts = [t for t, _, _ in merge_via_heap(segments)]
        assert ts == sorted(ts)

    def test_within_segment_order_is_preserved(self):
        segments = [[5.0, 5.0, 5.0], [5.0, 5.0]]
        merged = merge_via_heap(segments)
        for seg in (0, 1):
            elems = [e for _, s, e in merged if s == seg]
            assert elems == sorted(elems)
