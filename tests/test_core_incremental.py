"""Tests for incremental PCA (online-training extension)."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalPCA
from repro.core.pca import PCA


def data(m=300, p=5, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(m, 2))
    mix = rng.normal(size=(2, p))
    return base @ mix + 0.05 * rng.normal(size=(m, p)) + rng.uniform(-3, 3, size=p)


class TestConstruction:
    def test_selection_mode_exclusive(self):
        with pytest.raises(ValueError):
            IncrementalPCA()
        with pytest.raises(ValueError):
            IncrementalPCA(n_components=2, min_variance_fraction=0.9)
        with pytest.raises(ValueError):
            IncrementalPCA(n_components=0)
        with pytest.raises(ValueError):
            IncrementalPCA(min_variance_fraction=2.0)


class TestStreamingEquivalence:
    def test_matches_batch_pca_mean(self):
        x = data()
        inc = IncrementalPCA(n_components=2)
        for chunk in np.array_split(x, 7):
            inc.partial_fit(chunk)
        assert inc.count_ == x.shape[0]
        assert np.allclose(inc.mean_, x.mean(axis=0), atol=1e-10)

    def test_matches_batch_pca_components(self):
        x = data()
        inc = IncrementalPCA(n_components=2)
        for chunk in np.array_split(x, 5):
            inc.partial_fit(chunk)
        batch = PCA(n_components=2).fit(x)
        assert np.allclose(inc.components_, batch.components_, atol=1e-8)
        assert np.allclose(inc.explained_variance_, batch.explained_variance_, rtol=1e-10)

    def test_chunking_invariance(self):
        x = data(seed=3)
        a = IncrementalPCA(n_components=2)
        a.partial_fit(x)
        b = IncrementalPCA(n_components=2)
        for chunk in np.array_split(x, 11):
            b.partial_fit(chunk)
        assert np.allclose(a.components_, b.components_, atol=1e-8)

    def test_transform_matches_batch(self):
        x = data(seed=4)
        inc = IncrementalPCA(n_components=2)
        for chunk in np.array_split(x, 3):
            inc.partial_fit(chunk)
        batch = PCA(n_components=2).fit(x)
        assert np.allclose(inc.transform(x), batch.transform(x), atol=1e-8)


class TestIncrementalBehaviour:
    def test_components_update_as_data_arrives(self):
        rng = np.random.default_rng(5)
        inc = IncrementalPCA(n_components=1)
        # First batch: variance along axis 0.
        inc.partial_fit(np.column_stack([rng.normal(0, 10, 50), rng.normal(0, 0.1, 50)]))
        first = inc.components_.copy()
        assert abs(first[0, 0]) > 0.99
        # Flood of variance along axis 1 rotates the component.
        inc.partial_fit(np.column_stack([rng.normal(0, 0.1, 5000), rng.normal(0, 50, 5000)]))
        second = inc.components_
        assert abs(second[0, 1]) > 0.99

    def test_variance_fraction_selection(self):
        x = data()
        inc = IncrementalPCA(min_variance_fraction=0.99)
        inc.partial_fit(x)
        # Essentially rank-2 data → 2 components reach 99%.
        assert inc.components_.shape[0] == 2

    def test_dimension_mismatch_rejected(self):
        inc = IncrementalPCA(n_components=1)
        inc.partial_fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            inc.partial_fit(np.zeros((5, 4)))

    def test_extraction_before_data_rejected(self):
        inc = IncrementalPCA(n_components=1)
        with pytest.raises(RuntimeError):
            _ = inc.components_
        with pytest.raises(RuntimeError):
            inc.transform(np.zeros((2, 3)))

    def test_n_components_exceeding_features_rejected(self):
        inc = IncrementalPCA(n_components=9)
        inc.partial_fit(data(p=5))
        with pytest.raises(ValueError):
            _ = inc.components_

    def test_explained_variance_ratio(self):
        inc = IncrementalPCA(n_components=2)
        inc.partial_fit(data())
        ratio = inc.explained_variance_ratio_
        assert ratio.shape == (2,)
        assert 0.99 <= ratio.sum() <= 1.0 + 1e-9
