"""Tests for the random-scheduler baseline."""

import pytest

from repro.scheduler.random_sched import RandomScheduler
from repro.scheduler.schedules import enumerate_schedules


def test_choose_schedule_valid():
    sched = RandomScheduler(seed=0)
    numbers = {sched.choose_schedule().number for _ in range(200)}
    assert numbers <= set(range(1, 11))
    assert len(numbers) >= 8  # uniform draw covers most schedules


def test_choose_assignment_always_canonical():
    sched = RandomScheduler(seed=1)
    valid = {s.label() for s in enumerate_schedules()}
    for _ in range(100):
        assert sched.choose_assignment().label() in valid


def test_assignment_distribution_weighted_by_multiplicity():
    """Blind job→slot assignment hits multi-arrangement schedules more often."""
    sched = RandomScheduler(seed=2)
    freq = sched.expected_distribution(draws=4000, by_assignment=True)
    # Schedule 10 (multiplicity 1 of 55 group-orderings, but many job-level
    # arrangements) vs schedule 1: just check SPN is NOT dominant and
    # every schedule appears.
    assert set(freq) == set(range(1, 11))


def test_uniform_distribution_flat():
    sched = RandomScheduler(seed=3)
    freq = sched.expected_distribution(draws=5000, by_assignment=False)
    assert all(0.05 < f < 0.15 for f in freq.values())


def test_seeded_reproducibility():
    a = RandomScheduler(seed=7)
    b = RandomScheduler(seed=7)
    assert [a.choose_schedule().number for _ in range(20)] == [
        b.choose_schedule().number for _ in range(20)
    ]


def test_draws_validation():
    with pytest.raises(ValueError):
        RandomScheduler().expected_distribution(draws=0)
