"""Tests for the ablation helper (held-out accuracy evaluation)."""

import numpy as np
import pytest

from repro.core.preprocessing import MetricSelector
from repro.experiments.ablation import holdout_accuracy, split_series
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries


def make_series(m=10):
    return SnapshotSeries(
        node="n",
        timestamps=np.arange(1, m + 1, dtype=float),
        matrix=np.arange(NUM_METRICS * m, dtype=float).reshape(NUM_METRICS, m),
    )


class TestSplitSeries:
    def test_even_odd_partition(self):
        series = make_series(10)
        train, test = split_series(series)
        assert len(train) == 5
        assert len(test) == 5
        assert np.array_equal(train.timestamps, series.timestamps[0::2])
        assert np.array_equal(test.matrix, series.matrix[:, 1::2])

    def test_odd_length(self):
        train, test = split_series(make_series(7))
        assert len(train) == 4
        assert len(test) == 3

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            split_series(make_series(1))

    def test_halves_cover_everything(self):
        series = make_series(8)
        train, test = split_series(series)
        merged = sorted(train.timestamps.tolist() + test.timestamps.tolist())
        assert merged == series.timestamps.tolist()


class TestHoldoutAccuracy:
    def test_paper_configuration_accuracy(self, training_outcome):
        point = holdout_accuracy(training_outcome, n_components=2, k=3)
        assert point.accuracy > 0.9
        assert point.n_components == 2
        assert point.k == 3
        assert point.n_metrics == 8

    def test_custom_selector_dimension_reported(self, training_outcome):
        point = holdout_accuracy(
            training_outcome,
            n_components=2,
            selector=MetricSelector(names=("cpu_user", "io_bi", "bytes_out", "swap_in")),
        )
        assert point.n_metrics == 4
        assert point.accuracy > 0.7

    def test_description_mentions_configuration(self, training_outcome):
        point = holdout_accuracy(training_outcome, n_components=3, k=5)
        assert "q=3" in point.description
        assert "k=5" in point.description
