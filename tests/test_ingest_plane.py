"""The ingest plane: watermarks, late/duplicate policy, merged drains."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ingest import IngestPlane, MetricAnnouncement, MulticastChannel, ingest_slo_rules
from repro.metrics.catalog import NUM_METRICS


def ann(node: str, ts: float, fill: float = 1.0) -> MetricAnnouncement:
    return MetricAnnouncement(node=node, timestamp=ts, values=np.full(NUM_METRICS, fill))


class TestConstruction:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            IngestPlane(capacity=0)
        with pytest.raises(ValueError, match="lateness"):
            IngestPlane(lateness_s=-1.0)
        with pytest.raises(ValueError, match="late_policy"):
            IngestPlane(late_policy="reorder")

    def test_attach_requires_channel(self):
        plane = IngestPlane()
        with pytest.raises(RuntimeError, match="no channel"):
            plane.attach()

    def test_attach_detach_idempotent(self):
        channel = MulticastChannel()
        plane = IngestPlane(channel)
        assert plane.attached
        plane.attach()
        plane.detach()
        plane.detach()
        assert not plane.attached
        channel.announce(ann("a", 1.0))
        assert plane.buffered == 0, "detached planes ignore the channel"

    def test_preregistered_nodes_fix_node_ids(self):
        plane = IngestPlane(nodes=["a", "b"])
        assert plane.node_names == ("a", "b")
        plane.push("c", 1.0, np.ones(NUM_METRICS))
        assert plane.stats().filtered == 1
        assert plane.node_names == ("a", "b")


class TestDrainMerge:
    def test_merges_across_nodes_chronologically(self):
        plane = IngestPlane()
        plane.push("b", 2.0, np.full(NUM_METRICS, 20.0))
        plane.push("a", 1.0, np.full(NUM_METRICS, 10.0))
        plane.push("a", 3.0, np.full(NUM_METRICS, 30.0))
        batch = plane.drain()
        assert batch.timestamps.tolist() == [1.0, 2.0, 3.0]
        assert [batch.nodes[i] for i in batch.node_ids] == ["a", "b", "a"]
        assert batch.values[:, 0].tolist() == [10.0, 20.0, 30.0]

    def test_ties_break_in_node_registration_order(self):
        plane = IngestPlane(nodes=["a", "b"])
        plane.push("b", 1.0, np.full(NUM_METRICS, 2.0))
        plane.push("a", 1.0, np.full(NUM_METRICS, 1.0))
        batch = plane.drain()
        assert [batch.nodes[i] for i in batch.node_ids] == ["a", "b"]

    def test_empty_drain(self):
        plane = IngestPlane()
        batch = plane.drain()
        assert len(batch) == 0
        assert batch.timestamps.shape == (0,)
        assert batch.values.shape == (0, NUM_METRICS)
        assert plane.stats().drains == 0, "empty drains do not count as drains"

    def test_single_node(self):
        plane = IngestPlane()
        for t in (1.0, 2.0, 3.0):
            plane.push("only", t, np.full(NUM_METRICS, t))
        batch = plane.drain()
        assert len(batch) == 3
        assert batch.nodes == ("only",)
        assert batch.node_ids.tolist() == [0, 0, 0]

    def test_drain_consumes(self):
        plane = IngestPlane()
        plane.push("a", 1.0, np.ones(NUM_METRICS))
        assert len(plane.drain()) == 1
        assert len(plane.drain()) == 0


class TestMaxRows:
    def test_truncation_keeps_remainder_buffered(self):
        plane = IngestPlane()
        for t in (1.0, 3.0, 5.0):
            plane.push("a", t, np.full(NUM_METRICS, t))
        for t in (2.0, 4.0, 6.0):
            plane.push("b", t, np.full(NUM_METRICS, t))
        first = plane.drain(4)
        assert first.timestamps.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert plane.buffered == 2
        second = plane.drain(4)
        assert second.timestamps.tolist() == [5.0, 6.0]
        assert plane.buffered == 0

    def test_truncated_sequence_equals_one_big_drain(self):
        rng = np.random.default_rng(3)

        def fill(plane):
            for node in ("a", "b", "c"):
                t = 0.0
                for _ in range(20):
                    t += float(rng.uniform(0.1, 2.0))
                    plane.push(node, t, np.full(NUM_METRICS, t))

        rng = np.random.default_rng(3)
        whole = IngestPlane()
        fill(whole)
        expected = whole.drain().timestamps.copy()

        rng = np.random.default_rng(3)
        chunked = IngestPlane()
        fill(chunked)
        got = []
        while True:
            batch = chunked.drain(7)
            if len(batch) == 0:
                break
            got.extend(batch.timestamps.tolist())
        assert got == expected.tolist()

    def test_invalid_max_rows(self):
        with pytest.raises(ValueError, match="max_rows"):
            IngestPlane().drain(0)


class TestWatermarkAndLateness:
    def test_lateness_holds_back_recent_rows(self):
        plane = IngestPlane(lateness_s=2.0)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            plane.push("a", t, np.full(NUM_METRICS, t))
        assert plane.watermark == 3.0
        batch = plane.drain()
        assert batch.timestamps.tolist() == [1.0, 2.0, 3.0], "rows behind the watermark only"
        assert plane.buffered == 2

    def test_held_back_row_lands_in_correct_merged_position(self):
        plane = IngestPlane(lateness_s=2.0)
        plane.push("a", 1.0, np.ones(NUM_METRICS))
        plane.push("a", 5.0, np.ones(NUM_METRICS))
        assert plane.drain().timestamps.tolist() == [1.0]
        # Out-of-order arrival within the lateness budget: ts=4 arrives
        # after ts=5 was seen but before the watermark passes it.
        plane.push("b", 4.0, np.ones(NUM_METRICS))
        plane.push("a", 7.0, np.ones(NUM_METRICS))
        batch = plane.drain()
        assert batch.timestamps.tolist() == [4.0, 5.0]
        assert plane.stats().late_accepted == 0, "within-budget reordering is not late"

    def test_flush_ignores_lateness(self):
        plane = IngestPlane(lateness_s=100.0)
        for t in (1.0, 2.0, 3.0):
            plane.push("a", t, np.full(NUM_METRICS, t))
        assert len(plane.drain()) == 0
        batch = plane.drain(flush=True)
        assert batch.timestamps.tolist() == [1.0, 2.0, 3.0]
        assert batch.watermark == np.inf

    def test_late_accept_emits_in_next_drain(self):
        plane = IngestPlane()
        plane.push("a", 5.0, np.ones(NUM_METRICS))
        assert plane.drain().timestamps.tolist() == [5.0]
        assert plane.frontier == 5.0
        accepted = plane.push("a", 3.0, np.full(NUM_METRICS, 3.0))
        assert accepted is True
        stats = plane.stats()
        assert stats.late_accepted == 1
        assert stats.late_dropped == 0
        batch = plane.drain()
        assert batch.timestamps.tolist() == [3.0], "late row surfaces in a later drain"

    def test_late_drop_discards(self):
        plane = IngestPlane(late_policy="drop")
        plane.push("a", 5.0, np.ones(NUM_METRICS))
        plane.drain()
        accepted = plane.push("a", 3.0, np.ones(NUM_METRICS))
        assert accepted is False
        stats = plane.stats()
        assert stats.late_dropped == 1
        assert plane.buffered == 0
        assert len(plane.drain()) == 0


class TestDropAccounting:
    def test_duplicate_timestamp_dropped(self):
        plane = IngestPlane()
        assert plane.push("a", 1.0, np.ones(NUM_METRICS)) is True
        assert plane.push("a", 1.0, np.ones(NUM_METRICS)) is False
        assert plane.stats().duplicates == 1
        assert plane.buffered == 1

    def test_filtered_node_dropped(self):
        plane = IngestPlane(nodes=["a"])
        assert plane.push("z", 1.0, np.ones(NUM_METRICS)) is False
        assert plane.stats().filtered == 1
        assert plane.buffered == 0

    def test_overflow_counted_in_stats(self):
        plane = IngestPlane(capacity=2)
        for t in (1.0, 2.0, 3.0, 4.0):
            plane.push("a", t, np.full(NUM_METRICS, t))
        stats = plane.stats()
        assert stats.overflowed == 2
        assert stats.received == 4
        assert plane.drain().timestamps.tolist() == [3.0, 4.0]

    def test_stats_snapshot_is_consistent(self):
        plane = IngestPlane(nodes=["a"])
        plane.push("a", 1.0, np.ones(NUM_METRICS))
        plane.push("a", 1.0, np.ones(NUM_METRICS))  # duplicate
        plane.push("z", 2.0, np.ones(NUM_METRICS))  # filtered
        plane.drain()
        plane.push("a", 0.5, np.ones(NUM_METRICS))  # late
        stats = plane.stats()
        assert stats.received == 4
        assert stats.duplicates == 1
        assert stats.filtered == 1
        assert stats.late_accepted == 1
        assert stats.drains == 1
        assert stats.drained_rows == 1
        assert stats.buffered == 1


class TestBufferReuse:
    def test_drain_views_are_invalidated_by_next_drain(self):
        plane = IngestPlane()
        plane.push("a", 1.0, np.full(NUM_METRICS, 10.0))
        first = plane.drain()
        kept = first.timestamps.copy()
        plane.push("a", 2.0, np.full(NUM_METRICS, 20.0))
        second = plane.drain()
        # Same reused storage underneath both batches.
        assert first.timestamps.base is second.timestamps.base
        assert first.timestamps[0] == second.timestamps[0] == 2.0
        assert kept[0] == 1.0

    def test_new_node_regrows_buffers(self):
        plane = IngestPlane(capacity=4)
        plane.push("a", 1.0, np.ones(NUM_METRICS))
        plane.drain()
        plane.push("b", 2.0, np.ones(NUM_METRICS))
        plane.push("a", 3.0, np.ones(NUM_METRICS))
        batch = plane.drain()
        assert batch.timestamps.tolist() == [2.0, 3.0]
        assert batch.nodes == ("a", "b")


class TestChannelIntegration:
    def test_announcements_land_via_channel(self):
        channel = MulticastChannel()
        plane = IngestPlane(channel)
        channel.announce(ann("a", 1.0, 11.0))
        channel.announce(ann("b", 2.0, 22.0))
        batch = plane.drain()
        assert len(batch) == 2
        assert [batch.nodes[i] for i in batch.node_ids] == ["a", "b"]


def test_slo_rules_cover_the_ingest_instruments():
    rules = ingest_slo_rules()
    names = {r.name for r in rules}
    assert names == {
        "ingest-overflow-rate",
        "ingest-late-rate",
        "ingest-ring-occupancy",
        "ingest-drain-p99-seconds",
        "ingest-drain-to-classify-p99",
    }
    metrics = {r.metric for r in rules}
    assert "ingest.announcements.dropped" in metrics
    assert "ingest.ring.occupancy" in metrics
    assert "ingest.drain_to_classify.seconds" in metrics
