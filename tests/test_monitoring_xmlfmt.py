"""Tests for Ganglia XML rendering and parsing."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS, metric_index
from repro.monitoring.aggregator import GmetadAggregator
from repro.monitoring.multicast import MetricAnnouncement, MulticastChannel
from repro.monitoring.xmlfmt import (
    parse_cluster_xml,
    parse_host,
    render_announcement_xml,
    render_cluster_xml,
)


def make_announcement(node="VM1", t=35.0):
    values = np.zeros(NUM_METRICS)
    values[metric_index("cpu_user")] = 82.5
    values[metric_index("io_bi")] = 440.25
    values[metric_index("bytes_out")] = 1.25e7
    return MetricAnnouncement(node=node, timestamp=t, values=values)


def test_render_contains_schema_elements():
    xml = render_announcement_xml(make_announcement())
    assert '<HOST NAME="VM1" REPORTED="35">' in xml
    assert 'NAME="cpu_user"' in xml
    assert 'UNITS="%"' in xml
    assert 'TYPE="float"' in xml


def test_host_round_trip():
    original = make_announcement()
    import xml.etree.ElementTree as ET

    parsed = parse_host(ET.fromstring(render_announcement_xml(original)))
    assert parsed.node == original.node
    assert parsed.timestamp == original.timestamp
    assert np.allclose(parsed.values, original.values, atol=1e-6)


def test_cluster_round_trip_via_aggregator():
    channel = MulticastChannel()
    agg = GmetadAggregator(channel)
    channel.announce(make_announcement("VM1", 35.0))
    channel.announce(make_announcement("VM2", 35.0))
    xml = render_cluster_xml(agg, cluster_name="testbed", localtime=40.0)
    assert 'CLUSTER NAME="testbed"' in xml
    parsed = parse_cluster_xml(xml)
    assert [a.node for a in parsed] == ["VM1", "VM2"]
    assert np.isclose(parsed[0].values[metric_index("cpu_user")], 82.5)


def test_parse_rejects_wrong_root():
    with pytest.raises(ValueError, match="GANGLIA_XML"):
        parse_cluster_xml("<WRONG/>")


def test_parse_host_validation():
    import xml.etree.ElementTree as ET

    with pytest.raises(ValueError, match="HOST"):
        parse_host(ET.fromstring("<METRIC/>"))
    with pytest.raises(ValueError, match="NAME/REPORTED"):
        parse_host(ET.fromstring("<HOST/>"))
    with pytest.raises(ValueError, match="NAME/VAL"):
        parse_host(ET.fromstring('<HOST NAME="x" REPORTED="1"><METRIC/></HOST>'))


def test_parse_unknown_metric_rejected():
    import xml.etree.ElementTree as ET

    bad = '<HOST NAME="x" REPORTED="1"><METRIC NAME="gpu_temp" VAL="9"/></HOST>'
    with pytest.raises(KeyError):
        parse_host(ET.fromstring(bad))


def test_live_gmond_xml_path(classifier):
    """Render a real simulation's aggregator state and classify from XML."""
    from repro.monitoring.stack import MonitoringStack
    from repro.sim.engine import SimulationEngine
    from repro.sim.execution import classification_testbed
    from repro.workloads.base import WorkloadInstance
    from tests.conftest import short_io_workload

    cluster = classification_testbed()
    engine = SimulationEngine(cluster, seed=5)
    stack = MonitoringStack(engine, seed=6)
    engine.add_instance(WorkloadInstance(short_io_workload(60.0), vm_name="VM1"))
    engine.run()
    xml = render_cluster_xml(stack.aggregator, localtime=engine.now)
    parsed = parse_cluster_xml(xml)
    vm1 = [a for a in parsed if a.node == "VM1"][0]
    # The on-the-wire snapshot still classifies correctly.
    from repro.core.online import SnapshotClass
    from repro.metrics.catalog import metric_indices

    names = classifier.preprocessor.selector.names
    pred = classifier.classify_snapshot_features(
        vm1.values[metric_indices(names)][None, :]
    )[0]
    assert pred == int(SnapshotClass.IO)
