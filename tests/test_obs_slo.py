"""Tests for declarative SLO monitor rules (deterministic, zero sleeps)."""

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    RULE_KINDS,
    SloRule,
    Verdict,
    default_rules,
    evaluate,
    evaluate_rule,
    render_results,
    worst,
)
from repro.obs.timeseries import MetricsRecorder


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class ManualClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def registry(clock):
    return MetricsRegistry(clock=clock)


@pytest.fixture()
def recorder(registry):
    return MetricsRecorder(registry)


def counter_rule(warn=1.0, page=10.0, **kw):
    return SloRule("drops", "counter_rate", "dropped", warn=warn, page=page, **kw)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown rule kind"):
            SloRule("r", "median", "m", warn=1.0, page=2.0)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            SloRule("r", "histogram_quantile", "m", warn=1.0, page=2.0, quantile=1.5)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SloRule("r", "counter_rate", "m", warn=1.0, page=2.0, window_s=0.0)

    def test_all_kinds_constructible(self):
        for kind in RULE_KINDS:
            SloRule("r", kind, "m", warn=1.0, page=2.0)


class TestCounterRate:
    def drive(self, registry, recorder, clock, increments):
        c = registry.counter("dropped")
        clock.t = 0.0
        recorder.sample()
        c.inc(increments)
        clock.t = 10.0
        recorder.sample()

    def test_ok_below_warn(self, registry, recorder, clock):
        self.drive(registry, recorder, clock, 5)  # 0.5/s
        result = evaluate_rule(counter_rule(), recorder)
        assert result.verdict is Verdict.OK
        assert result.value == pytest.approx(0.5)

    def test_warn_between_thresholds(self, registry, recorder, clock):
        self.drive(registry, recorder, clock, 50)  # 5/s
        result = evaluate_rule(counter_rule(), recorder)
        assert result.verdict is Verdict.WARN
        assert "warn threshold" in result.reason

    def test_page_at_or_above_page(self, registry, recorder, clock):
        self.drive(registry, recorder, clock, 100)  # 10/s
        result = evaluate_rule(counter_rule(), recorder)
        assert result.verdict is Verdict.PAGE
        assert "page threshold" in result.reason

    def test_single_sample_is_no_data(self, registry, recorder):
        registry.counter("dropped").inc(1000)
        recorder.sample()  # a rate needs two samples
        result = evaluate_rule(counter_rule(), recorder)
        assert result.verdict is Verdict.OK
        assert result.value is None
        assert result.reason == "no data in window"


class TestGaugeThreshold:
    def rule(self, **kw):
        return SloRule("depth", "gauge_threshold", "queue", warn=32.0, page=56.0, **kw)

    def test_uses_last_sampled_value(self, registry, recorder, clock):
        g = registry.gauge("queue")
        g.set(40.0)
        recorder.sample()
        g.set(10.0)
        clock.t = 1.0
        recorder.sample()
        result = evaluate_rule(self.rule(), recorder)
        assert result.verdict is Verdict.OK
        assert result.value == 10.0

    def test_page_on_high_gauge(self, registry, recorder):
        registry.gauge("queue").set(60.0)
        recorder.sample()
        assert evaluate_rule(self.rule(), recorder).verdict is Verdict.PAGE

    def test_below_rule_trips_on_low_values(self, registry, recorder):
        registry.gauge("queue").set(1.0)
        recorder.sample()
        low = SloRule(
            "starved", "gauge_threshold", "queue", warn=5.0, page=2.0, below=True
        )
        result = evaluate_rule(low, recorder)
        assert result.verdict is Verdict.PAGE
        assert "<=" in result.reason


class TestHistogramQuantile:
    def rule(self, **kw):
        return SloRule(
            "p99", "histogram_quantile", "lat", warn=0.05, page=0.5, quantile=0.99, **kw
        )

    def test_ok_fast_distribution(self, registry, recorder):
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(100):
            h.observe(0.005)
        recorder.sample()
        result = evaluate_rule(self.rule(), recorder)
        assert result.verdict is Verdict.OK
        assert result.value <= 0.01

    def test_page_slow_distribution(self, registry, recorder):
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(100):
            h.observe(0.9)
        recorder.sample()
        assert evaluate_rule(self.rule(), recorder).verdict is Verdict.PAGE


class TestLabelFanout:
    def test_worst_series_decides(self, registry, recorder):
        registry.histogram("lat", buckets=(0.01, 0.1, 1.0), stage="pca").observe(0.005)
        registry.histogram("lat", buckets=(0.01, 0.1, 1.0), stage="knn").observe(0.9)
        recorder.sample()
        rule = SloRule(
            "p99", "histogram_quantile", "lat", warn=0.05, page=0.5, quantile=0.99
        )
        result = evaluate_rule(rule, recorder)
        assert result.verdict is Verdict.PAGE  # the slow knn series wins

    def test_label_filter_narrows_candidates(self, registry, recorder):
        registry.gauge("queue", pool="a").set(60.0)
        registry.gauge("queue", pool="b").set(1.0)
        recorder.sample()
        rule = SloRule(
            "depth", "gauge_threshold", "queue", warn=32.0, page=56.0,
            labels=(("pool", "b"),),
        )
        assert evaluate_rule(rule, recorder).verdict is Verdict.OK

    def test_missing_metric_is_no_data(self, recorder):
        result = evaluate_rule(counter_rule(), recorder)
        assert result.verdict is Verdict.OK
        assert result.reason == "no data in window"


class TestEvaluateAndWorst:
    def test_results_in_rule_order(self, registry, recorder):
        registry.gauge("queue").set(60.0)
        recorder.sample()
        rules = [
            counter_rule(),
            SloRule("depth", "gauge_threshold", "queue", warn=32.0, page=56.0),
        ]
        results = evaluate(rules, recorder)
        assert [r.rule.name for r in results] == ["drops", "depth"]
        assert worst(results) is Verdict.PAGE

    def test_worst_of_empty_is_ok(self):
        assert worst([]) is Verdict.OK

    def test_verdict_ordering(self):
        assert Verdict.OK < Verdict.WARN < Verdict.PAGE


class TestDefaultRules:
    def test_pack_covers_wired_hot_paths(self):
        rules = default_rules()
        assert [r.name for r in rules] == [
            "online-drop-rate",
            "serve-queue-depth",
            "serve-overload-rate",
            "stage-p99-seconds",
            "serve-queue-wait-p99",
        ]
        assert all(r.kind in RULE_KINDS for r in rules)
        assert all(r.page >= r.warn for r in rules)

    def test_default_rules_ok_on_empty_recorder(self, recorder):
        results = evaluate(default_rules(), recorder)
        assert worst(results) is Verdict.OK


class TestRender:
    def test_render_empty(self):
        assert render_results([]) == "(no rules)"

    def test_render_table_and_overall(self, registry, recorder):
        registry.gauge("queue").set(60.0)
        recorder.sample()
        rules = [SloRule("depth", "gauge_threshold", "queue", warn=32.0, page=56.0)]
        text = render_results(evaluate(rules, recorder))
        lines = text.splitlines()
        assert lines[0].split() == ["RULE", "KIND", "METRIC", "VERDICT", "VALUE", "REASON"]
        assert "PAGE" in lines[1]
        assert lines[-1] == "overall: PAGE"
