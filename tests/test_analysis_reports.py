"""Tests for report/table rendering."""

import numpy as np
import pytest

from repro.analysis.reports import (
    format_table,
    percent_cell,
    render_bar_chart,
    render_table3,
    render_table4,
    table3_row,
)
from repro.core.labels import ClassComposition, SnapshotClass
from repro.core.pipeline import ClassificationResult, StageTimings


def make_result(fractions=(0.0, 0.9615, 0.0, 0.0, 0.0385), m=52):
    vec = np.concatenate([np.full(int(round(f * m)), i) for i, f in enumerate(fractions)])
    comp = ClassComposition(fractions=fractions)
    return ClassificationResult(
        node="VM1",
        num_samples=m,
        class_vector=vec,
        composition=comp,
        application_class=comp.dominant(),
        category="IO & Paging Intensive",
        scores=np.zeros((m, 2)),
        timings=StageTimings(),
    )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])


class TestPercentCell:
    def test_dash_for_zero(self):
        """The paper prints '–' for absent classes."""
        assert percent_cell(0.0) == "–"
        assert percent_cell(0.0001) == "–"

    def test_two_decimals(self):
        assert percent_cell(0.9615) == "96.15%"
        assert percent_cell(1.0) == "100.00%"


class TestTable3:
    def test_row_layout(self):
        row = table3_row("PostMark", make_result())
        assert row[0] == "PostMark"
        assert row[1] == "52"
        # Idle, I/O, CPU, Network, Paging order.
        assert row[2] == "–"
        assert row[3] == "96.15%"
        assert row[6] == "3.85%"

    def test_render_table3(self):
        text = render_table3([("PostMark", make_result())])
        assert "Test Application" in text
        assert "96.15%" in text


class TestTable4:
    def test_render(self):
        text = render_table4(
            concurrent={"CH3D": 613.0, "PostMark": 310.0},
            sequential={"CH3D": 488.0, "PostMark": 264.0},
        )
        assert "613" in text
        assert "752" in text  # sequential total

    def test_mismatched_apps_rejected(self):
        with pytest.raises(ValueError):
            render_table4({"A": 1.0}, {"B": 1.0})


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart(["a", "b"], [50.0, 100.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0], width=0)

    def test_empty(self):
        assert render_bar_chart([], []) == "(no data)"
