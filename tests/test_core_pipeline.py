"""Tests for the end-to-end classifier pipeline (paper Figure 2)."""

import numpy as np
import pytest

from repro.core.labels import SnapshotClass
from repro.core.pipeline import ApplicationClassifier, StageTimings
from repro.core.preprocessing import MetricSelector
from repro.metrics.catalog import NUM_METRICS, metric_index
from repro.metrics.series import SnapshotSeries


def synthetic_series(kind: str, m=40, seed=0, node="VM1") -> SnapshotSeries:
    """Gmond-like series with one dominant resource signature."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((NUM_METRICS, m))
    matrix[metric_index("cpu_idle")] = 95.0
    if kind == "cpu":
        matrix[metric_index("cpu_user")] = 90.0 + rng.normal(0, 2, m)
        matrix[metric_index("cpu_system")] = 4.0 + rng.normal(0, 0.5, m)
    elif kind == "io":
        matrix[metric_index("io_bi")] = 500.0 + rng.normal(0, 30, m)
        matrix[metric_index("io_bo")] = 520.0 + rng.normal(0, 30, m)
        matrix[metric_index("cpu_system")] = 12.0 + rng.normal(0, 1, m)
    elif kind == "net":
        matrix[metric_index("bytes_out")] = 4e7 + rng.normal(0, 2e6, m)
        matrix[metric_index("bytes_in")] = 2e6 + rng.normal(0, 1e5, m)
        matrix[metric_index("cpu_system")] = 25.0 + rng.normal(0, 2, m)
    elif kind == "mem":
        matrix[metric_index("swap_in")] = 800.0 + rng.normal(0, 60, m)
        matrix[metric_index("swap_out")] = 700.0 + rng.normal(0, 60, m)
        matrix[metric_index("io_bi")] = 800.0 + rng.normal(0, 60, m)
    elif kind == "idle":
        matrix[metric_index("cpu_user")] = 0.5 + np.abs(rng.normal(0, 0.2, m))
    else:
        raise ValueError(kind)
    matrix = np.abs(matrix)
    return SnapshotSeries(node=node, timestamps=np.arange(1, m + 1) * 5.0, matrix=matrix)


def synthetic_training():
    return [
        (synthetic_series("idle", seed=1), SnapshotClass.IDLE),
        (synthetic_series("io", seed=2), SnapshotClass.IO),
        (synthetic_series("cpu", seed=3), SnapshotClass.CPU),
        (synthetic_series("net", seed=4), SnapshotClass.NET),
        (synthetic_series("mem", seed=5), SnapshotClass.MEM),
    ]


@pytest.fixture(scope="module")
def trained():
    return ApplicationClassifier().train(synthetic_training())


class TestTraining:
    def test_requires_data(self):
        with pytest.raises(ValueError):
            ApplicationClassifier().train([])

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            ApplicationClassifier().train(
                [(synthetic_series("cpu"), SnapshotClass.CPU)]
            )

    def test_trained_flag(self, trained):
        assert trained.trained
        assert not ApplicationClassifier().trained

    def test_training_scores_stored(self, trained):
        assert trained.training_scores_.shape == (200, 2)
        assert trained.training_labels_.shape == (200,)

    def test_paper_dimensions(self, trained):
        """33 → 8 → 2 → 1 (Figure 2)."""
        assert trained.preprocessor.selector.dimension == 8
        assert trained.pca.n_components_ == 2
        assert trained.knn.k == 3

    def test_variance_fraction_mode(self):
        clf = ApplicationClassifier(min_variance_fraction=0.99)
        clf.train(synthetic_training())
        assert clf.pca.n_components_ >= 2


class TestClassification:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("cpu", SnapshotClass.CPU),
            ("io", SnapshotClass.IO),
            ("net", SnapshotClass.NET),
            ("mem", SnapshotClass.MEM),
            ("idle", SnapshotClass.IDLE),
        ],
    )
    def test_pure_series_classified(self, trained, kind, expected):
        result = trained.classify_series(synthetic_series(kind, seed=42))
        assert result.application_class is expected
        assert result.composition.fraction(expected) > 0.9

    def test_result_shape(self, trained):
        result = trained.classify_series(synthetic_series("cpu", m=25, seed=9))
        assert result.num_samples == 25
        assert result.class_vector.shape == (25,)
        assert result.scores.shape == (25, 2)
        assert result.node == "VM1"

    def test_composition_matches_class_vector(self, trained):
        result = trained.classify_series(synthetic_series("io", seed=10))
        counts = np.bincount(result.class_vector, minlength=5)
        assert np.allclose(counts / counts.sum(), result.composition.fractions)

    def test_percent_helper(self, trained):
        result = trained.classify_series(synthetic_series("net", seed=11))
        assert result.percent(SnapshotClass.NET) == pytest.approx(
            100 * result.composition.net
        )

    def test_timings_populated(self, trained):
        result = trained.classify_series(synthetic_series("cpu", seed=12))
        t = result.timings
        assert t.total_s > 0
        assert t.per_sample_ms(result.num_samples) > 0

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            ApplicationClassifier().classify_series(synthetic_series("cpu"))

    def test_classify_snapshot_features(self, trained):
        series = synthetic_series("cpu", seed=13)
        raw = series.feature_matrix(trained.preprocessor.selector.names)
        preds = trained.classify_snapshot_features(raw)
        assert (preds == int(SnapshotClass.CPU)).mean() > 0.9

    def test_custom_selector(self):
        clf = ApplicationClassifier(
            selector=MetricSelector(names=("cpu_user", "io_bi", "bytes_out", "swap_in"))
        )
        clf.train(synthetic_training())
        result = clf.classify_series(synthetic_series("cpu", seed=21))
        assert result.application_class is SnapshotClass.CPU


class TestStageTimings:
    def test_total(self):
        t = StageTimings(preprocess_s=1.0, pca_s=2.0, classify_s=3.0, vote_s=4.0)
        assert t.total_s == 10.0
        assert t.per_sample_ms(100) == pytest.approx(100.0)

    def test_per_sample_validation(self):
        with pytest.raises(ValueError):
            StageTimings().per_sample_ms(0)
