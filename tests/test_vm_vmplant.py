"""Tests for the VMPlant cloning service."""

import pytest

from repro.vm.cluster import Cluster
from repro.vm.dag import ConfigDAG, install_package, set_memory, set_vcpus
from repro.vm.vmplant import CloneRequest, VMPlant


def make_plant():
    cluster = Cluster()
    cluster.add_host("h1")
    plant = VMPlant(cluster=cluster)
    dag = ConfigDAG("seis-template")
    dag.add_action(set_memory(256))
    dag.add_action(set_vcpus(1))
    dag.add_action(install_package("specseis96"))
    plant.register_template("specseis", dag)
    return plant


def test_register_duplicate_template_rejected():
    plant = make_plant()
    with pytest.raises(ValueError):
        plant.register_template("specseis", ConfigDAG())


def test_materialize_spec_from_template():
    plant = make_plant()
    spec = plant.materialize_spec(CloneRequest(template="specseis", host="h1"))
    assert spec.mem_mb == 256.0
    assert "specseis96" in spec.packages


def test_materialize_unknown_template():
    plant = make_plant()
    with pytest.raises(KeyError, match="unknown template"):
        plant.materialize_spec(CloneRequest(template="ghost", host="h1"))


def test_clone_attaches_vm():
    plant = make_plant()
    vm = plant.clone(CloneRequest(template="specseis", host="h1", vm_name="VM1"))
    assert vm.name == "VM1"
    assert vm.mem_mb == 256.0
    assert plant.cluster.host_of("VM1").name == "h1"


def test_clone_memory_override():
    """Per-request specialization, as the SPECseis96 B experiment needs."""
    plant = make_plant()
    vm = plant.clone(CloneRequest(template="specseis", host="h1", mem_mb=32.0))
    assert vm.mem_mb == 32.0


def test_clone_autonames_uniquely():
    plant = make_plant()
    a = plant.clone(CloneRequest(template="specseis", host="h1"))
    b = plant.clone(CloneRequest(template="specseis", host="h1"))
    assert a.name != b.name


def test_clone_unknown_host():
    plant = make_plant()
    with pytest.raises(KeyError):
        plant.clone(CloneRequest(template="specseis", host="ghost"))
