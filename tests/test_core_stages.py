"""Tests for multi-stage analysis (mode filter, segmentation, migration)."""

import numpy as np
import pytest

from repro.core.labels import SnapshotClass
from repro.core.stages import (
    Stage,
    StageAnalysis,
    find_migration_opportunities,
    mode_filter,
    segment_stages,
)
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries
from repro.core.pipeline import ClassificationResult, StageTimings
from repro.core.labels import ClassComposition


def make_result_and_series(class_vector, d=5.0):
    class_vector = np.asarray(class_vector, dtype=np.int64)
    m = class_vector.size
    series = SnapshotSeries(
        node="VM1",
        timestamps=np.arange(1, m + 1) * d,
        matrix=np.zeros((NUM_METRICS, m)),
    )
    comp = ClassComposition.from_class_vector(class_vector)
    result = ClassificationResult(
        node="VM1",
        num_samples=m,
        class_vector=class_vector,
        composition=comp,
        application_class=comp.dominant(),
        category="x",
        scores=np.zeros((m, 2)),
        timings=StageTimings(),
    )
    return result, series


class TestModeFilter:
    def test_window_one_identity(self):
        v = np.array([1, 2, 1, 2])
        assert np.array_equal(mode_filter(v, 1), v)

    def test_suppresses_single_flicker(self):
        v = np.array([2, 2, 2, 1, 2, 2, 2])
        out = mode_filter(v, 3)
        assert out.tolist() == [2] * 7

    def test_preserves_genuine_transition(self):
        v = np.array([2, 2, 2, 2, 1, 1, 1, 1])
        out = mode_filter(v, 3)
        assert out.tolist() == v.tolist()

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            mode_filter(np.array([1, 2]), 2)

    def test_does_not_mutate_input(self):
        v = np.array([2, 2, 1, 2, 2])
        mode_filter(v, 3)
        assert v.tolist() == [2, 2, 1, 2, 2]


class TestSegmentation:
    def test_single_stage(self):
        result, series = make_result_and_series([2] * 10)
        analysis = segment_stages(result, series)
        assert analysis.num_stages == 1
        assert not analysis.is_multi_stage()
        stage = analysis.stages[0]
        assert stage.snapshot_class is SnapshotClass.CPU
        assert stage.num_snapshots == 10

    def test_alternating_stages(self):
        vec = [2] * 6 + [1] * 6 + [2] * 6
        result, series = make_result_and_series(vec)
        analysis = segment_stages(result, series)
        assert analysis.num_stages == 3
        assert analysis.is_multi_stage()
        assert [s.snapshot_class for s in analysis.stages] == [
            SnapshotClass.CPU,
            SnapshotClass.IO,
            SnapshotClass.CPU,
        ]

    def test_smoothing_merges_flicker_stages(self):
        vec = [2] * 6 + [1] + [2] * 6
        result, series = make_result_and_series(vec)
        rough = segment_stages(result, series, smoothing_window=1)
        smooth = segment_stages(result, series, smoothing_window=3)
        assert rough.num_stages == 3
        assert smooth.num_stages == 1

    def test_stage_timing(self):
        vec = [2] * 4 + [1] * 4
        result, series = make_result_and_series(vec, d=5.0)
        analysis = segment_stages(result, series)
        first, second = analysis.stages
        assert first.start_time == 5.0
        assert first.end_time == 20.0
        assert second.start_time == 25.0
        assert first.duration == 15.0

    def test_dominant_stage_class(self):
        vec = [2] * 10 + [1] * 4
        result, series = make_result_and_series(vec)
        assert segment_stages(result, series).dominant_stage_class() is SnapshotClass.CPU

    def test_stage_composition_after_smoothing(self):
        vec = [2] * 6 + [1] + [2] * 5
        result, series = make_result_and_series(vec)
        analysis = segment_stages(result, series, smoothing_window=3)
        assert analysis.stage_composition().cpu == 1.0

    def test_stages_of(self):
        vec = [2] * 4 + [1] * 4 + [2] * 4
        result, series = make_result_and_series(vec)
        analysis = segment_stages(result, series)
        assert len(analysis.stages_of(SnapshotClass.CPU)) == 2
        assert len(analysis.stages_of(SnapshotClass.NET)) == 0

    def test_length_mismatch_rejected(self):
        result, _ = make_result_and_series([2] * 5)
        _, other = make_result_and_series([2] * 6)
        with pytest.raises(ValueError):
            segment_stages(result, other)

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            Stage(0, SnapshotClass.CPU, 5, 4, 25.0, 20.0)
        with pytest.raises(ValueError):
            StageAnalysis(stages=[], smoothed_classes=np.array([]), sampling_interval=5.0)


class TestMigrationOpportunities:
    def test_long_class_change_detected(self):
        vec = [2] * 20 + [1] * 20
        result, series = make_result_and_series(vec, d=5.0)
        analysis = segment_stages(result, series)
        opportunities = find_migration_opportunities(analysis, min_stage_duration_s=60.0)
        assert len(opportunities) == 1
        assert opportunities[0].class_change == (SnapshotClass.CPU, SnapshotClass.IO)

    def test_short_stages_skipped(self):
        vec = [2] * 4 + [1] * 4
        result, series = make_result_and_series(vec, d=5.0)
        analysis = segment_stages(result, series)
        assert find_migration_opportunities(analysis, min_stage_duration_s=60.0) == []

    def test_idle_transitions_skipped_by_default(self):
        vec = [2] * 20 + [0] * 20
        result, series = make_result_and_series(vec, d=5.0)
        analysis = segment_stages(result, series)
        assert find_migration_opportunities(analysis) == []
        with_idle = find_migration_opportunities(analysis, ignore_idle=False)
        assert len(with_idle) == 1

    def test_negative_threshold_rejected(self):
        vec = [2] * 4 + [1] * 4
        result, series = make_result_and_series(vec)
        analysis = segment_stages(result, series)
        with pytest.raises(ValueError):
            find_migration_opportunities(analysis, min_stage_duration_s=-1.0)


class TestOnRealRun:
    def test_specseis_b_exposes_stages(self, classifier):
        """SPECseis96 on a tight VM alternates compute and paging stages."""
        from repro.sim.execution import profiled_run
        from repro.workloads.cpu import specseis96

        run = profiled_run(specseis96("small"), vm_mem_mb=32.0, seed=55)
        result = classifier.classify_series(run.series)
        analysis = segment_stages(result, run.series, smoothing_window=3)
        assert analysis.is_multi_stage()
        assert analysis.num_stages >= 3
