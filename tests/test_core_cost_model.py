"""Tests for the cost-based scheduling model (paper §4.4)."""

import pytest

from repro.core.cost_model import UnitCostModel
from repro.core.labels import ClassComposition


def comp(idle=0.0, io=0.0, cpu=0.0, net=0.0, mem=0.0):
    return ClassComposition(fractions=(idle, io, cpu, net, mem))


def test_weighted_average_formula():
    model = UnitCostModel(alpha=10.0, beta=8.0, gamma=6.0, delta=4.0, epsilon=1.0)
    c = comp(idle=0.1, io=0.2, cpu=0.3, net=0.25, mem=0.15)
    expected = 10.0 * 0.3 + 8.0 * 0.15 + 6.0 * 0.2 + 4.0 * 0.25 + 1.0 * 0.1
    assert model.unit_application_cost(c) == pytest.approx(expected)


def test_pure_cpu_costs_alpha():
    model = UnitCostModel(alpha=7.0)
    assert model.unit_application_cost(comp(cpu=1.0)) == pytest.approx(7.0)


def test_idle_cheapest_with_default_weights():
    model = UnitCostModel()
    assert model.unit_application_cost(comp(idle=1.0)) < model.unit_application_cost(
        comp(cpu=1.0)
    )


def test_run_cost_scales_with_time():
    model = UnitCostModel()
    c = comp(cpu=1.0)
    assert model.run_cost(c, 100.0) == pytest.approx(100.0 * model.unit_application_cost(c))
    assert model.run_cost(c, 0.0) == 0.0


def test_run_cost_rejects_negative_time():
    with pytest.raises(ValueError):
        UnitCostModel().run_cost(comp(cpu=1.0), -1.0)


def test_negative_unit_costs_rejected():
    with pytest.raises(ValueError):
        UnitCostModel(alpha=-1.0)


def test_provider_individualized_pricing():
    """Different providers can rank the same application differently."""
    io_heavy = comp(io=0.9, cpu=0.1)
    cpu_heavy = comp(cpu=0.9, io=0.1)
    io_expensive = UnitCostModel(alpha=1.0, gamma=20.0)
    cpu_expensive = UnitCostModel(alpha=20.0, gamma=1.0)
    assert io_expensive.unit_application_cost(io_heavy) > io_expensive.unit_application_cost(cpu_heavy)
    assert cpu_expensive.unit_application_cost(io_heavy) < cpu_expensive.unit_application_cost(cpu_heavy)
