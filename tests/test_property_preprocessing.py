"""Property-based tests for normalization and series invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.preprocessing import Normalizer
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries


def matrices(min_rows=2, max_rows=30, min_cols=1, max_cols=6):
    def build(draw):
        rows = draw(st.integers(min_rows, max_rows))
        cols = draw(st.integers(min_cols, max_cols))
        return draw(
            arrays(
                np.float64,
                (rows, cols),
                elements=st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False),
            )
        )

    return st.composite(build)()


@given(x=matrices())
@settings(max_examples=100, deadline=None)
def test_normalizer_output_statistics(x):
    z = Normalizer().fit_transform(x)
    assert np.allclose(z.mean(axis=0), 0.0, atol=1e-7)
    std = z.std(axis=0)
    # Unit variance for varying columns; (near-)constant columns — by the
    # normalizer's own relative threshold — stay near zero instead of
    # being blown up to ±1 by float residue.
    for j in range(x.shape[1]):
        col = x[:, j]
        if col.std() < 1e-9 * max(1.0, abs(col.mean())):
            assert std[j] < 1e-6
        else:
            assert abs(std[j] - 1.0) < 1e-6


@given(x=matrices())
@settings(max_examples=100, deadline=None)
def test_normalizer_round_trip(x):
    norm = Normalizer().fit(x)
    back = norm.inverse_transform(norm.transform(x))
    assert np.allclose(back, x, atol=1e-6 * (1 + np.abs(x).max()))


@given(x=matrices())
@settings(max_examples=60, deadline=None)
def test_normalization_idempotent_on_normalized_data(x):
    z = Normalizer().fit_transform(x)
    z2 = Normalizer().fit_transform(z)
    assert np.allclose(z2, z, atol=1e-6)


@given(
    m=st.integers(1, 20),
    d=st.floats(0.5, 30.0, allow_nan=False),
    values=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=60, deadline=None)
def test_series_window_concat_identity(m, d, values):
    matrix = np.full((NUM_METRICS, m), values)
    ts = np.arange(1, m + 1) * d
    series = SnapshotSeries(node="n", timestamps=ts, matrix=matrix)
    if m >= 2:
        mid = float(ts[0])  # split after the first snapshot
        left = series.window(ts[0], mid)
        right = series.window(mid + d / 2, ts[-1])
        rebuilt = left.concat(right)
        assert len(rebuilt) == m
        assert np.allclose(rebuilt.matrix, series.matrix)
