"""Tests for application DB run records."""

import numpy as np
import pytest

from repro.core.labels import ClassComposition, SnapshotClass
from repro.db.records import RunRecord


def make_record(app="postmark", t0=0.0, t1=264.0, n=52, cls=SnapshotClass.IO, io=1.0):
    comp = ClassComposition(fractions=(0.0, io, 1.0 - io, 0.0, 0.0))
    return RunRecord(
        application=app,
        node="VM1",
        t0=t0,
        t1=t1,
        num_samples=n,
        application_class=cls,
        composition=comp,
        environment={"vm_mem_mb": 256},
    )


def test_execution_time():
    assert make_record(t0=10.0, t1=40.0).execution_time == 30.0


def test_validation():
    with pytest.raises(ValueError):
        make_record(t0=100.0, t1=50.0)
    with pytest.raises(ValueError):
        make_record(n=0)


def test_round_trip_serialization():
    record = make_record()
    clone = RunRecord.from_dict(record.to_dict())
    assert clone == record


def test_to_dict_json_safe():
    import json

    payload = json.dumps(make_record().to_dict())
    assert "postmark" in payload


def test_from_dict_validates_composition_length():
    data = make_record().to_dict()
    data["composition"] = [1.0, 0.0]
    with pytest.raises(ValueError):
        RunRecord.from_dict(data)


def test_from_dict_parses_class_label():
    data = make_record(cls=SnapshotClass.NET, io=0.0).to_dict()
    data["composition"] = [0.0, 0.0, 0.0, 1.0, 0.0]
    record = RunRecord.from_dict(data)
    assert record.application_class is SnapshotClass.NET


def test_environment_preserved():
    clone = RunRecord.from_dict(make_record().to_dict())
    assert clone.environment == {"vm_mem_mb": 256}
