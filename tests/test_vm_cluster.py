"""Tests for cluster topology construction."""

import pytest

from repro.vm.cluster import Cluster, paper_testbed, single_vm_cluster
from repro.vm.resources import ResourceCapacity


def test_add_host_and_create_vm():
    c = Cluster()
    c.add_host("h1")
    vm = c.create_vm("h1", "VM1", mem_mb=128.0, vcpus=2)
    assert vm.mem_mb == 128.0
    assert vm.vcpus == 2
    assert c.vm("VM1") is vm
    assert c.host_of("VM1").name == "h1"


def test_duplicate_host_rejected():
    c = Cluster()
    c.add_host("h1")
    with pytest.raises(ValueError):
        c.add_host("h1")


def test_duplicate_vm_name_rejected_cluster_wide():
    c = Cluster()
    c.add_host("h1")
    c.add_host("h2")
    c.create_vm("h1", "VM1")
    with pytest.raises(ValueError):
        c.create_vm("h2", "VM1")


def test_create_vm_unknown_host():
    with pytest.raises(KeyError):
        Cluster().create_vm("ghost", "VM1")


def test_vm_lookup_unknown():
    with pytest.raises(KeyError):
        Cluster().vm("VMx")


def test_iter_vms_order():
    c = Cluster()
    c.add_host("h1")
    c.add_host("h2")
    c.create_vm("h1", "A")
    c.create_vm("h2", "B")
    c.create_vm("h1", "C")
    assert c.vm_names() == ["A", "C", "B"]


def test_custom_capacity():
    c = Cluster()
    c.add_host("h1", ResourceCapacity(cpu_cores=4.0))
    assert c.hosts["h1"].capacity.cpu_cores == 4.0


def test_paper_testbed_topology():
    c = paper_testbed()
    assert set(c.hosts) == {"host1", "host2"}
    assert c.host_of("VM1").name == "host1"
    for name in ("VM2", "VM3", "VM4"):
        assert c.host_of(name).name == "host2"
    assert c.hosts["host2"].capacity.cpu_mhz == 2400.0
    assert all(vm.mem_mb == 256.0 for vm in c.iter_vms())


def test_paper_testbed_vm1_memory_override():
    c = paper_testbed(vm1_mem_mb=32.0)
    assert c.vm("VM1").mem_mb == 32.0
    assert c.vm("VM2").mem_mb == 256.0


def test_single_vm_cluster():
    c = single_vm_cluster(mem_mb=64.0, vm_name="target")
    assert c.vm_names() == ["target"]
    assert c.vm("target").mem_mb == 64.0
