"""Shared fixtures.

The trained classifier is expensive (~2 s: five profiled training runs),
so it is built once per session.  Tests that need short profiled runs use
the fast workload helpers below instead of the full paper durations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.training import TrainingOutcome, build_trained_classifier
from repro.sim.execution import RunResult, profiled_run
from repro.vm.resources import ResourceDemand
from repro.workloads.base import Workload, constant_workload


@pytest.fixture(scope="session")
def training_outcome() -> TrainingOutcome:
    """The paper-configured classifier, trained once per test session."""
    return build_trained_classifier(seed=0)


@pytest.fixture(scope="session")
def classifier(training_outcome):
    return training_outcome.classifier


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def short_cpu_workload(duration: float = 60.0) -> Workload:
    """A fast CPU-bound job for engine tests."""
    return constant_workload(
        "mini-cpu",
        ResourceDemand(cpu_user=0.9, cpu_system=0.05, mem_mb=20.0),
        duration,
        expected_class="CPU",
    )


def short_io_workload(duration: float = 60.0) -> Workload:
    """A fast I/O-bound job for engine tests."""
    return constant_workload(
        "mini-io",
        ResourceDemand(cpu_user=0.1, cpu_system=0.1, io_bi=500.0, io_bo=500.0, mem_mb=20.0),
        duration,
        expected_class="IO",
    )


def short_net_workload(duration: float = 60.0, server_vm: str = "VM4") -> Workload:
    """A fast network-bound job for engine tests."""
    return constant_workload(
        "mini-net",
        ResourceDemand(cpu_system=0.2, net_out=40_000_000.0, net_in=1_000_000.0, mem_mb=20.0),
        duration,
        expected_class="NET",
        remote_vm=server_vm,
    )


@pytest.fixture(scope="session")
def short_cpu_run() -> RunResult:
    """A profiled 60 s CPU run (shared, read-only)."""
    return profiled_run(short_cpu_workload(), seed=3)


@pytest.fixture(scope="session")
def short_io_run() -> RunResult:
    """A profiled 60 s IO run (shared, read-only)."""
    return profiled_run(short_io_workload(), seed=4)
