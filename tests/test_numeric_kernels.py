"""Bit-identity regressions for the allocation-lean kernel rewrites.

The ``repro-qa numerics`` pass drove in-place rewrites of the hot
kernels (Normalizer, PCA covariance, pairwise distances, the batch
gather, and the vectorized mode filter).  Every rewrite claims *bitwise*
equality with the naive expression it replaced — these tests pin that
claim with ``np.array_equal`` against straight-line float64 references,
so a future "optimization" that silently reassociates a sum fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knn import pairwise_sq_distances
from repro.core.preprocessing import Normalizer
from repro.core.pca import PCA
from repro.core.stages import mode_filter


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestNormalizerBitIdentity:
    def fitted(self):
        x = rng(1).normal(size=(40, 8)) * 100.0
        return Normalizer().fit(x), x

    def test_transform_matches_expression(self):
        norm, _ = self.fitted()
        x = rng(2).normal(size=(23, 8)) * 7.0
        expected = (x - norm.mean_) / norm.scale_
        assert np.array_equal(norm.transform(x), expected)

    def test_transform_does_not_mutate_input(self):
        norm, _ = self.fitted()
        x = rng(3).normal(size=(5, 8))
        before = x.copy()
        norm.transform(x)
        assert np.array_equal(x, before)

    def test_inverse_transform_matches_expression(self):
        norm, _ = self.fitted()
        z = rng(4).normal(size=(23, 8))
        expected = z * norm.scale_ + norm.mean_
        assert np.array_equal(norm.inverse_transform(z), expected)

    def test_inverse_transform_does_not_mutate_input(self):
        norm, _ = self.fitted()
        z = rng(5).normal(size=(5, 8))
        before = z.copy()
        norm.inverse_transform(z)
        assert np.array_equal(z, before)


class TestPCACovarianceBitIdentity:
    def test_components_match_explicit_covariance(self):
        x = rng(6).normal(size=(50, 8)) * 3.0
        fitted = PCA(n_components=3).fit(x)

        # Reference path: the textbook covariance expression, identical
        # eigensolve and sign convention.
        import scipy.linalg

        m = x.shape[0]
        centered = x - x.mean(axis=0)
        cov = (centered.T @ centered) / (m - 1)
        eigenvalues, eigenvectors = scipy.linalg.eigh(cov)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        components = eigenvectors[:, :3].T
        signs = np.sign(components[np.arange(3), np.argmax(np.abs(components), axis=1)])
        signs[signs == 0] = 1.0

        assert np.array_equal(fitted.components_, components * signs[:, None])
        assert np.array_equal(fitted.explained_variance_, eigenvalues[:3])


class TestPairwiseDistancesBitIdentity:
    def test_matches_expansion_expression(self):
        a = rng(7).normal(size=(17, 2))
        b = rng(8).normal(size=(31, 2))
        aa = np.einsum("ij,ij->i", a, a)[:, None]
        bb = np.einsum("ij,ij->i", b, b)[None, :]
        expected = np.maximum(aa - 2.0 * (a @ b.T) + bb, 0.0)
        assert np.array_equal(pairwise_sq_distances(a, b), expected)

    def test_self_distances_are_clipped_nonnegative(self):
        # The expansion trick leaves float residue on the diagonal
        # (GEMM and einsum accumulate differently); the kernel clips it.
        a = rng(9).normal(size=(12, 3))
        d2 = pairwise_sq_distances(a, a)
        assert np.all(d2 >= 0.0)
        assert np.all(np.diag(d2) < 1e-12)

    def test_does_not_mutate_inputs(self):
        a = rng(10).normal(size=(6, 2))
        b = rng(11).normal(size=(9, 2))
        a0, b0 = a.copy(), b.copy()
        pairwise_sq_distances(a, b)
        assert np.array_equal(a, a0) and np.array_equal(b, b0)

    def test_precomputed_norms_bit_identical(self):
        # The per-fit ‖b‖² cache feeds the same einsum values into the
        # same in-place assembly, so the cached path must be bitwise
        # equal to the recomputing one — in both compute dtypes.
        for dtype in (np.float64, np.float32):
            a = rng(12).normal(size=(17, 4)).astype(dtype)
            b = rng(13).normal(size=(23, 4)).astype(dtype)
            norms = np.einsum("ij,ij->i", b, b)
            assert np.array_equal(
                pairwise_sq_distances(a, b),
                pairwise_sq_distances(a, b, b_sq_norms=norms),
            )

    def test_preserves_float32(self):
        a = rng(14).normal(size=(5, 3)).astype(np.float32)
        b = rng(15).normal(size=(7, 3)).astype(np.float32)
        assert pairwise_sq_distances(a, b).dtype == np.dtype(np.float32)


def mode_filter_reference(classes: np.ndarray, window: int) -> np.ndarray:
    """The pre-vectorization per-window bincount loop."""
    classes = np.asarray(classes, dtype=np.int64)
    if window <= 0 or window % 2 == 0:
        raise ValueError("window must be a positive odd number")
    if window == 1 or classes.size <= 2:
        return classes.copy()
    half = window // 2
    m = classes.size
    out = np.empty_like(classes)
    for i in range(m):
        lo = max(i - half, 0)
        hi = min(i + half + 1, m)
        counts = np.bincount(classes[lo:hi])
        best = int(counts.argmax())
        out[i] = best if counts[best] > counts[classes[i]] else classes[i]
    return out


class TestModeFilterBitIdentity:
    @pytest.mark.parametrize("window", [1, 3, 5, 7, 9])
    def test_matches_reference_loop(self, window):
        gen = rng(12)
        for _ in range(60):
            m = int(gen.integers(1, 40))
            n_classes = int(gen.integers(1, 6))
            classes = gen.integers(0, n_classes, size=m)
            got = mode_filter(classes, window=window)
            assert got.dtype == np.int64
            assert np.array_equal(got, mode_filter_reference(classes, window))

    def test_ties_keep_original_value(self):
        # Boundary window [1, 0] is a tie; argmax alone would pick class
        # 0, but a tie must keep the original value 1.
        classes = np.array([1, 0, 0, 1], dtype=np.int64)
        assert mode_filter(classes, window=3)[0] == 1

    def test_smooths_isolated_outlier(self):
        classes = np.array([2, 2, 7, 2, 2], dtype=np.int64)
        assert np.array_equal(
            mode_filter(classes, window=3), np.array([2, 2, 2, 2, 2])
        )

    def test_rejects_even_window(self):
        with pytest.raises(ValueError):
            mode_filter(np.array([0, 1, 0]), window=4)


class TestBatchGatherBitIdentity:
    def test_preallocated_gather_matches_vstack(self):
        # The serve-layer gather writes slices of one preallocated
        # buffer; equivalent to stacking the per-series feature blocks.
        gen = rng(13)
        idx_cols = np.array([0, 2, 3])
        matrices = [gen.normal(size=(5, int(gen.integers(2, 9)))) for _ in range(4)]

        blocks = [m[idx_cols, :].T for m in matrices]
        expected = np.vstack(blocks)

        lengths = [m.shape[1] for m in matrices]
        offsets = [0]
        for n in lengths:
            offsets.append(offsets[-1] + n)
        total = offsets[-1]
        raw = np.empty((total, idx_cols.shape[0]), dtype=np.float64)
        for i, m in enumerate(matrices):
            o = offsets[i]
            raw[o : o + lengths[i]] = m[idx_cols, :].T

        assert np.array_equal(raw, expected)
