"""Tests for the resource-manager facade."""

import numpy as np
import pytest

from repro.core.cost_model import UnitCostModel
from repro.core.labels import ClassComposition, SnapshotClass
from repro.errors import UnknownApplicationError, UnknownPolicyError
from repro.manager.service import ResourceManager, shared_model_cache
from repro.vm.resources import ResourceDemand
from repro.workloads.base import constant_workload


def cpu_job(duration=60.0):
    return constant_workload(
        "m-cpu", ResourceDemand(cpu_user=0.9, cpu_system=0.04, mem_mb=20.0), duration
    )


def io_job(duration=60.0):
    return constant_workload(
        "m-io",
        ResourceDemand(cpu_user=0.08, cpu_system=0.12, io_bi=500.0, io_bo=500.0, mem_mb=20.0),
        duration,
    )


@pytest.fixture(scope="module")
def manager(classifier):
    mgr = ResourceManager(classifier=classifier, seed=5)
    mgr.profile_and_learn("cpu-app", cpu_job())
    mgr.profile_and_learn("io-app", io_job())
    mgr.profile_and_learn("io-app", io_job(80.0))
    return mgr


class TestLearning:
    def test_learn_records_runs(self, manager):
        assert manager.known_applications() == ["cpu-app", "io-app"]
        assert manager.db.run_count("io-app") == 2

    def test_learned_classes(self, manager):
        assert manager.class_of("cpu-app") is SnapshotClass.CPU
        assert manager.class_of("io-app") is SnapshotClass.IO

    def test_unknown_application(self, manager):
        # The typed error is also a KeyError, so both clauses catch.
        with pytest.raises(KeyError):
            manager.class_of("ghost")
        with pytest.raises(UnknownApplicationError):
            manager.class_of("ghost")

    def test_classify_does_not_record(self, manager):
        before = manager.db.total_runs()
        result = manager.classify(cpu_job(30.0))
        assert result.application_class is SnapshotClass.CPU
        assert manager.db.total_runs() == before

    def test_classify_only_is_deprecated_alias(self, manager):
        before = manager.db.total_runs()
        with pytest.warns(DeprecationWarning, match="classify_only is deprecated"):
            result = manager.classify_only(cpu_job(30.0))
        assert result.application_class is SnapshotClass.CPU
        assert manager.db.total_runs() == before

    def test_environment_recorded(self, manager):
        assert manager.db.runs("cpu-app")[0].environment == {"vm_mem_mb": 256.0}

    def test_lazy_training(self):
        mgr = ResourceManager(seed=3)
        assert mgr.classifier is None
        clf = mgr.ensure_trained()
        assert clf.trained
        assert mgr.ensure_trained() is clf  # cached

    def test_untrained_supplied_classifier_rejected(self):
        from repro.core.pipeline import ApplicationClassifier

        mgr = ResourceManager(classifier=ApplicationClassifier())
        with pytest.raises(RuntimeError):
            mgr.ensure_trained()


class TestBatchPaths:
    def test_classify_batch_matches_sequential(self, classifier):
        jobs = [cpu_job(30.0), io_job(30.0), cpu_job(40.0)]
        batched_mgr = ResourceManager(classifier=classifier, seed=11)
        sequential_mgr = ResourceManager(classifier=classifier, seed=11)
        batched = batched_mgr.classify_batch(jobs)
        sequential = [sequential_mgr.classify(job) for job in jobs]
        for bat, seq in zip(batched, sequential):
            assert np.array_equal(bat.class_vector, seq.class_vector)
            assert np.array_equal(bat.scores, seq.scores)
            assert bat.application_class is seq.application_class

    def test_classify_batch_does_not_record(self, classifier):
        mgr = ResourceManager(classifier=classifier, seed=11)
        mgr.classify_batch([cpu_job(30.0), io_job(30.0)])
        assert mgr.db.total_runs() == 0

    def test_learn_many_records_every_run(self, classifier):
        mgr = ResourceManager(classifier=classifier, seed=11)
        outcomes = mgr.learn_many(
            [("cpu-app", cpu_job(30.0)), ("io-app", io_job(30.0)), ("cpu-app", cpu_job(40.0))]
        )
        assert len(outcomes) == 3
        assert mgr.db.run_count("cpu-app") == 2
        assert mgr.db.run_count("io-app") == 1
        assert mgr.class_of("cpu-app") is SnapshotClass.CPU
        for outcome in outcomes:
            assert outcome.record.environment == {"vm_mem_mb": 256.0}
            assert outcome.record.application_class is outcome.result.application_class

    def test_shared_model_cache_is_process_wide(self):
        assert shared_model_cache() is shared_model_cache()
        mgr = ResourceManager()
        assert mgr.model_cache is None  # defaults to the shared one lazily


class TestConsumers:
    def test_class_schedule_spreads_classes(self, manager):
        placement = manager.schedule(["cpu-app", "io-app", "cpu-app", "io-app"], machines=2)
        for machine in placement.machines:
            assert set(machine) == {"cpu-app", "io-app"}

    def test_composition_schedule(self, manager):
        placement = manager.schedule(
            ["cpu-app", "io-app", "cpu-app", "io-app"], machines=2, policy="composition"
        )
        for machine in placement.machines:
            assert set(machine) == {"cpu-app", "io-app"}

    def test_unknown_policy(self, manager):
        # The typed error is also a ValueError, so both clauses catch.
        with pytest.raises(ValueError):
            manager.schedule(["cpu-app"], machines=1, policy="vibes")
        with pytest.raises(UnknownPolicyError):
            manager.schedule(["cpu-app"], machines=1, policy="vibes")

    def test_reserve(self, manager):
        reservation = manager.reserve("io-app")
        assert reservation.io_share > 0.5
        assert reservation.cpu_share < 0.5

    def test_price(self, manager):
        io_pricey = UnitCostModel(alpha=1.0, gamma=10.0)
        cpu_pricey = UnitCostModel(alpha=10.0, gamma=1.0)
        assert manager.price("io-app", io_pricey) > manager.price("io-app", cpu_pricey)
        assert manager.price("cpu-app", cpu_pricey, execution_time_s=10.0) == pytest.approx(
            10.0 * cpu_pricey.unit_application_cost(manager.db.stats("cpu-app").mean_composition)
        )

    def test_predict_runtime_mean(self, manager):
        pred = manager.predict_runtime("io-app")
        assert pred.supporting_runs == 2
        assert 55.0 < pred.predicted_seconds < 110.0

    def test_predict_runtime_with_composition(self, manager):
        comp = manager.db.stats("io-app").mean_composition
        pred = manager.predict_runtime("io-app", composition=comp)
        assert pred.predicted_seconds > 0


class TestReport:
    def test_report_contents(self, manager):
        text = manager.report("io-app")
        assert "Application report: io-app" in text
        assert "consensus class:    IO" in text
        assert "runs learned:       2" in text
        assert "reservation" in text

    def test_report_unknown_app(self, manager):
        with pytest.raises(KeyError):
            manager.report("ghost")


class TestPersistence:
    def test_save_and_reload(self, manager, tmp_path):
        path = tmp_path / "knowledge.json"
        manager.save_knowledge(path)
        reloaded = ResourceManager.with_knowledge(path)
        assert reloaded.known_applications() == manager.known_applications()
        assert reloaded.class_of("io-app") is SnapshotClass.IO
        # Scheduling works without any re-profiling.
        placement = reloaded.schedule(["cpu-app", "io-app"], machines=2)
        assert len(placement.machines) == 2
