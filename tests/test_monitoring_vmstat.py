"""Tests for the vmstat rate collector."""

import pytest

from repro.monitoring.vmstat import VmstatCollector
from repro.vm.machine import VirtualMachine


def test_first_sample_is_zero_baseline():
    vm = VirtualMachine("VM1")
    collector = VmstatCollector(vm)
    sample = collector.sample(now=5.0)
    assert (sample.io_bi, sample.io_bo, sample.swap_in, sample.swap_out) == (0, 0, 0, 0)


def test_rates_from_deltas():
    vm = VirtualMachine("VM1")
    collector = VmstatCollector(vm)
    collector.sample(now=0.0)
    vm.counters.account_io(blocks_in=500.0, blocks_out=250.0)
    vm.counters.account_swap(kb_in=100.0, kb_out=50.0)
    sample = collector.sample(now=5.0)
    assert sample.io_bi == pytest.approx(100.0)
    assert sample.io_bo == pytest.approx(50.0)
    assert sample.swap_in == pytest.approx(20.0)
    assert sample.swap_out == pytest.approx(10.0)


def test_rates_reset_each_window():
    vm = VirtualMachine("VM1")
    collector = VmstatCollector(vm)
    collector.sample(now=0.0)
    vm.counters.account_io(100.0, 0.0)
    collector.sample(now=5.0)
    sample = collector.sample(now=10.0)  # no new activity
    assert sample.io_bi == 0.0


def test_non_advancing_time_rejected():
    vm = VirtualMachine("VM1")
    collector = VmstatCollector(vm)
    collector.sample(now=5.0)
    with pytest.raises(ValueError, match="advance"):
        collector.sample(now=5.0)


def test_backwards_counter_detected():
    vm = VirtualMachine("VM1")
    collector = VmstatCollector(vm)
    vm.counters.account_io(100.0, 0.0)
    collector.sample(now=0.0)
    vm.counters.io_blocks_in = 10.0  # corrupt the counter
    with pytest.raises(ValueError, match="backwards"):
        collector.sample(now=5.0)
