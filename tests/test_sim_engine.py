"""Tests for the discrete-time execution engine."""

import pytest

from repro.sim.engine import DaemonNoiseModel, SimulationEngine
from repro.vm.cluster import Cluster, single_vm_cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand
from repro.workloads.base import WorkloadInstance, constant_workload

from tests.conftest import short_cpu_workload, short_io_workload


def engine_with(workload, vm="VM1", seed=0, loop=False, start=0.0):
    cluster = single_vm_cluster(vm_name=vm)
    engine = SimulationEngine(cluster, seed=seed)
    key = engine.add_instance(WorkloadInstance(workload, vm_name=vm, loop=loop, start_time=start))
    return engine, key


class TestLifecycle:
    def test_solo_run_completes_on_time(self):
        engine, key = engine_with(short_cpu_workload(60.0))
        engine.run()
        assert engine.instance(key).done
        assert len(engine.completions) == 1
        assert engine.completions[0].elapsed == pytest.approx(60.0, abs=2.0)

    def test_completion_event_fields(self):
        engine, key = engine_with(short_cpu_workload(10.0))
        engine.run()
        ev = engine.completions[0]
        assert ev.instance_key == key
        assert ev.workload_name == "mini-cpu"
        assert ev.vm_name == "VM1"

    def test_run_until_time(self):
        engine, key = engine_with(short_cpu_workload(100.0))
        engine.run(until=10.0)
        assert engine.now == pytest.approx(10.0)
        assert not engine.instance(key).done

    def test_looping_requires_until(self):
        engine, _ = engine_with(short_cpu_workload(10.0), loop=True)
        with pytest.raises(RuntimeError, match="loop forever"):
            engine.run()

    def test_looping_counts_jobs(self):
        engine, key = engine_with(short_cpu_workload(10.0), loop=True)
        engine.run(until=35.0)
        assert engine.instance(key).total_jobs() == pytest.approx(3.5, abs=0.2)

    def test_max_ticks_guard(self):
        engine, _ = engine_with(short_cpu_workload(1000.0))
        with pytest.raises(RuntimeError, match="exceeded"):
            engine.run(max_ticks=5)

    def test_delayed_start(self):
        engine, key = engine_with(short_cpu_workload(10.0), start=20.0)
        engine.run()
        assert engine.completions[0].time == pytest.approx(31.0, abs=1.5)

    def test_add_instance_unknown_vm(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster)
        with pytest.raises(KeyError):
            engine.add_instance(WorkloadInstance(short_cpu_workload(), vm_name="ghost"))

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            SimulationEngine(single_vm_cluster(), dt=0.0)


class TestCounters:
    def test_cpu_counters_advance_with_work(self):
        engine, _ = engine_with(short_cpu_workload(30.0))
        engine.run()
        c = engine.cluster.vm("VM1").counters
        # ~0.9 cores for 30 s, plus noise.
        assert 20.0 < c.cpu_user_s < 35.0
        assert c.cpu_idle_s > 0.0

    def test_io_counters_advance_with_io(self):
        engine, _ = engine_with(short_io_workload(30.0))
        engine.run()
        c = engine.cluster.vm("VM1").counters
        assert c.io_blocks_in > 10_000.0
        assert c.io_blocks_out > 10_000.0

    def test_idle_vm_accumulates_only_noise(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=1)
        engine.run(until=60.0)
        c = cluster.vm("VM1").counters
        assert c.cpu_user_s < 2.0  # daemon noise only
        assert c.uptime_s == pytest.approx(60.0)

    def test_cpu_accounting_conserves_capacity(self):
        """user+system+wio+idle per tick equals vcpus*dt."""
        engine, _ = engine_with(short_io_workload(20.0))
        engine.run()
        vm = engine.cluster.vm("VM1")
        total = vm.counters.total_cpu_s()
        assert total == pytest.approx(vm.vcpus * engine.now, rel=1e-6)

    def test_determinism_same_seed(self):
        e1, _ = engine_with(short_io_workload(30.0), seed=42)
        e2, _ = engine_with(short_io_workload(30.0), seed=42)
        e1.run()
        e2.run()
        c1, c2 = e1.cluster.vm("VM1").counters, e2.cluster.vm("VM1").counters
        assert c1.io_blocks_in == c2.io_blocks_in
        assert c1.cpu_user_s == c2.cpu_user_s

    def test_different_seeds_differ(self):
        e1, _ = engine_with(short_cpu_workload(30.0), seed=1)
        e2, _ = engine_with(short_cpu_workload(30.0), seed=2)
        e1.run()
        e2.run()
        assert (
            e1.cluster.vm("VM1").counters.cpu_user_s
            != e2.cluster.vm("VM1").counters.cpu_user_s
        )


class TestContentionIntegration:
    def test_two_cpu_jobs_share_one_vcpu_vm(self):
        cluster = Cluster()
        cluster.add_host("h1", ResourceCapacity(cpu_cores=2.0))
        cluster.create_vm("h1", "VM1", vcpus=1)
        engine = SimulationEngine(cluster, seed=0)
        w = constant_workload("cpu", ResourceDemand(cpu_user=1.0, mem_mb=10.0), 30.0)
        k1 = engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        engine.run()
        # Each gets 0.5 vcpu and pays interference → > 2x stretch.
        assert engine.instance(k1).elapsed() > 70.0

    def test_cross_class_jobs_barely_contend(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        cpu = constant_workload("cpu", ResourceDemand(cpu_user=0.9, mem_mb=10.0), 30.0)
        io = constant_workload("io", ResourceDemand(cpu_user=0.1, io_bi=800.0, mem_mb=10.0), 30.0)
        k1 = engine.add_instance(WorkloadInstance(cpu, vm_name="VM1"))
        k2 = engine.add_instance(WorkloadInstance(io, vm_name="VM1"))
        engine.run()
        # Only the interference penalty applies (~1.22x).
        assert engine.instance(k1).elapsed() == pytest.approx(30.0 * 1.22, abs=3.0)
        assert engine.instance(k2).elapsed() == pytest.approx(30.0 * 1.22, abs=3.0)

    def test_network_job_needs_server_vm(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        w = constant_workload(
            "net", ResourceDemand(net_out=1e6, cpu_system=0.1, mem_mb=10.0), 10.0,
            remote_vm="VM4",
        )
        engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        with pytest.raises(KeyError):
            engine.run()

    def test_server_vm_counters_mirror_traffic(self):
        from repro.sim.execution import classification_testbed

        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=0)
        w = constant_workload(
            "net", ResourceDemand(net_out=10e6, cpu_system=0.2, mem_mb=10.0), 20.0,
            remote_vm="VM4",
        )
        engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        engine.run()
        server = cluster.vm("VM4").counters
        client = cluster.vm("VM1").counters
        assert client.net_bytes_out > 150e6
        # Server received roughly what the client sent (modulo noise).
        assert server.net_bytes_in == pytest.approx(client.net_bytes_out, rel=0.05)
        assert server.cpu_system_s > 1.0


class TestDaemonNoise:
    def test_sample_ranges(self):
        import numpy as np

        model = DaemonNoiseModel()
        rng = np.random.default_rng(0)
        for _ in range(200):
            cpu_u, cpu_s, io, net = model.sample(rng)
            assert model.cpu_user_range[0] <= cpu_u <= model.cpu_user_range[1]
            assert model.cpu_system_range[0] <= cpu_s <= model.cpu_system_range[1]
            assert io == 0.0 or model.io_burst_blocks[0] <= io <= model.io_burst_blocks[1]
            assert model.net_bytes_range[0] <= net <= model.net_bytes_range[1]

    def test_io_bursts_are_occasional(self):
        import numpy as np

        model = DaemonNoiseModel()
        rng = np.random.default_rng(0)
        bursts = sum(1 for _ in range(1000) if model.sample(rng)[2] > 0)
        assert 10 < bursts < 100
