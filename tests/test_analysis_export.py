"""Tests for CSV export of evaluation artefacts."""

import csv

import numpy as np
import pytest

from repro.analysis.clustering import ClusterDiagram
from repro.analysis.export import (
    export_cluster_diagram,
    export_compositions,
    export_schedule_throughput,
    export_series_metrics,
)
from repro.core.labels import ClassComposition
from repro.core.pipeline import ClassificationResult, StageTimings
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def test_export_cluster_diagram(tmp_path):
    diagram = ClusterDiagram(
        title="t",
        points=np.array([[1.0, 2.0], [3.0, 4.0]]),
        labels=np.array([2, 3]),
    )
    path = export_cluster_diagram(diagram, tmp_path / "diag.csv")
    rows = read_csv(path)
    assert rows[0] == ["class", "pc1", "pc2"]
    assert rows[1][0] == "CPU"
    assert float(rows[2][2]) == pytest.approx(4.0)


def test_export_compositions(tmp_path):
    comp = ClassComposition(fractions=(0.0, 0.8, 0.2, 0.0, 0.0))
    result = ClassificationResult(
        node="VM1",
        num_samples=10,
        class_vector=np.array([1] * 8 + [2] * 2),
        composition=comp,
        application_class=comp.dominant(),
        category="IO & Paging Intensive",
        scores=np.zeros((10, 2)),
        timings=StageTimings(),
    )
    path = export_compositions([("postmark", result)], tmp_path / "t3.csv")
    rows = read_csv(path)
    assert rows[0][:3] == ["application", "num_samples", "idle"]
    assert rows[1][0] == "postmark"
    assert float(rows[1][3]) == pytest.approx(0.8)  # io column


def test_export_schedule_throughput(tmp_path):
    path = export_schedule_throughput(["s1", "s2"], [100.0, 200.0], tmp_path / "f4.csv")
    rows = read_csv(path)
    assert rows[1] == ["s1", "100.000"]
    assert rows[2] == ["s2", "200.000"]


def test_export_schedule_throughput_validation(tmp_path):
    with pytest.raises(ValueError):
        export_schedule_throughput(["a"], [1.0, 2.0], tmp_path / "x.csv")


def test_export_series_metrics(tmp_path):
    series = SnapshotSeries(
        node="VM1",
        timestamps=np.array([5.0, 10.0]),
        matrix=np.arange(NUM_METRICS * 2, dtype=float).reshape(NUM_METRICS, 2),
    )
    path = export_series_metrics(series, ["cpu_user", "io_bi"], tmp_path / "s.csv")
    rows = read_csv(path)
    assert rows[0] == ["timestamp", "cpu_user", "io_bi"]
    assert len(rows) == 3
    assert float(rows[1][0]) == 5.0
