"""Per-rule unit tests for the repro.qa static-analysis rules.

Every rule gets three inline-source fixtures: one snippet that fires it,
one clean snippet, and one snippet silenced by a ``# qa: ignore[...]``
pragma.  Snippets run through :meth:`Analyzer.run_source` with a
synthetic module name so package-scoped rules (determinism, layering,
docstring, shape-doc) can be pointed at — or away from — their scope.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.qa import Analyzer, Severity, all_rules


def findings(source: str, name: str = "repro.core.mod", rule: str | None = None):
    """Lint a snippet; optionally keep only one rule's findings."""
    out = Analyzer().run_source(textwrap.dedent(source), name=name)
    if rule is not None:
        out = [f for f in out if f.rule_id == rule]
    return out


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------


def test_registry_has_all_rule_families():
    ids = {r.id for r in all_rules()}
    assert ids == {
        "determinism",
        "layering",
        "shape-doc",
        "float-eq",
        "mutable-default",
        "bare-except",
        "all-resolves",
        "docstring",
        "dead-code",
        "future-annotations",
    }


def test_rules_have_descriptions_and_severities():
    for rule in all_rules():
        assert rule.description, rule.id
        assert isinstance(rule.severity, Severity), rule.id


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

DET_BAD = """\
    import time

    def stamp():
        "doc"
        return time.time()
"""


def test_determinism_fires_on_wall_clock():
    hits = findings(DET_BAD, name="repro.sim.mod", rule="determinism")
    assert len(hits) == 1
    assert hits[0].line == 5
    assert "time.time" in hits[0].message


def test_determinism_clean_with_seeded_rng_and_clock_reference():
    src = """\
        import time
        import numpy as np

        CLOCK = time.perf_counter  # reference, not a call: injectable default

        def draw(seed):
            "doc"
            rng = np.random.default_rng(seed)
            return rng.normal()
    """
    assert findings(src, name="repro.sim.mod", rule="determinism") == []


def test_determinism_pragma_suppressed():
    src = """\
        import time

        def stamp():
            "doc"
            return time.time()  # qa: ignore[determinism]
    """
    assert findings(src, name="repro.sim.mod", rule="determinism") == []


def test_determinism_out_of_scope_package_exempt():
    assert findings(DET_BAD, name="repro.workloads.mod", rule="determinism") == []


@pytest.mark.parametrize(
    "line",
    [
        "import random\nx = random.random()",
        "import random\nrandom.seed(1)",
        "import numpy as np\nnp.random.seed(3)",
        "import numpy as np\nx = np.random.rand(4)",
        "from time import perf_counter\nt = perf_counter()",
        "from datetime import datetime\nd = datetime.now()",
    ],
)
def test_determinism_fires_on_each_banned_call(line):
    assert findings(line, name="repro.scheduler.mod", rule="determinism")


@pytest.mark.parametrize(
    "line",
    [
        "import random\nr = random.Random(42)",
        "import numpy as np\ng = np.random.Generator(np.random.PCG64(7))",
        "import numpy as np\nss = np.random.SeedSequence(5)",
    ],
)
def test_determinism_allows_seeded_constructions(line):
    assert findings(line, name="repro.scheduler.mod", rule="determinism") == []


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------


def test_layering_fires_on_upward_import():
    src = "from repro.sim.engine import SimulationEngine\n"
    hits = findings(src, name="repro.core.mod", rule="layering")
    assert len(hits) == 1
    assert "repro.core must not import repro.sim" in hits[0].message


def test_layering_resolves_relative_imports():
    src = "from ..analysis.export import export_cluster_diagram\n"
    hits = findings(src, name="repro.metrics.mod", rule="layering")
    assert len(hits) == 1
    assert "repro.analysis" in hits[0].message


def test_layering_clean_downward_import():
    src = "from repro.metrics.series import SnapshotSeries\n"
    assert findings(src, name="repro.core.mod", rule="layering") == []


def test_layering_type_checking_imports_exempt():
    src = """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.sim.engine import SimulationEngine
    """
    assert findings(src, name="repro.monitoring.mod", rule="layering") == []


def test_layering_nobody_imports_cli():
    src = "from repro.cli import main\n"
    hits = findings(src, name="repro.experiments.mod", rule="layering")
    assert len(hits) == 1
    assert "repro.cli" in hits[0].message


def test_layering_pragma_suppressed():
    src = "from repro.sim.engine import SimulationEngine  # qa: ignore[layering]\n"
    assert findings(src, name="repro.core.mod", rule="layering") == []


# ----------------------------------------------------------------------
# shape-doc
# ----------------------------------------------------------------------

SHAPE_BAD = """\
    import numpy as np

    def project(x: np.ndarray) -> np.ndarray:
        "Project the data."
        return x
"""


def test_shape_doc_fires_without_orientation():
    hits = findings(SHAPE_BAD, name="repro.core.mod", rule="shape-doc")
    assert len(hits) == 1
    assert "project" in hits[0].message


def test_shape_doc_clean_with_orientation():
    src = """\
        import numpy as np

        def project(x: np.ndarray) -> np.ndarray:
            "Project ``(m, p)`` samples×features data to ``(m, q)``."
            return x
    """
    assert findings(src, name="repro.core.mod", rule="shape-doc") == []


def test_shape_doc_pragma_suppressed():
    src = """\
        import numpy as np

        def project(x: np.ndarray) -> np.ndarray:  # qa: ignore[shape-doc]
            "Project the data."
            return x
    """
    assert findings(src, name="repro.core.mod", rule="shape-doc") == []


def test_shape_doc_only_applies_to_core():
    assert findings(SHAPE_BAD, name="repro.sim.mod", rule="shape-doc") == []


def test_shape_doc_private_functions_exempt():
    src = """\
        import numpy as np

        def _helper(x: np.ndarray) -> np.ndarray:
            return x

        USE = _helper
    """
    assert findings(src, name="repro.core.mod", rule="shape-doc") == []


# ----------------------------------------------------------------------
# float-eq
# ----------------------------------------------------------------------


def test_float_eq_fires_on_literal_comparison():
    hits = findings("ok = value == 0.15\n", rule="float-eq")
    assert len(hits) == 1
    assert "0.15" in hits[0].message


def test_float_eq_clean_on_integer_and_isclose():
    src = """\
        import math
        a = value == 3
        b = math.isclose(value, 0.15, abs_tol=1e-9)
        c = value <= 0.15
    """
    assert findings(src, rule="float-eq") == []


def test_float_eq_pragma_suppressed():
    assert findings("ok = value == 0.15  # qa: ignore[float-eq]\n", rule="float-eq") == []


def test_float_eq_literal_vs_literal_not_flagged():
    assert findings("x = 1.5 == 2.5\n", rule="float-eq") == []


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------


def test_mutable_default_fires():
    hits = findings("def f(x=[]):\n    return x\n", rule="mutable-default")
    assert len(hits) == 1


def test_mutable_default_fires_on_constructor_and_kwonly():
    src = "def f(*, x=dict()):\n    return x\n"
    assert findings(src, rule="mutable-default")


def test_mutable_default_clean_with_none():
    src = "def f(x=None):\n    return [] if x is None else x\n"
    assert findings(src, rule="mutable-default") == []


def test_mutable_default_pragma_suppressed():
    assert findings("def f(x=[]):  # qa: ignore[mutable-default]\n    return x\n", rule="mutable-default") == []


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------


def test_bare_except_fires():
    src = "try:\n    work()\nexcept:\n    pass\n"
    assert len(findings(src, rule="bare-except")) == 1


def test_bare_except_clean_with_type():
    src = "try:\n    work()\nexcept ValueError:\n    pass\n"
    assert findings(src, rule="bare-except") == []


def test_bare_except_pragma_suppressed():
    src = "try:\n    work()\nexcept:  # qa: ignore[bare-except]\n    pass\n"
    assert findings(src, rule="bare-except") == []


# ----------------------------------------------------------------------
# all-resolves
# ----------------------------------------------------------------------


def test_all_resolves_fires_on_ghost_entry():
    src = '__all__ = ["ghost"]\n'
    hits = findings(src, rule="all-resolves")
    assert len(hits) == 1
    assert "ghost" in hits[0].message


def test_all_resolves_clean():
    src = """\
        from os.path import join

        __all__ = ["join", "CONST", "helper", "Thing"]

        CONST = 1

        def helper():
            "doc"

        class Thing:
            "doc"
    """
    assert findings(src, rule="all-resolves") == []


def test_all_resolves_pragma_suppressed():
    assert findings('__all__ = ["ghost"]  # qa: ignore[all-resolves]\n', rule="all-resolves") == []


# ----------------------------------------------------------------------
# docstring
# ----------------------------------------------------------------------

DOC_BAD = """\
    def api():
        return 1
"""


def test_docstring_fires_on_undocumented_public_function():
    hits = findings(DOC_BAD, name="repro.scheduler.mod", rule="docstring")
    assert len(hits) == 1
    assert "api()" in hits[0].message


def test_docstring_clean_when_documented_or_private():
    src = """\
        def api():
            "Documented."
            return _impl()

        def _impl():
            return 1
    """
    assert findings(src, name="repro.scheduler.mod", rule="docstring") == []


def test_docstring_pragma_suppressed():
    src = "def api():  # qa: ignore[docstring]\n    return 1\n"
    assert findings(src, name="repro.scheduler.mod", rule="docstring") == []


def test_docstring_out_of_scope_package_exempt():
    assert findings(DOC_BAD, name="repro.monitoring.mod", rule="docstring") == []


def test_docstring_property_setter_exempt():
    src = """\
        class Box:
            "doc"

            @property
            def value(self):
                "doc"
                return self._v

            @value.setter
            def value(self, v):
                self._v = v
    """
    assert findings(src, name="repro.sim.mod", rule="docstring") == []


# ----------------------------------------------------------------------
# dead-code
# ----------------------------------------------------------------------


def test_dead_code_fires_on_unreferenced_private_function():
    src = """\
        def _orphan():
            return 1

        def api():
            "doc"
            return 2
    """
    hits = findings(src, name="repro.workloads.mod", rule="dead-code")
    assert len(hits) == 1
    assert "_orphan" in hits[0].message


def test_dead_code_clean_when_referenced():
    src = """\
        def _impl():
            return 1

        def api():
            "doc"
            return _impl()
    """
    assert findings(src, name="repro.workloads.mod", rule="dead-code") == []


def test_dead_code_self_recursion_does_not_count():
    src = """\
        def _loner(n):
            return _loner(n - 1) if n else 0
    """
    assert findings(src, name="repro.workloads.mod", rule="dead-code")


def test_dead_code_pragma_suppressed():
    src = """\
        def _orphan():  # qa: ignore[dead-code]
            return 1
    """
    assert findings(src, name="repro.workloads.mod", rule="dead-code") == []


# ----------------------------------------------------------------------
# future-annotations
# ----------------------------------------------------------------------

FUT_BAD = """\
    def f(x: int | None) -> str | None:
        "doc"
        return None
"""


def test_future_annotations_fires_on_pep604_without_import():
    hits = findings(FUT_BAD, name="repro.workloads.mod", rule="future-annotations")
    assert len(hits) == 1


def test_future_annotations_clean_with_import():
    src = "from __future__ import annotations\n\n" + textwrap.dedent(FUT_BAD)
    assert findings(src, name="repro.workloads.mod", rule="future-annotations") == []


def test_future_annotations_pragma_suppressed():
    src = """\
        def f(x: int | None) -> int:  # qa: ignore[future-annotations]
            "doc"
            return 0
    """
    assert findings(src, name="repro.workloads.mod", rule="future-annotations") == []


# ----------------------------------------------------------------------
# pragma machinery
# ----------------------------------------------------------------------


def test_bare_pragma_suppresses_every_rule():
    src = "def f(x=[]):  # qa: ignore\n    return x\n"
    assert findings(src) == []


def test_pragma_for_other_rule_does_not_suppress():
    src = "def f(x=[]):  # qa: ignore[float-eq]\n    return x\n"
    assert findings(src, rule="mutable-default")
