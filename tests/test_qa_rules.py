"""Per-rule unit tests for the repro.qa static-analysis rules.

Every rule gets three inline-source fixtures: one snippet that fires it,
one clean snippet, and one snippet silenced by a ``# qa: ignore[...]``
pragma.  Snippets run through :meth:`Analyzer.run_source` with a
synthetic module name so package-scoped rules (determinism, layering,
docstring, shape-doc) can be pointed at — or away from — their scope.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.qa import Analyzer, Severity, all_rules


def findings(source: str, name: str = "repro.core.mod", rule: str | None = None):
    """Lint a snippet; optionally keep only one rule's findings."""
    out = Analyzer().run_source(textwrap.dedent(source), name=name)
    if rule is not None:
        out = [f for f in out if f.rule_id == rule]
    return out


def project_findings(sources: dict[str, str], rule: str | None = None):
    """Lint several snippets as one project (for the flow-aware rules)."""
    out = Analyzer().run_sources({k: textwrap.dedent(v) for k, v in sources.items()})
    if rule is not None:
        out = [f for f in out if f.rule_id == rule]
    return out


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------


def test_registry_has_all_rule_families():
    ids = {r.id for r in all_rules()}
    assert ids == {
        "determinism",
        "layering",
        "shape-doc",
        "shape-contract",
        "float-eq",
        "metric-name",
        "mutable-default",
        "bare-except",
        "all-resolves",
        "docstring",
        "cross-module-dead-code",
        "unused-result",
        "future-annotations",
        "unguarded-shared-state",
        "lock-order-inversion",
        "blocking-under-lock",
        "thread-lifecycle",
        "dtype-promotion",
        "hot-loop-alloc",
        "implicit-copy",
        "scalar-loop",
    }


def test_rules_have_descriptions_and_severities():
    for rule in all_rules():
        assert rule.description, rule.id
        assert isinstance(rule.severity, Severity), rule.id


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

DET_BAD = """\
    import time

    def stamp():
        "doc"
        return time.time()
"""


def test_determinism_fires_on_wall_clock():
    hits = findings(DET_BAD, name="repro.sim.mod", rule="determinism")
    assert len(hits) == 1
    assert hits[0].line == 5
    assert "time.time" in hits[0].message


def test_determinism_clean_with_seeded_rng_and_clock_reference():
    src = """\
        import time
        import numpy as np

        CLOCK = time.perf_counter  # reference, not a call: injectable default

        def draw(seed):
            "doc"
            rng = np.random.default_rng(seed)
            return rng.normal()
    """
    assert findings(src, name="repro.sim.mod", rule="determinism") == []


def test_determinism_pragma_suppressed():
    src = """\
        import time

        def stamp():
            "doc"
            return time.time()  # qa: ignore[determinism]
    """
    assert findings(src, name="repro.sim.mod", rule="determinism") == []


def test_determinism_out_of_scope_package_exempt():
    assert findings(DET_BAD, name="repro.workloads.mod", rule="determinism") == []


@pytest.mark.parametrize(
    "line",
    [
        "import random\nx = random.random()",
        "import random\nrandom.seed(1)",
        "import numpy as np\nnp.random.seed(3)",
        "import numpy as np\nx = np.random.rand(4)",
        "from time import perf_counter\nt = perf_counter()",
        "from datetime import datetime\nd = datetime.now()",
    ],
)
def test_determinism_fires_on_each_banned_call(line):
    assert findings(line, name="repro.scheduler.mod", rule="determinism")


@pytest.mark.parametrize(
    "line",
    [
        "import random\nr = random.Random(42)",
        "import numpy as np\ng = np.random.Generator(np.random.PCG64(7))",
        "import numpy as np\nss = np.random.SeedSequence(5)",
    ],
)
def test_determinism_allows_seeded_constructions(line):
    assert findings(line, name="repro.scheduler.mod", rule="determinism") == []


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------


def test_layering_fires_on_upward_import():
    src = "from repro.sim.engine import SimulationEngine\n"
    hits = findings(src, name="repro.core.mod", rule="layering")
    assert len(hits) == 1
    assert "repro.core must not import repro.sim" in hits[0].message


def test_layering_resolves_relative_imports():
    src = "from ..analysis.export import export_cluster_diagram\n"
    hits = findings(src, name="repro.metrics.mod", rule="layering")
    assert len(hits) == 1
    assert "repro.analysis" in hits[0].message


def test_layering_clean_downward_import():
    src = "from repro.metrics.series import SnapshotSeries\n"
    assert findings(src, name="repro.core.mod", rule="layering") == []


def test_layering_type_checking_imports_exempt():
    src = """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.sim.engine import SimulationEngine
    """
    assert findings(src, name="repro.monitoring.mod", rule="layering") == []


def test_layering_nobody_imports_cli():
    src = "from repro.cli import main\n"
    hits = findings(src, name="repro.experiments.mod", rule="layering")
    assert len(hits) == 1
    assert "repro.cli" in hits[0].message


def test_layering_pragma_suppressed():
    src = "from repro.sim.engine import SimulationEngine  # qa: ignore[layering]\n"
    assert findings(src, name="repro.core.mod", rule="layering") == []


# ----------------------------------------------------------------------
# shape-doc
# ----------------------------------------------------------------------

SHAPE_BAD = """\
    import numpy as np

    def project(x: np.ndarray) -> np.ndarray:
        "Project the data."
        return x
"""


def test_shape_doc_fires_without_orientation():
    hits = findings(SHAPE_BAD, name="repro.core.mod", rule="shape-doc")
    assert len(hits) == 1
    assert "project" in hits[0].message


def test_shape_doc_clean_with_orientation():
    src = """\
        import numpy as np

        def project(x: np.ndarray) -> np.ndarray:
            "Project ``(m, p)`` samples×features data to ``(m, q)``."
            return x
    """
    assert findings(src, name="repro.core.mod", rule="shape-doc") == []


def test_shape_doc_pragma_suppressed():
    src = """\
        import numpy as np

        def project(x: np.ndarray) -> np.ndarray:  # qa: ignore[shape-doc]
            "Project the data."
            return x
    """
    assert findings(src, name="repro.core.mod", rule="shape-doc") == []


def test_shape_doc_only_applies_to_core():
    assert findings(SHAPE_BAD, name="repro.sim.mod", rule="shape-doc") == []


def test_shape_doc_private_functions_exempt():
    src = """\
        import numpy as np

        def _helper(x: np.ndarray) -> np.ndarray:
            return x

        USE = _helper
    """
    assert findings(src, name="repro.core.mod", rule="shape-doc") == []


# ----------------------------------------------------------------------
# float-eq
# ----------------------------------------------------------------------


def test_float_eq_fires_on_literal_comparison():
    hits = findings("ok = value == 0.15\n", rule="float-eq")
    assert len(hits) == 1
    assert "0.15" in hits[0].message


def test_float_eq_clean_on_integer_and_isclose():
    src = """\
        import math
        a = value == 3
        b = math.isclose(value, 0.15, abs_tol=1e-9)
        c = value <= 0.15
    """
    assert findings(src, rule="float-eq") == []


def test_float_eq_pragma_suppressed():
    assert findings("ok = value == 0.15  # qa: ignore[float-eq]\n", rule="float-eq") == []


def test_float_eq_literal_vs_literal_not_flagged():
    assert findings("x = 1.5 == 2.5\n", rule="float-eq") == []


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------


def test_mutable_default_fires():
    hits = findings("def f(x=[]):\n    return x\n", rule="mutable-default")
    assert len(hits) == 1


def test_mutable_default_fires_on_constructor_and_kwonly():
    src = "def f(*, x=dict()):\n    return x\n"
    assert findings(src, rule="mutable-default")


def test_mutable_default_clean_with_none():
    src = "def f(x=None):\n    return [] if x is None else x\n"
    assert findings(src, rule="mutable-default") == []


def test_mutable_default_pragma_suppressed():
    assert findings("def f(x=[]):  # qa: ignore[mutable-default]\n    return x\n", rule="mutable-default") == []


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------


def test_bare_except_fires():
    src = "try:\n    work()\nexcept:\n    pass\n"
    assert len(findings(src, rule="bare-except")) == 1


def test_bare_except_clean_with_type():
    src = "try:\n    work()\nexcept ValueError:\n    pass\n"
    assert findings(src, rule="bare-except") == []


def test_bare_except_pragma_suppressed():
    src = "try:\n    work()\nexcept:  # qa: ignore[bare-except]\n    pass\n"
    assert findings(src, rule="bare-except") == []


# ----------------------------------------------------------------------
# all-resolves
# ----------------------------------------------------------------------


def test_all_resolves_fires_on_ghost_entry():
    src = '__all__ = ["ghost"]\n'
    hits = findings(src, rule="all-resolves")
    assert len(hits) == 1
    assert "ghost" in hits[0].message


def test_all_resolves_clean():
    src = """\
        from os.path import join

        __all__ = ["join", "CONST", "helper", "Thing"]

        CONST = 1

        def helper():
            "doc"

        class Thing:
            "doc"
    """
    assert findings(src, rule="all-resolves") == []


def test_all_resolves_pragma_suppressed():
    assert findings('__all__ = ["ghost"]  # qa: ignore[all-resolves]\n', rule="all-resolves") == []


# ----------------------------------------------------------------------
# docstring
# ----------------------------------------------------------------------

DOC_BAD = """\
    def api():
        return 1
"""


def test_docstring_fires_on_undocumented_public_function():
    hits = findings(DOC_BAD, name="repro.scheduler.mod", rule="docstring")
    assert len(hits) == 1
    assert "api()" in hits[0].message


def test_docstring_clean_when_documented_or_private():
    src = """\
        def api():
            "Documented."
            return _impl()

        def _impl():
            return 1
    """
    assert findings(src, name="repro.scheduler.mod", rule="docstring") == []


def test_docstring_pragma_suppressed():
    src = "def api():  # qa: ignore[docstring]\n    return 1\n"
    assert findings(src, name="repro.scheduler.mod", rule="docstring") == []


def test_docstring_out_of_scope_package_exempt():
    assert findings(DOC_BAD, name="repro.monitoring.mod", rule="docstring") == []


def test_docstring_property_setter_exempt():
    src = """\
        class Box:
            "doc"

            @property
            def value(self):
                "doc"
                return self._v

            @value.setter
            def value(self, v):
                self._v = v
    """
    assert findings(src, name="repro.sim.mod", rule="docstring") == []


# ----------------------------------------------------------------------
# cross-module-dead-code
# ----------------------------------------------------------------------

DEAD = "cross-module-dead-code"


def test_cross_dead_code_fires_on_unreferenced_private_function():
    src = """\
        __all__ = ["api"]

        def _orphan():
            return 1

        def api():
            "doc"
            return 2
    """
    hits = findings(src, name="repro.workloads.mod", rule=DEAD)
    assert len(hits) == 1
    assert "_orphan" in hits[0].message


def test_cross_dead_code_fires_on_unreachable_public_function():
    src = """\
        def api():
            "doc"
            return 2
    """
    hits = findings(src, name="repro.workloads.mod", rule=DEAD)
    assert len(hits) == 1
    assert "api()" in hits[0].message
    assert "__all__" in hits[0].message


def test_cross_dead_code_chain_kept_alive_only_by_dead_code_is_flagged():
    # _a is "used" — but only by _b, which nothing reaches: both are dead.
    src = """\
        __all__ = ["api"]

        def _a():
            return 1

        def _b():
            return _a()

        def api():
            "doc"
            return 2
    """
    hits = findings(src, name="repro.workloads.mod", rule=DEAD)
    assert len(hits) == 2
    assert {h.message.split()[2] for h in hits} == {"_a()", "_b()"}
    assert all("never referenced by any live code" in h.message for h in hits)


def test_cross_dead_code_sees_cross_module_callers():
    hits = project_findings(
        {
            "repro.workloads.lib": """\
                def helper():
                    "doc"
                    return 1
            """,
            "repro.workloads.use": """\
                from repro.workloads.lib import helper

                __all__ = ["api"]

                def api():
                    "doc"
                    return helper()
            """,
        },
        rule=DEAD,
    )
    assert hits == []


def test_cross_dead_code_self_recursion_does_not_count():
    src = """\
        def _loner(n):
            return _loner(n - 1) if n else 0
    """
    assert findings(src, name="repro.workloads.mod", rule=DEAD)


def test_cross_dead_code_roots_decorated_main_and_exported():
    src = """\
        import functools

        __all__ = ["exported"]

        def exported():
            "doc"
            return 1

        @functools.lru_cache
        def cached():
            "doc"
            return 2

        def main():
            "doc"
            return 3
    """
    assert findings(src, name="repro.workloads.mod", rule=DEAD) == []


def test_cross_dead_code_methods_exempt():
    src = """\
        __all__ = ["Thing"]

        class Thing:
            "doc"

            def never_called(self):
                "doc"
                return 1
    """
    assert findings(src, name="repro.workloads.mod", rule=DEAD) == []


def test_cross_dead_code_pragma_suppressed():
    src = """\
        def _orphan():  # qa: ignore[cross-module-dead-code]
            return 1
    """
    assert findings(src, name="repro.workloads.mod", rule=DEAD) == []


# ----------------------------------------------------------------------
# shape-contract
# ----------------------------------------------------------------------

GRAM = """\
    def gram(x):
        "Gram matrix of an ``(m, p)`` samples×features input."
        return x
"""


def test_shape_contract_fires_on_transposed_argument():
    hits = project_findings(
        {
            "repro.core.lib": GRAM,
            "repro.core.use": """\
                from repro.core.lib import gram

                def run(z):
                    "Run on a ``(p, m)`` metrics-by-snapshots matrix z."
                    return gram(z)
            """,
        },
        rule="shape-contract",
    )
    assert len(hits) == 1
    assert "p×m" in hits[0].message and "m×p" in hits[0].message
    assert hits[0].path == "<repro.core.use>"


def test_shape_contract_clean_on_matching_orientation():
    hits = project_findings(
        {
            "repro.core.lib": GRAM,
            "repro.core.use": """\
                from repro.core.lib import gram

                def run(z):
                    "Run on an ``(m, p)`` matrix z."
                    return gram(z)
            """,
        },
        rule="shape-contract",
    )
    assert hits == []


def test_shape_contract_tracks_return_contracts_through_locals():
    hits = project_findings(
        {
            "repro.core.lib": GRAM,
            "repro.core.make": """\
                def produce():
                    "Produce and return the ``(p, m)`` metric matrix."
                    return [[0.0]]
            """,
            "repro.core.use": """\
                from repro.core.lib import gram
                from repro.core.make import produce

                def run():
                    "doc"
                    y = produce()
                    return gram(y)
            """,
        },
        rule="shape-contract",
    )
    assert len(hits) == 1
    assert "transposed" in hits[0].message


def test_shape_contract_only_checks_core_and_sim_callers():
    hits = project_findings(
        {
            "repro.core.lib": GRAM,
            "repro.analysis.use": """\
                from repro.core.lib import gram

                def run(z):
                    "Run on a ``(p, m)`` matrix z."
                    return gram(z)
            """,
        },
        rule="shape-contract",
    )
    assert hits == []


def test_shape_contract_square_shapes_never_flagged():
    # (p, p) vs (p, p): a == b means a transpose is indistinguishable.
    hits = project_findings(
        {
            "repro.core.lib": """\
                def sym(x):
                    "Symmetrize a ``(p, p)`` matrix."
                    return x
            """,
            "repro.core.use": """\
                from repro.core.lib import sym

                def run(z):
                    "Run on a ``(p, p)`` matrix z."
                    return sym(z)
            """,
        },
        rule="shape-contract",
    )
    assert hits == []


def test_shape_contract_prose_parentheses_are_not_contracts():
    # "(package, lineno)" is prose, not an orientation marker.
    hits = project_findings(
        {
            "repro.core.lib": GRAM,
            "repro.core.use": """\
                from repro.core.lib import gram

                def run(z):
                    "Takes a pair (package, lineno) and a matrix z."
                    return gram(z)
            """,
        },
        rule="shape-contract",
    )
    assert hits == []


def test_shape_contract_pragma_suppressed():
    hits = project_findings(
        {
            "repro.core.lib": GRAM,
            "repro.core.use": """\
                from repro.core.lib import gram

                def run(z):
                    "Run on a ``(p, m)`` matrix z."
                    return gram(z)  # qa: ignore[shape-contract]
            """,
        },
        rule="shape-contract",
    )
    assert hits == []


# ----------------------------------------------------------------------
# metric-name
# ----------------------------------------------------------------------

CATALOG = """\
    GANGLIA_DEFAULT_METRICS = (
        _m("cpu_user"),
        _m("bytes_in"),
    )

    EXPERT_METRIC_NAMES = ("cpu_user",)

    def metric_index(name):
        "doc"
        return 0

    def metric_indices(names):
        "doc"
        return [0 for _ in names]
"""


def test_metric_name_fires_on_unknown_literal():
    hits = project_findings(
        {
            "repro.metrics.catalog": CATALOG,
            "repro.analysis.use": """\
                from repro.metrics.catalog import metric_index

                def lookup():
                    "doc"
                    return metric_index("cpu_userr")
            """,
        },
        rule="metric-name",
    )
    assert len(hits) == 1
    assert "'cpu_userr'" in hits[0].message


def test_metric_name_clean_on_catalog_member():
    hits = project_findings(
        {
            "repro.metrics.catalog": CATALOG,
            "repro.analysis.use": """\
                from repro.metrics.catalog import metric_index

                def lookup():
                    "doc"
                    return metric_index("cpu_user")
            """,
        },
        rule="metric-name",
    )
    assert hits == []


def test_metric_name_tracks_string_constants_through_locals():
    hits = project_findings(
        {
            "repro.metrics.catalog": CATALOG,
            "repro.analysis.use": """\
                from repro.metrics.catalog import metric_index

                def lookup(flag):
                    "doc"
                    name = "cpu_user"
                    if flag:
                        name = "bogus_metric"
                    return metric_index(name)
            """,
        },
        rule="metric-name",
    )
    assert len(hits) == 1
    assert "'bogus_metric'" in hits[0].message


def test_metric_name_checks_sequence_literals():
    hits = project_findings(
        {
            "repro.metrics.catalog": CATALOG,
            "repro.analysis.use": """\
                from repro.metrics.catalog import metric_indices

                def lookup():
                    "doc"
                    return metric_indices(["cpu_user", "ghost_metric"])
            """,
        },
        rule="metric-name",
    )
    assert len(hits) == 1
    assert "'ghost_metric'" in hits[0].message


def test_metric_name_silent_without_a_catalog_module():
    hits = project_findings(
        {
            "repro.analysis.use": """\
                def metric_index(name):
                    "doc"
                    return 0

                def lookup():
                    "doc"
                    return metric_index("anything_goes")
            """,
        },
        rule="metric-name",
    )
    assert hits == []


def test_metric_name_unresolvable_names_not_flagged():
    # A runtime-computed name has no string facts: nothing to check.
    hits = project_findings(
        {
            "repro.metrics.catalog": CATALOG,
            "repro.analysis.use": """\
                from repro.metrics.catalog import metric_index

                def lookup(name):
                    "doc"
                    return metric_index(name)
            """,
        },
        rule="metric-name",
    )
    assert hits == []


def test_metric_name_pragma_suppressed():
    hits = project_findings(
        {
            "repro.metrics.catalog": CATALOG,
            "repro.analysis.use": """\
                from repro.metrics.catalog import metric_index

                def lookup():
                    "doc"
                    return metric_index("cpu_userr")  # qa: ignore[metric-name]
            """,
        },
        rule="metric-name",
    )
    assert hits == []


# ----------------------------------------------------------------------
# unused-result
# ----------------------------------------------------------------------

PURE_CORE = """\
    def double(x):
        "doc"
        return x * 2
"""


def test_unused_result_fires_on_discarded_pure_core_return():
    hits = project_findings(
        {
            "repro.core.pure": PURE_CORE,
            "repro.sim.use": """\
                from repro.core.pure import double

                def run():
                    "doc"
                    double(21)
            """,
        },
        rule="unused-result",
    )
    assert len(hits) == 1
    assert "double()" in hits[0].message


def test_unused_result_clean_when_assigned_or_returned():
    hits = project_findings(
        {
            "repro.core.pure": PURE_CORE,
            "repro.sim.use": """\
                from repro.core.pure import double

                def run():
                    "doc"
                    y = double(21)
                    return double(y)
            """,
        },
        rule="unused-result",
    )
    assert hits == []


def test_unused_result_impure_and_validation_callees_exempt():
    hits = project_findings(
        {
            "repro.core.pure": """\
                def log_and_double(x):
                    "doc"
                    print(x)
                    return x * 2

                def validate_input(x):
                    "doc"
                    return x > 0
            """,
            "repro.sim.use": """\
                from repro.core.pure import log_and_double, validate_input

                def run():
                    "doc"
                    log_and_double(21)
                    validate_input(21)
            """,
        },
        rule="unused-result",
    )
    assert hits == []


def test_unused_result_non_core_callee_exempt():
    hits = project_findings(
        {
            "repro.workloads.pure": PURE_CORE,
            "repro.sim.use": """\
                from repro.workloads.pure import double

                def run():
                    "doc"
                    double(21)
            """,
        },
        rule="unused-result",
    )
    assert hits == []


def test_unused_result_pragma_suppressed():
    hits = project_findings(
        {
            "repro.core.pure": PURE_CORE,
            "repro.sim.use": """\
                from repro.core.pure import double

                def run():
                    "doc"
                    double(21)  # qa: ignore[unused-result]
            """,
        },
        rule="unused-result",
    )
    assert hits == []


# ----------------------------------------------------------------------
# future-annotations
# ----------------------------------------------------------------------

FUT_BAD = """\
    def f(x: int | None) -> str | None:
        "doc"
        return None
"""


def test_future_annotations_fires_on_pep604_without_import():
    hits = findings(FUT_BAD, name="repro.workloads.mod", rule="future-annotations")
    assert len(hits) == 1


def test_future_annotations_clean_with_import():
    src = "from __future__ import annotations\n\n" + textwrap.dedent(FUT_BAD)
    assert findings(src, name="repro.workloads.mod", rule="future-annotations") == []


def test_future_annotations_pragma_suppressed():
    src = """\
        def f(x: int | None) -> int:  # qa: ignore[future-annotations]
            "doc"
            return 0
    """
    assert findings(src, name="repro.workloads.mod", rule="future-annotations") == []


# ----------------------------------------------------------------------
# pragma machinery
# ----------------------------------------------------------------------


def test_bare_pragma_suppresses_every_rule():
    src = "def f(x=[]):  # qa: ignore\n    return x\n"
    assert findings(src) == []


def test_pragma_for_other_rule_does_not_suppress():
    src = "def f(x=[]):  # qa: ignore[float-eq]\n    return x\n"
    assert findings(src, rule="mutable-default")


def test_pragma_on_decorated_def_line_not_decorator_line():
    # The docstring finding anchors at the ``def`` line, so that is where
    # the pragma must sit; one on the decorator line does nothing.
    on_def = """\
        import functools

        @functools.lru_cache
        def api():  # qa: ignore[docstring]
            return 1
    """
    on_decorator = """\
        import functools

        @functools.lru_cache  # qa: ignore[docstring]
        def api():
            return 1
    """
    assert findings(on_def, name="repro.scheduler.mod", rule="docstring") == []
    assert findings(on_decorator, name="repro.scheduler.mod", rule="docstring")


def test_pragma_on_multiline_statement_anchors_at_first_line():
    # The comparison spans three lines; the finding (and therefore the
    # pragma) is on the line where the expression starts.
    suppressed = """\
        ok = (value  # qa: ignore[float-eq]
              ==
              0.15)
    """
    unsuppressed = """\
        ok = (value
              ==
              0.15)  # qa: ignore[float-eq]
    """
    assert findings(suppressed, rule="float-eq") == []
    assert findings(unsuppressed, rule="float-eq")


def test_stacked_pragma_ids_suppress_each_listed_rule():
    src = """\
        def f(x=[], y=0.15):  # qa: ignore[mutable-default, float-eq, docstring]
            return x == 0.15
    """
    hits = findings(src, name="repro.scheduler.mod")
    assert [f for f in hits if f.rule_id in ("mutable-default", "docstring")] == []
    # The float-eq comparison is on a *different* line: still reported.
    assert [f.rule_id for f in hits if f.rule_id == "float-eq"] == ["float-eq"]
