"""Tests for the application catalog (paper Table 2)."""

import pytest

from repro.workloads.base import Workload
from repro.workloads.catalog import TEST_RUNS, TRAINING_SET, all_keys, entry
from repro.workloads.catalog import test_entries as catalog_test_entries
from repro.workloads.catalog import training_entries


def test_training_set_covers_five_classes():
    classes = [e.training_class for e in TRAINING_SET]
    assert classes == ["CPU", "IO", "MEM", "NET", "IDLE"]


def test_training_set_applications_match_paper():
    """Paper §4.2.3: SPECseis96→CPU, PostMark→IO, Pagebench→paging,
    Ettcp→NET, plus the idle state."""
    by_class = {e.training_class: e.build().name for e in TRAINING_SET}
    assert by_class["CPU"].startswith("specseis96")
    assert by_class["IO"] == "postmark"
    assert by_class["MEM"] == "pagebench"
    assert by_class["NET"] == "ettcp"
    assert by_class["IDLE"] == "idle"


def test_fourteen_test_runs():
    """Table 3 has 14 rows."""
    assert len(TEST_RUNS) == 14


def test_test_run_keys_in_paper_order():
    keys = [e.key for e in TEST_RUNS]
    assert keys[:4] == ["specseis96-A", "specseis96-C", "ch3d", "simplescalar"]
    assert keys[-2:] == ["vmd", "xspim"]


def test_specseis_b_uses_32mb_vm():
    assert entry("specseis96-B").vm_mem_mb == 32.0
    assert entry("specseis96-A").vm_mem_mb == 256.0


def test_network_entries_flagged():
    for key in ("postmark-nfs", "netpipe", "autobench", "sftp"):
        assert entry(key).uses_network_server


def test_local_entries_not_flagged():
    for key in ("postmark", "bonnie", "simplescalar", "stream"):
        assert not entry(key).uses_network_server


def test_entry_lookup_unknown():
    with pytest.raises(KeyError):
        entry("nonexistent")


def test_factories_build_fresh_workloads():
    e = entry("postmark")
    a, b = e.build(), e.build()
    assert isinstance(a, Workload)
    assert a is not b


def test_all_keys_unique_and_complete():
    keys = all_keys()
    assert len(keys) == len(set(keys))
    assert len(keys) == len(TRAINING_SET) + len(TEST_RUNS)


def test_expected_behaviors_are_paper_categories():
    valid = {"CPU Intensive", "IO & Paging Intensive", "Network Intensive", "Idle", "Idle + Others"}
    for e in training_entries() + catalog_test_entries():
        assert e.expected_behavior in valid
