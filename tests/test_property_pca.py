"""Property-based tests for PCA invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.incremental import IncrementalPCA
from repro.core.pca import PCA


def data_matrices(min_rows=4, max_rows=40, min_cols=2, max_cols=6):
    def build(draw):
        rows = draw(st.integers(min_rows, max_rows))
        cols = draw(st.integers(min_cols, max_cols))
        return draw(
            arrays(
                np.float64,
                (rows, cols),
                elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            )
        )

    return st.composite(build)()


@given(x=data_matrices())
@settings(max_examples=60, deadline=None)
def test_components_orthonormal(x):
    q = min(2, x.shape[1])
    pca = PCA(n_components=q).fit(x)
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(q), atol=1e-8)


@given(x=data_matrices())
@settings(max_examples=60, deadline=None)
def test_explained_variance_sorted_and_non_negative(x):
    pca = PCA(n_components=x.shape[1]).fit(x)
    ev = pca.explained_variance_
    assert np.all(ev >= -1e-12)
    assert np.all(np.diff(ev) <= 1e-9 * (1 + ev[0]))


@given(x=data_matrices())
@settings(max_examples=60, deadline=None)
def test_full_rank_reconstruction_identity(x):
    pca = PCA(n_components=x.shape[1]).fit(x)
    recon = pca.inverse_transform(pca.transform(x))
    scale = 1.0 + np.abs(x).max()
    assert np.allclose(recon, x, atol=1e-6 * scale)


@given(x=data_matrices())
@settings(max_examples=60, deadline=None)
def test_variance_ratio_within_unit_interval(x):
    pca = PCA(min_variance_fraction=0.9).fit(x)
    ratio = pca.explained_variance_ratio_
    assert np.all(ratio >= -1e-12)
    assert ratio.sum() <= 1.0 + 1e-9
    # The selection rule must actually reach the threshold (or use all
    # components when variance is concentrated/degenerate).
    if pca.total_variance() > 1e-12:
        assert ratio.sum() >= 0.9 - 1e-9 or pca.n_components_ == x.shape[1]


@given(x=data_matrices(min_rows=6))
@settings(max_examples=40, deadline=None)
def test_projection_preserves_pairwise_distance_bound(x):
    """Projection onto orthonormal directions never increases distances."""
    pca = PCA(n_components=min(2, x.shape[1])).fit(x)
    z = pca.transform(x)
    for i in (0, len(x) // 2):
        for j in (len(x) - 1,):
            orig = np.linalg.norm(x[i] - x[j])
            proj = np.linalg.norm(z[i] - z[j])
            assert proj <= orig + 1e-6 * (1 + orig)


@given(x=data_matrices(min_rows=8), n_chunks=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_incremental_matches_batch(x, n_chunks):
    n_chunks = min(n_chunks, x.shape[0])
    inc = IncrementalPCA(n_components=min(2, x.shape[1]))
    for chunk in np.array_split(x, n_chunks):
        if chunk.shape[0]:
            inc.partial_fit(chunk)
    batch = PCA(n_components=min(2, x.shape[1])).fit(x)
    assert np.allclose(inc.mean_, batch.mean_, atol=1e-8 * (1 + np.abs(x).max()))
    assert np.allclose(
        inc.explained_variance_, batch.explained_variance_,
        atol=1e-6 * (1 + batch.explained_variance_[0]),
    )
