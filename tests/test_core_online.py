"""Tests for the online (streaming) classifier."""

import numpy as np
import pytest

from repro.core.labels import SnapshotClass
from repro.core.online import NodeClassificationState, OnlineClassifier
from repro.core.pipeline import ApplicationClassifier
from repro.monitoring.multicast import MetricAnnouncement, MulticastChannel
from repro.metrics.catalog import NUM_METRICS, metric_index

from tests.test_core_pipeline import synthetic_series, synthetic_training


@pytest.fixture(scope="module")
def trained():
    return ApplicationClassifier().train(synthetic_training())


def announce_kind(channel, node, t, kind, seed=0):
    """Publish one announcement with a class-typical metric signature."""
    series = synthetic_series(kind, m=1, seed=seed, node=node)
    channel.announce(
        MetricAnnouncement(node=node, timestamp=t, values=series.matrix[:, 0])
    )


class TestNodeState:
    def test_streak_tracking(self):
        state = NodeClassificationState(node="n")
        state.record(SnapshotClass.CPU, 5.0)
        state.record(SnapshotClass.CPU, 10.0)
        state.record(SnapshotClass.IO, 15.0)
        assert state.current_class is SnapshotClass.IO
        assert state.streak == 1
        assert state.snapshots_seen == 3
        assert state.last_timestamp == 15.0

    def test_composition_and_majority(self):
        state = NodeClassificationState(node="n")
        for _ in range(3):
            state.record(SnapshotClass.NET, 0.0)
        state.record(SnapshotClass.IO, 0.0)
        assert state.majority_class() is SnapshotClass.NET
        assert state.composition().net == pytest.approx(0.75)

    def test_empty_state_raises(self):
        state = NodeClassificationState(node="n")
        with pytest.raises(ValueError):
            state.composition()
        with pytest.raises(ValueError):
            state.majority_class()


class TestOnlineClassifier:
    def test_requires_trained_classifier(self):
        with pytest.raises(RuntimeError):
            OnlineClassifier(ApplicationClassifier(), MulticastChannel())

    def test_streams_and_accumulates(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        for t in range(5):
            announce_kind(channel, "VM1", float(t * 5), "cpu", seed=t)
        state = online.state("VM1")
        assert state.snapshots_seen == 5
        assert state.majority_class() is SnapshotClass.CPU

    def test_tracks_multiple_nodes(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        announce_kind(channel, "VM2", 5.0, "net")
        assert online.nodes() == ["VM1", "VM2"]
        assert online.state("VM2").majority_class() is SnapshotClass.NET

    def test_node_allow_list(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel, nodes=["VM1"])
        announce_kind(channel, "VM1", 5.0, "cpu")
        announce_kind(channel, "VM2", 5.0, "net")
        assert online.nodes() == ["VM1"]
        with pytest.raises(KeyError):
            online.state("VM2")

    def test_stable_class_requires_streak(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu", seed=1)
        assert online.stable_class("VM1", min_streak=3) is None
        announce_kind(channel, "VM1", 10.0, "cpu", seed=2)
        announce_kind(channel, "VM1", 15.0, "cpu", seed=3)
        assert online.stable_class("VM1", min_streak=3) is SnapshotClass.CPU

    def test_stable_class_resets_on_change(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        for t, kind in enumerate(["cpu", "cpu", "cpu", "io"]):
            announce_kind(channel, "VM1", float(t * 5), kind, seed=t)
        assert online.stable_class("VM1", min_streak=2) is None

    def test_stable_class_validation(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        with pytest.raises(ValueError):
            online.stable_class("VM1", min_streak=0)

    def test_detach_stops_consumption(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        online.detach()
        announce_kind(channel, "VM1", 10.0, "cpu")
        assert online.state("VM1").snapshots_seen == 1

    def test_matches_batch_classification(self, trained):
        """Streaming the snapshots one-by-one equals the batch class vector."""
        series = synthetic_series("io", m=20, seed=9)
        batch = trained.classify_series(series).class_vector
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        for j in range(len(series)):
            channel.announce(
                MetricAnnouncement(
                    node="VM1",
                    timestamp=float(series.timestamps[j]),
                    values=series.matrix[:, j],
                )
            )
        state = online.state("VM1")
        assert state.snapshots_seen == 20
        assert np.argmax(state.class_counts) == np.bincount(batch, minlength=5).argmax()

    def test_live_engine_stream(self, classifier):
        """Online classification riding a real simulation's channel."""
        from repro.monitoring.stack import MonitoringStack
        from repro.sim.engine import SimulationEngine
        from repro.sim.execution import classification_testbed
        from repro.workloads.base import WorkloadInstance
        from repro.workloads.io import postmark

        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=8)
        stack = MonitoringStack(engine, seed=9)
        online = OnlineClassifier(classifier, stack.channel, nodes=["VM1"])
        engine.add_instance(WorkloadInstance(postmark(120.0), vm_name="VM1"))
        engine.run()
        state = online.state("VM1")
        assert state.snapshots_seen >= 20
        assert state.majority_class() is SnapshotClass.IO
