"""Tests for the online (streaming) classifier."""

import numpy as np
import pytest

from repro.core.labels import SnapshotClass
from repro.core.online import NodeClassificationState, OnlineClassifier
from repro.core.pipeline import ApplicationClassifier
from repro.monitoring.multicast import MetricAnnouncement, MulticastChannel
from repro.metrics.catalog import NUM_METRICS, metric_index

from tests.test_core_pipeline import synthetic_series, synthetic_training


@pytest.fixture(scope="module")
def trained():
    return ApplicationClassifier().train(synthetic_training())


def announce_kind(channel, node, t, kind, seed=0):
    """Publish one announcement with a class-typical metric signature."""
    series = synthetic_series(kind, m=1, seed=seed, node=node)
    channel.announce(
        MetricAnnouncement(node=node, timestamp=t, values=series.matrix[:, 0])
    )


class TestNodeState:
    def test_streak_tracking(self):
        state = NodeClassificationState(node="n")
        state.record(SnapshotClass.CPU, 5.0)
        state.record(SnapshotClass.CPU, 10.0)
        state.record(SnapshotClass.IO, 15.0)
        assert state.current_class is SnapshotClass.IO
        assert state.streak == 1
        assert state.snapshots_seen == 3
        assert state.last_timestamp == 15.0

    def test_composition_and_majority(self):
        state = NodeClassificationState(node="n")
        for _ in range(3):
            state.record(SnapshotClass.NET, 0.0)
        state.record(SnapshotClass.IO, 0.0)
        assert state.majority_class() is SnapshotClass.NET
        assert state.composition().net == pytest.approx(0.75)

    def test_empty_state_raises(self):
        state = NodeClassificationState(node="n")
        with pytest.raises(ValueError):
            state.composition()
        with pytest.raises(ValueError):
            state.majority_class()


class TestOnlineClassifier:
    def test_requires_trained_classifier(self):
        with pytest.raises(RuntimeError):
            OnlineClassifier(ApplicationClassifier(), MulticastChannel())

    def test_streams_and_accumulates(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        for t in range(5):
            announce_kind(channel, "VM1", float(t * 5), "cpu", seed=t)
        state = online.state("VM1")
        assert state.snapshots_seen == 5
        assert state.majority_class() is SnapshotClass.CPU

    def test_tracks_multiple_nodes(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        announce_kind(channel, "VM2", 5.0, "net")
        assert online.nodes() == ["VM1", "VM2"]
        assert online.state("VM2").majority_class() is SnapshotClass.NET

    def test_node_allow_list(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel, nodes=["VM1"])
        announce_kind(channel, "VM1", 5.0, "cpu")
        announce_kind(channel, "VM2", 5.0, "net")
        assert online.nodes() == ["VM1"]
        with pytest.raises(KeyError):
            online.state("VM2")

    def test_stable_class_requires_streak(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu", seed=1)
        assert online.stable_class("VM1", min_streak=3) is None
        announce_kind(channel, "VM1", 10.0, "cpu", seed=2)
        announce_kind(channel, "VM1", 15.0, "cpu", seed=3)
        assert online.stable_class("VM1", min_streak=3) is SnapshotClass.CPU

    def test_stable_class_resets_on_change(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        for t, kind in enumerate(["cpu", "cpu", "cpu", "io"]):
            announce_kind(channel, "VM1", float(t * 5), kind, seed=t)
        assert online.stable_class("VM1", min_streak=2) is None

    def test_stable_class_validation(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        with pytest.raises(ValueError):
            online.stable_class("VM1", min_streak=0)

    def test_detach_stops_consumption(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        online.detach()
        announce_kind(channel, "VM1", 10.0, "cpu")
        assert online.state("VM1").snapshots_seen == 1

    def test_matches_batch_classification(self, trained):
        """Streaming the snapshots one-by-one equals the batch class vector."""
        series = synthetic_series("io", m=20, seed=9)
        batch = trained.classify_series(series).class_vector
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        for j in range(len(series)):
            channel.announce(
                MetricAnnouncement(
                    node="VM1",
                    timestamp=float(series.timestamps[j]),
                    values=series.matrix[:, j],
                )
            )
        state = online.state("VM1")
        assert state.snapshots_seen == 20
        assert np.argmax(state.class_counts) == np.bincount(batch, minlength=5).argmax()

    def test_live_engine_stream(self, classifier):
        """Online classification riding a real simulation's channel."""
        from repro.monitoring.stack import MonitoringStack
        from repro.sim.engine import SimulationEngine
        from repro.sim.execution import classification_testbed
        from repro.workloads.base import WorkloadInstance
        from repro.workloads.io import postmark

        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=8)
        stack = MonitoringStack(engine, seed=9)
        online = OnlineClassifier(classifier, stack.channel, nodes=["VM1"])
        engine.add_instance(WorkloadInstance(postmark(120.0), vm_name="VM1"))
        engine.run()
        state = online.state("VM1")
        assert state.snapshots_seen >= 20
        assert state.majority_class() is SnapshotClass.IO


class TestAttachDetachLifecycle:
    """Regression tests: idempotent detach, re-attach, hoisted indices."""

    def test_detach_is_idempotent(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        online.detach()
        online.detach()  # second detach is a no-op, not a ValueError
        assert not online.attached

    def test_detach_tolerates_torn_down_channel(self, trained):
        """A channel that already dropped the listener must not blow up."""
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        channel.unsubscribe(online._callback)
        online.detach()
        assert not online.attached

    def test_attach_is_idempotent(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        online.attach()  # already attached: must not double-subscribe
        announce_kind(channel, "VM1", 5.0, "cpu")
        assert online.state("VM1").snapshots_seen == 1

    def test_reattach_resumes_with_kept_state(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        online.detach()
        announce_kind(channel, "VM1", 10.0, "cpu")  # missed while detached
        online.attach()
        announce_kind(channel, "VM1", 15.0, "cpu")
        assert online.attached
        assert online.state("VM1").snapshots_seen == 2

    def test_classify_announcement_raises_when_detached(self, trained):
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        series = synthetic_series("cpu", m=1, seed=11)
        ann = MetricAnnouncement(node="VM1", timestamp=0.0, values=series.matrix[:, 0])
        online.detach()
        with pytest.raises(RuntimeError, match="detached"):
            online.classify_announcement(ann)
        online.attach()
        assert online.classify_announcement(ann) is SnapshotClass.CPU

    def test_late_delivery_after_detach_is_dropped(self, trained):
        """Detaching from inside the same fan-out drops later deliveries.

        The channel snapshots its listener list before delivering, so a
        listener that detaches the classifier mid-fan-out cannot stop
        the already-scheduled delivery — the classifier itself must
        drop it instead of classifying while detached.
        """
        channel = MulticastChannel()
        channel.subscribe(lambda ann: online.detach())
        online = OnlineClassifier(trained, channel)
        announce_kind(channel, "VM1", 5.0, "cpu")
        assert not online.attached
        with pytest.raises(KeyError):
            online.state("VM1")

    def test_metric_indices_hoisted_to_attach(self, trained, monkeypatch):
        """The announcement path never recomputes catalog lookups."""
        import repro.core.online as online_mod

        calls = []
        real = online_mod.metric_indices

        def counting(names):
            calls.append(tuple(names))
            return real(names)

        monkeypatch.setattr(online_mod, "metric_indices", counting)
        channel = MulticastChannel()
        online = OnlineClassifier(trained, channel)
        assert len(calls) == 1  # once, at construction-time attach
        for t in range(5):
            announce_kind(channel, "VM1", float(t), "cpu")
        assert len(calls) == 1  # streaming adds no lookups
        online.detach()
        online.attach()
        assert len(calls) == 2  # re-attach recomputes exactly once
