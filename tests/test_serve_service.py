"""Micro-batching, backpressure, and shutdown of the classification service."""

import threading
import time

import numpy as np
import pytest

from repro.errors import EmptySeriesError, ReproError, ServiceOverloadedError
from repro.experiments.fleet import profile_fleet
from repro.metrics.series import SnapshotSeries
from repro.serve.service import ClassificationService


@pytest.fixture(scope="module")
def fleet():
    return profile_fleet(8, seed=100)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"max_wait_s": -0.1},
            {"max_queue": 0},
            {"workers": 0},
        ],
    )
    def test_bad_parameters(self, classifier, kwargs):
        with pytest.raises(ValueError):
            ClassificationService(classifier, autostart=False, **kwargs)

    def test_empty_series_rejected_at_submit(self, classifier, fleet):
        empty = SnapshotSeries(
            node="VM1",
            timestamps=np.empty(0, dtype=np.float64),
            matrix=np.empty((fleet[0].matrix.shape[0], 0), dtype=np.float64),
        )
        with ClassificationService(classifier) as service:
            with pytest.raises(EmptySeriesError):
                service.submit(empty)


class TestMicroBatching:
    def test_size_trigger_flushes_full_batch(self, classifier, fleet):
        # max_wait_s is far longer than the test budget: only the size
        # trigger can flush, so completion proves it fired.
        with ClassificationService(
            classifier, batch_size=len(fleet), max_wait_s=30.0
        ) as service:
            futures = [service.submit(s) for s in fleet]
            results = [f.result(timeout=10.0) for f in futures]
        expected = [classifier.classify_series(s) for s in fleet]
        for result, exp in zip(results, expected):
            assert np.array_equal(result.class_vector, exp.class_vector)
            assert result.application_class is exp.application_class
        assert service.stats.batches == 1
        assert service.stats.completed == len(fleet)

    def test_time_trigger_flushes_partial_batch(self, classifier, fleet):
        # Fewer submissions than batch_size: only the wait-window timer
        # can flush this batch.
        with ClassificationService(
            classifier, batch_size=64, max_wait_s=0.02
        ) as service:
            futures = [service.submit(s) for s in fleet[:3]]
            results = [f.result(timeout=10.0) for f in futures]
        assert len(results) == 3
        assert service.stats.completed == 3
        assert service.stats.batches >= 1

    def test_classify_blocking_convenience(self, classifier, fleet):
        with ClassificationService(classifier, max_wait_s=0.005) as service:
            result = service.classify(fleet[0], timeout=10.0)
        expected = classifier.classify_series(fleet[0])
        assert np.array_equal(result.class_vector, expected.class_vector)

    def test_stats_snapshot(self, classifier, fleet):
        with ClassificationService(classifier, max_wait_s=0.005) as service:
            for s in fleet[:4]:
                service.submit(s)
        stats = service.stats
        assert stats.submitted == 4
        assert stats.completed == 4
        assert stats.failed == 0
        assert stats.rejected == 0
        assert stats.pending == 0


class TestBackpressure:
    def test_full_queue_rejects(self, classifier, fleet):
        service = ClassificationService(classifier, max_queue=4, autostart=False)
        try:
            for s in fleet[:4]:
                service.submit(s)
            with pytest.raises(ServiceOverloadedError):
                service.submit(fleet[4])
            # Dual inheritance: RuntimeError and ReproError both catch.
            with pytest.raises(RuntimeError):
                service.submit(fleet[4])
            with pytest.raises(ReproError):
                service.submit(fleet[4])
            assert service.stats.rejected == 3
            assert service.stats.submitted == 4
        finally:
            service.start()
            service.shutdown()
        assert service.stats.completed == 4

    def test_submit_after_shutdown_raises(self, classifier, fleet):
        service = ClassificationService(classifier)
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(fleet[0])


class TestShutdown:
    def test_drain_completes_pending(self, classifier, fleet):
        service = ClassificationService(classifier, max_queue=16, autostart=False)
        futures = [service.submit(s) for s in fleet]
        service.start()
        service.shutdown(drain=True)
        for future in futures:
            assert future.result(timeout=0).application_class is not None
        assert service.stats.completed == len(fleet)
        assert service.stats.pending == 0

    def test_no_drain_fails_pending(self, classifier, fleet):
        service = ClassificationService(classifier, max_queue=16, autostart=False)
        futures = [service.submit(s) for s in fleet]
        service.shutdown(drain=False)
        for future in futures:
            with pytest.raises(ServiceOverloadedError):
                future.result(timeout=0)
        assert service.stats.failed == len(fleet)

    def test_shutdown_idempotent(self, classifier):
        service = ClassificationService(classifier)
        service.shutdown()
        service.shutdown()

    def test_start_after_shutdown_raises(self, classifier):
        service = ClassificationService(classifier)
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.start()

    def test_no_deadlock_under_saturation(self, classifier, fleet):
        # Submit far more than the queue holds, from the caller thread,
        # while one worker drains: every accepted request completes and
        # the service shuts down within the test budget.
        service = ClassificationService(
            classifier, batch_size=4, max_wait_s=0.001, max_queue=4
        )
        accepted, rejected = [], 0
        deadline = time.monotonic() + 10.0
        for _ in range(5):
            for s in fleet:
                assert time.monotonic() < deadline
                try:
                    accepted.append(service.submit(s))
                except ServiceOverloadedError:
                    rejected += 1
        service.shutdown(drain=True)
        for future in accepted:
            assert future.result(timeout=0) is not None
        stats = service.stats
        assert stats.completed == len(accepted)
        assert stats.rejected == rejected
        assert stats.pending == 0


class TestWorkers:
    def test_multiple_workers(self, classifier, fleet):
        with ClassificationService(
            classifier, workers=3, batch_size=2, max_wait_s=0.001
        ) as service:
            futures = [service.submit(s) for s in fleet]
            for future in futures:
                future.result(timeout=10.0)
        assert service.stats.completed == len(fleet)


class TestConcurrentShutdown:
    def test_concurrent_shutdown_callers_all_wait_for_drain(self, classifier, fleet):
        service = ClassificationService(classifier, batch_size=4)
        futures = [service.submit(s) for s in fleet]
        barrier = threading.Barrier(4, timeout=10.0)

        def closer():
            barrier.wait()
            service.shutdown(drain=True)
            # shutdown returned => the drain is fully finished, no matter
            # which caller actually performed it.
            assert all(f.done() for f in futures)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not any(t.is_alive() for t in threads)
        assert service.stats.completed == len(fleet)
        assert service.stats.pending == 0

    def test_stop_alias_sheds_pending(self, classifier, fleet):
        service = ClassificationService(classifier, autostart=False)
        futures = [service.submit(s) for s in fleet[:2]]
        service.stop()
        for future in futures:
            with pytest.raises(ServiceOverloadedError):
                future.result(timeout=1.0)

    def test_drain_alias_completes_pending(self, classifier, fleet):
        service = ClassificationService(classifier)
        futures = [service.submit(s) for s in fleet]
        service.drain()
        for future in futures:
            assert future.result(timeout=1.0) is not None

    def test_submit_shutdown_race_strands_no_future(self, classifier, fleet):
        # submit() checks _stopping and enqueues atomically: a request
        # accepted during a concurrent drain must still complete instead
        # of slipping into the queue after the workers were told to stop.
        service = ClassificationService(classifier)
        series = fleet[0]
        accepted = []

        def submitter():
            while True:
                try:
                    accepted.append(service.submit(series))
                except RuntimeError:
                    return
                except ServiceOverloadedError:
                    time.sleep(0.001)

        thread = threading.Thread(target=submitter)
        thread.start()
        time.sleep(0.05)
        service.shutdown(drain=True)
        thread.join(30.0)
        assert not thread.is_alive()
        for future in accepted:
            assert future.result(timeout=10.0) is not None
