"""Tests for the per-tick trace recorder."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceRecorder
from repro.vm.cluster import single_vm_cluster
from repro.workloads.base import WorkloadInstance

from tests.conftest import short_cpu_workload


def test_trace_records_full_speed_solo():
    cluster = single_vm_cluster()
    engine = SimulationEngine(cluster, seed=0)
    key = engine.add_instance(WorkloadInstance(short_cpu_workload(30.0), vm_name="VM1"))
    recorder = TraceRecorder(engine)
    engine.run()
    trace = recorder.trace(key)
    assert trace.workload_name == "mini-cpu"
    assert trace.mean_fraction() == pytest.approx(1.0, abs=0.05)


def test_trace_reflects_contention():
    cluster = single_vm_cluster()
    engine = SimulationEngine(cluster, seed=0)
    k1 = engine.add_instance(WorkloadInstance(short_cpu_workload(30.0), vm_name="VM1"))
    engine.add_instance(WorkloadInstance(short_cpu_workload(30.0), vm_name="VM1"))
    recorder = TraceRecorder(engine)
    engine.run()
    # Two co-runners: interference alone caps progress well below 1.
    assert recorder.trace(k1).mean_fraction() < 0.85


def test_trace_arrays_aligned():
    cluster = single_vm_cluster()
    engine = SimulationEngine(cluster, seed=0)
    key = engine.add_instance(WorkloadInstance(short_cpu_workload(10.0), vm_name="VM1"))
    recorder = TraceRecorder(engine)
    engine.run()
    times, fractions = recorder.trace(key).as_arrays()
    assert times.shape == fractions.shape
    assert len(times) > 5


def test_trace_missing_key():
    cluster = single_vm_cluster()
    engine = SimulationEngine(cluster, seed=0)
    recorder = TraceRecorder(engine)
    with pytest.raises(KeyError):
        recorder.trace(99)
