"""Tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.core.pca import PCA


def correlated_data(m=400, seed=0):
    """Data with one dominant direction plus noise."""
    rng = np.random.default_rng(seed)
    t = rng.normal(size=m)
    x = np.column_stack(
        [3.0 * t, -2.0 * t + 0.1 * rng.normal(size=m), 0.2 * rng.normal(size=m)]
    )
    return x + np.array([10.0, -5.0, 2.0])


class TestConstruction:
    def test_exactly_one_selection_mode(self):
        with pytest.raises(ValueError):
            PCA()
        with pytest.raises(ValueError):
            PCA(n_components=2, min_variance_fraction=0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA(min_variance_fraction=0.0)
        with pytest.raises(ValueError):
            PCA(min_variance_fraction=1.5)


class TestFit:
    def test_components_orthonormal(self):
        pca = PCA(n_components=3).fit(correlated_data())
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-10)

    def test_variance_sorted_descending(self):
        pca = PCA(n_components=3).fit(correlated_data())
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-12)

    def test_first_component_captures_dominant_direction(self):
        pca = PCA(n_components=1).fit(correlated_data())
        direction = pca.components_[0]
        expected = np.array([3.0, -2.0, 0.0])
        expected /= np.linalg.norm(expected)
        assert abs(abs(direction @ expected) - 1.0) < 0.01

    def test_explained_variance_ratio_sums_to_one_full_rank(self):
        pca = PCA(n_components=3).fit(correlated_data())
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_min_variance_fraction_selects_q(self):
        pca = PCA(min_variance_fraction=0.95).fit(correlated_data())
        assert pca.n_components_ == 1  # one direction has ~99% of variance
        pca_all = PCA(min_variance_fraction=1.0).fit(correlated_data())
        assert pca_all.n_components_ == 3

    def test_paper_configuration_two_components(self):
        """The paper's threshold was set to extract exactly q = 2."""
        pca = PCA(n_components=2).fit(correlated_data())
        assert pca.components_.shape == (2, 3)

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            PCA(n_components=4).fit(correlated_data())

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            PCA(n_components=1).fit(np.zeros((1, 3)))

    def test_deterministic_sign_convention(self):
        a = PCA(n_components=2).fit(correlated_data(seed=1))
        b = PCA(n_components=2).fit(correlated_data(seed=1))
        assert np.array_equal(a.components_, b.components_)
        # Largest-magnitude loading positive.
        for row in a.components_:
            assert row[np.argmax(np.abs(row))] > 0


class TestTransform:
    def test_projection_shape(self):
        x = correlated_data()
        scores = PCA(n_components=2).fit_transform(x)
        assert scores.shape == (x.shape[0], 2)

    def test_scores_are_centered(self):
        scores = PCA(n_components=2).fit_transform(correlated_data())
        assert np.allclose(scores.mean(axis=0), 0.0, atol=1e-9)

    def test_scores_uncorrelated(self):
        scores = PCA(n_components=2).fit_transform(correlated_data())
        cov = np.cov(scores.T)
        assert abs(cov[0, 1]) < 1e-8

    def test_score_variance_matches_eigenvalues(self):
        pca = PCA(n_components=2)
        scores = pca.fit_transform(correlated_data())
        var = scores.var(axis=0, ddof=1)
        assert np.allclose(var, pca.explained_variance_, rtol=1e-8)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(n_components=1).transform(np.zeros((2, 3)))

    def test_dimension_mismatch(self):
        pca = PCA(n_components=1).fit(correlated_data())
        with pytest.raises(ValueError):
            pca.transform(np.zeros((2, 5)))


class TestReconstruction:
    def test_full_rank_reconstruction_exact(self):
        x = correlated_data()
        pca = PCA(n_components=3).fit(x)
        recon = pca.inverse_transform(pca.transform(x))
        assert np.allclose(recon, x, atol=1e-8)
        assert pca.reconstruction_error(x) < 1e-16

    def test_reduced_reconstruction_error_small_for_low_rank_data(self):
        x = correlated_data()
        pca = PCA(n_components=2).fit(x)
        # Data is essentially rank 2, so 2 components reconstruct well.
        assert pca.reconstruction_error(x) < 0.01 * x.var()

    def test_error_decreases_with_components(self):
        x = correlated_data()
        errors = [PCA(n_components=q).fit(x).reconstruction_error(x) for q in (1, 2, 3)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_inverse_validates_shape(self):
        pca = PCA(n_components=2).fit(correlated_data())
        with pytest.raises(ValueError):
            pca.inverse_transform(np.zeros((4, 3)))

    def test_total_variance(self):
        x = correlated_data()
        pca = PCA(n_components=1).fit(x)
        assert pca.total_variance() == pytest.approx(
            np.trace(np.cov(x.T)), rel=1e-10
        )
