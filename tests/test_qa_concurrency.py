"""Tests for the concurrency analysis: the four index rules, the
lock-guard inference, the lock-order graph, and the ``concurrency``
CLI verb.

Rule fixtures follow the test_qa_rules convention — one firing snippet,
one clean snippet, and (where it matters) one silenced by a
``# qa: ignore[...]`` pragma — run through :meth:`Analyzer.run_source`
so the index rules see a single-module project.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.qa import (
    Analyzer,
    Baseline,
    ConcurrencyIndex,
    ProjectIndex,
    SourceModule,
    build_module_symbols,
    get_rule,
)
from repro.qa.cli import main as qa_main
from repro.qa.lockgraph import render_guard_tables, render_lock_order, to_dot

REPO = Path(__file__).resolve().parent.parent

CONCURRENCY_RULES = (
    "unguarded-shared-state",
    "lock-order-inversion",
    "blocking-under-lock",
    "thread-lifecycle",
)


def findings(source: str, rule: str):
    """Lint a snippet as a one-module project; keep one rule's findings."""
    out = Analyzer().run_source(textwrap.dedent(source), name="repro.serve.mod")
    return [f for f in out if f.rule_id == rule]


def build_conc(sources: dict[str, str]) -> ConcurrencyIndex:
    """The ConcurrencyIndex of a synthetic multi-module project."""
    facts = [
        build_module_symbols(
            SourceModule.from_source(textwrap.dedent(src), relpath=f"<{name}>", name=name)
        )
        for name, src in sources.items()
    ]
    return ConcurrencyIndex.of(ProjectIndex.build(facts))


# ----------------------------------------------------------------------
# unguarded-shared-state
# ----------------------------------------------------------------------


GUARDED_BOX = """\
    import threading


    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def add(self, x):
            with self._lock:
                self._items.append(x)

        def flush(self):
            with self._lock:
                self._items = []

        def peek(self):
            return self._items
    """


def test_unguarded_read_fires():
    found = findings(GUARDED_BOX, "unguarded-shared-state")
    assert len(found) == 1
    assert "self._items" in found[0].message
    assert "read lock-free" in found[0].message
    assert "Box.peek()" in found[0].message


def test_unguarded_write_fires():
    # Four guarded writes and one lock-free one: 4/5 = 80% meets the
    # guard-ratio threshold, and the lock-free write is the violation.
    src = """\
        import threading


        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, x):
                with self._lock:
                    self._items.append(x)

            def extend(self, xs):
                with self._lock:
                    self._items.extend(xs)

            def flush(self):
                with self._lock:
                    self._items = []

            def rebuild(self):
                with self._lock:
                    self._items = list(self._items)

            def reset(self):
                self._items = None
        """
    found = findings(src, "unguarded-shared-state")
    assert len(found) == 1
    assert "written lock-free" in found[0].message
    assert "4/5 writes" in found[0].message


def test_all_guarded_is_clean():
    src = GUARDED_BOX.replace(
        "return self._items",
        "with self._lock:\n                return self._items",
    )
    assert findings(src, "unguarded-shared-state") == []


def test_below_guard_ratio_is_clean():
    # One guarded write out of two (50% < 80%): no guard is inferred,
    # so the lock-free read cannot be a violation.
    src = GUARDED_BOX.replace(
        "with self._lock:\n                self._items = []",
        "self._items = []",
    )
    assert "with" not in src.split("def flush")[1].split("def peek")[0]
    assert findings(src, "unguarded-shared-state") == []


def test_pragma_silences_unguarded_read():
    src = GUARDED_BOX
    src = src.replace(
        "return self._items",
        "return self._items  # qa: ignore[unguarded-shared-state]",
    )
    assert findings(src, "unguarded-shared-state") == []


def test_sync_primitive_attributes_are_exempt():
    # Events/queues are internally synchronized: lock-free .set() or
    # .put() on them is fine and must not be inferred as a violation.
    src = """\
        import threading


        class Flag:
            def __init__(self):
                self._lock = threading.Lock()
                self._stop = threading.Event()

            def arm(self):
                with self._lock:
                    self._stop.clear()

            def trip(self):
                with self._lock:
                    self._stop.set()

            def tripped(self):
                return self._stop.is_set()
        """
    assert findings(src, "unguarded-shared-state") == []


def test_private_helper_inherits_callers_lock():
    # _evict is only ever called with the lock held, so its lock-free
    # body counts as guarded (inherited-held interprocedural analysis).
    src = """\
        import threading


        class Bounded:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, x):
                with self._lock:
                    self._items.append(x)
                    self._evict()

            def clear(self):
                with self._lock:
                    self._items = []
                    self._evict()

            def _evict(self):
                while len(self._items) > 8:
                    self._items.pop()
        """
    assert findings(src, "unguarded-shared-state") == []


def test_accesses_in_init_are_not_violations():
    # __init__ runs before the object is shared; its lock-free writes
    # neither count toward the guard ratio nor fire the rule.
    src = GUARDED_BOX.replace(
        "self._items = []\n",
        "self._items = []\n            self._items.append(0)\n",
        1,
    )
    found = findings(src, "unguarded-shared-state")
    assert len(found) == 1  # still only the peek() read


# ----------------------------------------------------------------------
# lock-order-inversion
# ----------------------------------------------------------------------


def test_direct_inversion_fires():
    src = """\
        import threading

        _a = threading.Lock()
        _b = threading.Lock()


        def fwd():
            with _a:
                with _b:
                    pass


        def rev():
            with _b:
                with _a:
                    pass
        """
    found = findings(src, "lock-order-inversion")
    assert len(found) == 1
    assert "conflicting orders" in found[0].message


def test_interprocedural_inversion_fires():
    src = """\
        import threading


        class AB:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def _take_b(self):
                with self._b:
                    pass

            def fwd(self):
                with self._a:
                    self._take_b()

            def rev(self):
                with self._b:
                    with self._a:
                        pass
        """
    found = findings(src, "lock-order-inversion")
    assert len(found) == 1


def test_consistent_order_is_clean():
    src = """\
        import threading

        _a = threading.Lock()
        _b = threading.Lock()


        def one():
            with _a:
                with _b:
                    pass


        def two():
            with _a:
                with _b:
                    pass
        """
    assert findings(src, "lock-order-inversion") == []


# ----------------------------------------------------------------------
# blocking-under-lock
# ----------------------------------------------------------------------


def test_queue_put_under_lock_fires():
    src = """\
        import queue
        import threading


        class Pipe:
            def __init__(self):
                self._lock = threading.Lock()
                self._q = queue.Queue(maxsize=4)

            def push(self, x):
                with self._lock:
                    self._q.put(x)
        """
    found = findings(src, "blocking-under-lock")
    assert len(found) == 1
    assert "may block while holding" in found[0].message


def test_nonblocking_put_is_clean():
    src = """\
        import queue
        import threading


        class Pipe:
            def __init__(self):
                self._lock = threading.Lock()
                self._q = queue.Queue(maxsize=4)

            def push(self, x):
                with self._lock:
                    self._q.put(x, block=False)

            def drain(self):
                return self._q.get()
        """
    assert findings(src, "blocking-under-lock") == []


def test_sleep_under_lock_fires():
    src = """\
        import threading
        import time

        _lock = threading.Lock()


        def nap():
            with _lock:
                time.sleep(0.1)
        """
    found = findings(src, "blocking-under-lock")
    assert len(found) == 1


def test_callback_under_lock_fires():
    src = """\
        import threading


        class Cached:
            def __init__(self, loader):
                self._lock = threading.Lock()
                self._loader = loader
                self._value = None

            def get(self):
                with self._lock:
                    if self._value is None:
                        self._value = self._loader()
                    return self._value
        """
    found = findings(src, "blocking-under-lock")
    assert len(found) == 1
    assert "self._loader" in found[0].message


def test_interprocedural_blocking_fires():
    src = """\
        import queue
        import threading


        class Pipe:
            def __init__(self):
                self._lock = threading.Lock()
                self._q = queue.Queue()

            def pull(self):
                return self._q.get()

            def pump(self):
                with self._lock:
                    return self.pull()
        """
    found = findings(src, "blocking-under-lock")
    assert len(found) == 1
    assert "call to" in found[0].message and "pull" in found[0].message


def test_private_callee_reports_at_blocking_site():
    # A private helper only ever called with the lock held *inherits*
    # that lock, so the finding lands on the blocking op itself.
    src = """\
        import queue
        import threading


        class Pipe:
            def __init__(self):
                self._lock = threading.Lock()
                self._q = queue.Queue()

            def _pull(self):
                return self._q.get()

            def pump(self):
                with self._lock:
                    return self._pull()
        """
    found = findings(src, "blocking-under-lock")
    assert len(found) == 1
    assert "in _pull()" in found[0].message


def test_join_outside_lock_is_clean():
    src = """\
        import threading


        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self._thread = threading.Thread(target=self._run, daemon=True)

            def _run(self):
                pass

            def stop(self):
                with self._lock:
                    thread = self._thread
                thread.join()
        """
    assert findings(src, "blocking-under-lock") == []


# ----------------------------------------------------------------------
# thread-lifecycle
# ----------------------------------------------------------------------


def test_non_daemon_thread_without_join_fires():
    src = """\
        import threading


        class Runner:
            def launch(self):
                self._t = threading.Thread(target=self._run)
                self._t.start()

            def _run(self):
                pass
        """
    found = findings(src, "thread-lifecycle")
    assert any("no reachable join()" in f.message for f in found)


def test_daemon_thread_without_join_is_clean():
    src = """\
        import threading


        class Runner:
            def launch(self):
                t = threading.Thread(target=self._run, daemon=True)
                t.start()

            def _run(self):
                pass
        """
    assert findings(src, "thread-lifecycle") == []


def test_joined_thread_is_clean():
    src = """\
        import threading


        class Runner:
            def __init__(self):
                self._lock = threading.Lock()
                self._t = None

            def launch(self):
                with self._lock:
                    self._t = threading.Thread(target=self._run)
                    self._t.start()

            def _run(self):
                pass

            def stop(self):
                self._t.join()
        """
    assert findings(src, "thread-lifecycle") == []


def test_unsynchronized_double_start_fires():
    src = """\
        import threading


        class Runner:
            def launch(self):
                self._t = threading.Thread(target=self._run, daemon=True)
                self._t.start()

            def _run(self):
                pass
        """
    found = findings(src, "thread-lifecycle")
    assert any("unsynchronized start" in f.message for f in found)


def test_start_under_lock_is_clean():
    src = """\
        import threading


        class Runner:
            def __init__(self):
                self._lock = threading.Lock()

            def launch(self):
                with self._lock:
                    self._t = threading.Thread(target=self._run, daemon=True)
                    self._t.start()

            def _run(self):
                pass
        """
    assert findings(src, "thread-lifecycle") == []


def test_start_in_init_before_last_assign_fires():
    src = """\
        import threading


        class Runner:
            def __init__(self):
                self._t = threading.Thread(target=self._run, daemon=True)
                self._t.start()
                self._ready = True

            def _run(self):
                pass
        """
    found = findings(src, "thread-lifecycle")
    assert any("before the instance is fully constructed" in f.message for f in found)


def test_start_last_in_init_is_clean():
    src = """\
        import threading


        class Runner:
            def __init__(self):
                self._ready = True
                self._t = threading.Thread(target=self._run, daemon=True)
                self._t.start()

            def _run(self):
                pass
        """
    assert findings(src, "thread-lifecycle") == []


# ----------------------------------------------------------------------
# guard tables, lock-order rendering, DOT export
# ----------------------------------------------------------------------


INVERSION_PROJECT = {
    "app.locks": """\
        import threading


        class AB:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self._n = 0

            def fwd(self):
                with self._a:
                    with self._b:
                        self._n += 1

            def rev(self):
                with self._b:
                    with self._a:
                        self._n -= 1
        """,
}


def test_guard_tables_render_inferred_guards():
    conc = build_conc(INVERSION_PROJECT)
    text = render_guard_tables(conc)
    assert "app.locks.AB" in text
    assert "self._n" in text
    assert "2/2 writes" in text


def test_lock_order_render_reports_cycle():
    conc = build_conc(INVERSION_PROJECT)
    text = render_lock_order(conc)
    assert "app.locks.AB._a" in text and "app.locks.AB._b" in text
    assert "cycle" in text


def test_dot_export_is_deterministic():
    first = to_dot(build_conc(INVERSION_PROJECT).lock_order)
    second = to_dot(build_conc(dict(INVERSION_PROJECT)).lock_order)
    assert first == second
    assert first.startswith("digraph lockorder {")
    assert "app.locks.AB._a" in first


def test_cli_concurrency_verb(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(INVERSION_PROJECT["app.locks"]))
    dot = tmp_path / "lockorder.dot"
    code = qa_main(["concurrency", str(target), "--no-cache", "--dot", str(dot)])
    out = capsys.readouterr().out
    assert code == 0
    assert "AB" in out and "lock-order graph" in out
    assert dot.read_text().startswith("digraph lockorder {")


# ----------------------------------------------------------------------
# live-tree integration
# ----------------------------------------------------------------------


def test_live_tree_is_clean_under_concurrency_rules():
    """src/ carries zero concurrency findings outside the baseline.

    The guard tables must still cover the threaded serve/obs classes —
    an empty analysis would also be "clean", so assert the inference
    actually sees them.
    """
    rules = [get_rule(rule_id) for rule_id in CONCURRENCY_RULES]
    analyzer = Analyzer(rules, baseline=Baseline.load(REPO / "qa-baseline.txt"))
    report = analyzer.run([REPO / "src"])
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"concurrency findings in src/:\n{rendered}"

    index = analyzer.build_index([REPO / "src"])
    tables = render_guard_tables(ConcurrencyIndex.of(index))
    for cls in (
        "ClassificationService",
        "ModelCache",
        "MetricsRecorder",
        "MetricsRegistry",
    ):
        assert cls in tables
