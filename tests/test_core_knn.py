"""Tests for the from-scratch k-NN classifier."""

import numpy as np
import pytest

from repro.core.knn import KNeighborsClassifier, pairwise_sq_distances


def three_clusters(per=30, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    x = np.vstack([c + 0.5 * rng.normal(size=(per, 2)) for c in centers])
    y = np.repeat(np.arange(3), per)
    return x, y


class TestPairwiseDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(7, 3)), rng.normal(size=(5, 3))
        d2 = pairwise_sq_distances(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(d2, naive, atol=1e-10)

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(50, 4)) * 1e6  # large values stress the expansion
        assert (pairwise_sq_distances(a, a) >= 0).all()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_sq_distances(np.zeros((2, 3)), np.zeros((2, 4)))


class TestConstruction:
    def test_k_must_be_odd_positive(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=2)
        KNeighborsClassifier(k=3)

    def test_chunk_size_positive(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(chunk_size=0)


class TestFit:
    def test_label_alignment_checked(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier().fit(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_needs_at_least_k_samples(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=5).fit(np.zeros((3, 2)), np.zeros(3, dtype=int))

    def test_training_pool_copied(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier().fit(x, y)
        x[:] = 0.0
        assert knn.score(*three_clusters()) > 0.95

    def test_n_training_samples(self):
        x, y = three_clusters(per=10)
        assert KNeighborsClassifier().fit(x, y).n_training_samples == 30
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().n_training_samples


class TestPredict:
    def test_separable_clusters_classified(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3).fit(x, y)
        test_x, test_y = three_clusters(seed=99)
        assert knn.score(test_x, test_y) == 1.0

    def test_training_points_self_classified(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.score(x, y) == 1.0

    def test_kneighbors_sorted_by_distance(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=5).fit(x, y)
        _idx, dist = knn.kneighbors(x[:10])
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_kneighbors_nearest_is_self_for_training_point(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3).fit(x, y)
        idx, dist = knn.kneighbors(x[:5])
        assert np.allclose(dist[:, 0], 0.0)
        assert (idx[:, 0] == np.arange(5)).all()

    def test_chunking_equivalent(self):
        x, y = three_clusters(per=50)
        big = KNeighborsClassifier(k=3, chunk_size=10_000).fit(x, y)
        small = KNeighborsClassifier(k=3, chunk_size=7).fit(x, y)
        probe = three_clusters(seed=5)[0]
        assert np.array_equal(big.predict(probe), small.predict(probe))

    def test_majority_vote_k3(self):
        """Two near neighbors of class 1 outvote one nearer class-0 point."""
        x = np.array([[0.0], [1.0], [1.1]])
        y = np.array([0, 1, 1])
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.predict_one(np.array([0.4])) == 1

    def test_k1_nearest_wins(self):
        x = np.array([[0.0], [1.0], [1.1]])
        y = np.array([0, 1, 1])
        knn = KNeighborsClassifier(k=1).fit(x, y)
        assert knn.predict_one(np.array([0.4])) == 0

    def test_deterministic_tie_break_by_distance(self):
        """k=3 with three distinct labels: the closest neighbor's class wins."""
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 2])
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.predict_one(np.array([0.1])) == 0
        assert knn.predict_one(np.array([1.9])) == 2

    def test_predict_one_validates(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier().fit(x, y)
        with pytest.raises(ValueError):
            knn.predict_one(np.zeros((2, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_score_shape_mismatch(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier().fit(x, y)
        with pytest.raises(ValueError):
            knn.score(x, y[:-1])

    def test_weighted_vote_prefers_close_neighbor(self):
        """One very close neighbor outweighs two distant same-class ones."""
        x = np.array([[0.0], [5.0], [5.2]])
        y = np.array([0, 1, 1])
        plain = KNeighborsClassifier(k=3, weighted=False).fit(x, y)
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        probe = np.array([0.2])
        assert plain.predict_one(probe) == 1  # majority of 3 neighbors
        assert weighted.predict_one(probe) == 0  # distance-weighted

    def test_weighted_equals_plain_on_clean_clusters(self):
        x, y = three_clusters()
        probes, truth = three_clusters(seed=123)
        plain = KNeighborsClassifier(k=3).fit(x, y)
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        assert np.array_equal(plain.predict(probes), weighted.predict(probes))

    def test_weighted_exact_match_dominates(self):
        x = np.array([[0.0], [0.0], [1.0]])
        y = np.array([0, 0, 1])
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        assert weighted.predict_one(np.array([0.0])) == 0

    def test_non_contiguous_labels_handled(self):
        """Labels need not start at 0 or be dense."""
        x = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([1, 1, 4, 4, 4])
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.predict_one(np.array([0.05])) == 1
        assert knn.predict_one(np.array([10.05])) == 4


class TestWeightedDeterminism:
    """Regression tests for the weighted-vote tie-break cascade."""

    def test_single_exact_match_beats_near_cloud(self):
        """One zero-distance hit outvotes two merely-near neighbors.

        Under the old epsilon weighting (1 / (d + 1e-9)) two neighbors
        at 1e-10 could together outvote a true exact match; exact hits
        must vote exclusively.
        """
        x = np.array([[0.0, 0.0], [1e-10, 0.0], [1e-10, 0.0]])
        y = np.array([0, 1, 1])
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        assert weighted.predict_one(np.array([0.0, 0.0])) == 0

    def test_exact_match_majority_among_exacts(self):
        """With several exact matches, they vote with unit weight each."""
        x = np.array([[0.0], [0.0], [0.0], [5.0]])
        y = np.array([1, 1, 0, 0])
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        # Neighbors of 0.0: three exact matches (two class 1, one class 0).
        assert weighted.predict_one(np.array([0.0])) == 1

    def test_score_tie_breaks_on_summed_distance(self):
        """Equal inverse-distance scores fall back to total distance."""
        # Class 0: neighbors at ±4 → score 1/4 + 1/4 = 1/2, dist sum 8.
        # Class 1: neighbor at 2   → score 1/2,           dist sum 2.
        x = np.array([[-4.0], [4.0], [2.0]])
        y = np.array([0, 0, 1])
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        assert weighted.predict_one(np.array([0.0])) == 1

    def test_full_tie_breaks_on_smaller_class_code(self):
        """Identical score and distance sum resolve to the lower code."""
        x = np.array([[-1.0], [1.0], [100.0]])
        y = np.array([2, 1, 3])
        weighted = KNeighborsClassifier(k=3, weighted=True).fit(x, y)
        # Scores from probe 0.0: class 1 = 1 (one neighbor at 1), class 2
        # = 1 (one neighbor at 1), class 3 = 1/100 — classes 1 and 2 tie
        # on score AND summed distance, so the smaller code wins.
        assert weighted.predict_one(np.array([0.0])) == 1

    def test_weighted_prediction_is_deterministic_under_permutation(self):
        """Training-row order never changes weighted predictions."""
        rng = np.random.default_rng(7)
        x, y = three_clusters(per=10, seed=3)
        probes = rng.normal(scale=6.0, size=(40, 2))
        base = KNeighborsClassifier(k=3, weighted=True).fit(x, y).predict(probes)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(len(y))
            shuffled = (
                KNeighborsClassifier(k=3, weighted=True)
                .fit(x[perm], y[perm])
                .predict(probes)
            )
            assert np.array_equal(base, shuffled)


class TestCancellationClamp:
    """Negative squared distances from catastrophic cancellation clamp to 0."""

    def test_far_from_origin_duplicates_clamp_to_zero(self):
        # Points identical up to float rounding but far from the origin:
        # the (−2ab + aa + bb) expansion cancels catastrophically and,
        # unclamped, goes slightly negative — poisoning sqrt with NaN.
        base = np.full((1, 4), 1e8)
        jitter = base * (1.0 + np.array([0.0, 2e-16, -2e-16, 4e-16]))[:, None]
        d2 = pairwise_sq_distances(jitter, jitter)
        assert (d2 >= 0.0).all()
        assert not np.isnan(np.sqrt(d2)).any()

    def test_clamp_in_both_dtypes(self):
        # Near-duplicate rows at large magnitude: the unclamped
        # expansion dips negative in either precision (float32 needs a
        # proportionally larger jitter — its epsilon is ~1e-7).
        for dtype, scale, jitter in (
            (np.float64, 1e8, 2e-8),
            (np.float32, 1e5, 1e-2),
        ):
            a = (np.full((8, 3), scale) + np.arange(8)[:, None] * jitter).astype(dtype)
            d2 = pairwise_sq_distances(a, a)
            assert d2.dtype == np.dtype(dtype)
            assert (d2 >= 0.0).all()
            assert not np.isnan(np.sqrt(d2)).any()

    def test_exact_duplicate_rows_have_zero_distance(self):
        a = np.full((3, 2), 7e7)
        d2 = pairwise_sq_distances(a, a)
        assert (d2 == 0.0).all()


class TestDtypeRouting:
    """The fitted pool's dtype governs every downstream buffer."""

    def test_fit_preserves_float32(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3).fit(x.astype(np.float32), y)
        assert knn.dtype == np.dtype(np.float32)
        assert knn.training_points.dtype == np.dtype(np.float32)
        assert knn.training_sq_norms.dtype == np.dtype(np.float32)

    def test_fit_preserves_float64(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.dtype == np.dtype(np.float64)
        assert knn.training_sq_norms.dtype == np.dtype(np.float64)

    def test_integer_training_data_promotes_to_float64(self):
        x = np.array([[0, 0], [1, 0], [0, 1], [5, 5], [6, 5]], dtype=np.int64)
        y = np.array([0, 0, 0, 1, 1])
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert knn.dtype == np.dtype(np.float64)

    def test_kneighbors_distances_follow_model_dtype(self):
        x, y = three_clusters()
        for dtype in (np.float32, np.float64):
            knn = KNeighborsClassifier(k=3).fit(x.astype(dtype), y)
            _, distances = knn.kneighbors(x[:5])  # float64 queries downcast
            assert distances.dtype == np.dtype(dtype)

    def test_float32_model_predicts_like_float64_on_separated_data(self):
        x, y = three_clusters()
        test_x, _ = three_clusters(seed=99)
        f64 = KNeighborsClassifier(k=3).fit(x, y).predict(test_x)
        f32 = KNeighborsClassifier(k=3).fit(x.astype(np.float32), y).predict(test_x)
        assert np.array_equal(f64, f32)

    def test_weighted_vote_buffers_follow_model_dtype(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3, weighted=True).fit(x.astype(np.float32), y)
        pred = knn.predict(x[:10])
        assert pred.dtype == np.dtype(np.int64)
        assert np.array_equal(pred, y[:10])

    def test_unfitted_dtype_and_norms_raise(self):
        knn = KNeighborsClassifier()
        with pytest.raises(RuntimeError):
            knn.dtype
        with pytest.raises(RuntimeError):
            knn.training_sq_norms


class TestPrecomputedNorms:
    """The per-fit ‖b‖² cache must be value-identical to recomputation."""

    def test_cached_norms_match_einsum(self):
        x, y = three_clusters()
        knn = KNeighborsClassifier(k=3).fit(x, y)
        assert np.array_equal(
            knn.training_sq_norms, np.einsum("ij,ij->i", x, x)
        )

    def test_precomputed_norms_bit_identical_distances(self):
        rng = np.random.default_rng(11)
        a, b = rng.normal(size=(20, 5)), rng.normal(size=(30, 5))
        norms = np.einsum("ij,ij->i", b, b)
        assert np.array_equal(
            pairwise_sq_distances(a, b),
            pairwise_sq_distances(a, b, b_sq_norms=norms),
        )

    def test_norm_shape_validated(self):
        a, b = np.zeros((2, 3)), np.zeros((4, 3))
        with pytest.raises(ValueError):
            pairwise_sq_distances(a, b, b_sq_norms=np.zeros(3))
