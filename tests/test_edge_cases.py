"""Cross-cutting edge cases not owned by any single module's test file."""

import numpy as np
import pytest

from repro.core.labels import SnapshotClass
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries
from repro.monitoring.gmond import Gmond
from repro.monitoring.multicast import MulticastChannel
from repro.sim.engine import SimulationEngine
from repro.vm.cluster import Cluster, single_vm_cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand
from repro.workloads.base import WorkloadInstance, constant_workload


class TestSubSecondTicks:
    def test_engine_with_half_second_dt(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0, dt=0.5)
        w = constant_workload("j", ResourceDemand(cpu_user=0.9, mem_mb=10.0), 20.0)
        key = engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        engine.run()
        assert engine.instance(key).done
        assert engine.completions[0].elapsed == pytest.approx(20.0, abs=1.0)

    def test_gmond_heartbeat_with_dt_half(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0, dt=0.5)
        channel = MulticastChannel()
        gmond = Gmond(cluster.vm("VM1"), channel, rng=np.random.default_rng(0), heartbeat=5.0)
        engine.add_tick_listener(gmond.on_tick)
        engine.run(until=25.0)
        assert gmond.announcement_count == 5


class TestTinySeries:
    def test_single_snapshot_classifies(self, classifier):
        matrix = np.zeros((NUM_METRICS, 1))
        series = SnapshotSeries(node="n", timestamps=np.array([5.0]), matrix=matrix)
        result = classifier.classify_series(series)
        assert result.num_samples == 1
        assert result.application_class in SnapshotClass

    def test_two_snapshot_composition(self, classifier):
        from repro.metrics.catalog import metric_index

        matrix = np.zeros((NUM_METRICS, 2))
        matrix[metric_index("cpu_user")] = [95.0, 94.0]
        series = SnapshotSeries(node="n", timestamps=np.array([5.0, 10.0]), matrix=matrix)
        result = classifier.classify_series(series)
        assert result.composition.cpu == 1.0


class TestExtremeCapacities:
    def test_tiny_host_still_progresses(self):
        c = Cluster()
        c.add_host("h", ResourceCapacity(cpu_cores=0.5, cpu_mhz=900.0, disk_blocks_per_s=10.0))
        c.create_vm("h", "VM1", vcpus=1)
        engine = SimulationEngine(c, seed=0)
        w = constant_workload("j", ResourceDemand(cpu_user=1.0, mem_mb=10.0), 10.0)
        key = engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        engine.run(until=200.0)
        assert engine.instance(key).done

    def test_zero_mem_workload(self):
        engine = SimulationEngine(single_vm_cluster(), seed=0)
        w = constant_workload("j", ResourceDemand(cpu_user=0.5, mem_mb=0.0), 5.0)
        key = engine.add_instance(WorkloadInstance(w, vm_name="VM1"))
        engine.run()
        assert engine.instance(key).done


class TestManyInstances:
    def test_twenty_jobs_on_one_vm(self):
        engine = SimulationEngine(single_vm_cluster(), seed=0)
        w = constant_workload("j", ResourceDemand(cpu_user=0.3, mem_mb=4.0), 10.0)
        keys = [engine.add_instance(WorkloadInstance(w, vm_name="VM1")) for _ in range(20)]
        engine.run(until=2000.0)
        assert all(engine.instance(k).done for k in keys)
        # Heavy interference: each job far slower than solo.
        assert engine.completions[0].elapsed > 30.0


class TestIdleOnlyRun:
    def test_pure_idle_classifies_idle(self, classifier):
        from repro.sim.execution import profiled_run
        from repro.workloads.idle import idle

        run = profiled_run(idle(120.0), seed=66)
        result = classifier.classify_series(run.series)
        assert result.application_class is SnapshotClass.IDLE
        assert result.composition.idle > 0.9
        assert result.category == "Idle"


class TestMonitoringEdge:
    def test_gmond_survives_counter_free_vm(self):
        """A VM that never runs anything still announces valid vectors."""
        cluster = single_vm_cluster()
        channel = MulticastChannel()
        gmond = Gmond(cluster.vm("VM1"), channel, rng=np.random.default_rng(0))
        for t in (5.0, 10.0, 15.0):
            values = gmond.collect(t)
            assert np.all(np.isfinite(values))

    def test_profiler_empty_window(self):
        from repro.monitoring.profiler import PerformanceProfiler

        profiler = PerformanceProfiler(MulticastChannel())
        profiler.start("VM1", now=0.0)
        profiler.stop(now=1.0)
        assert profiler.data_pool() == []

    def test_filter_on_empty_pool(self):
        from repro.monitoring.filter import PerformanceFilter

        with pytest.raises(ValueError):
            PerformanceFilter().extract([], "VM1")


class TestSchedulerEdge:
    def test_single_machine_placement(self):
        from repro.db.store import ApplicationDB
        from repro.scheduler.class_aware import ClassAwareScheduler

        sched = ClassAwareScheduler(ApplicationDB())
        placement = sched.schedule_jobs(["a", "b", "c"], machines=1)
        assert placement.machines == (("a", "b", "c"),)

    def test_more_machines_than_jobs(self):
        from repro.db.store import ApplicationDB
        from repro.scheduler.class_aware import ClassAwareScheduler

        sched = ClassAwareScheduler(ApplicationDB())
        placement = sched.schedule_jobs(["a"], machines=3)
        sizes = sorted(len(m) for m in placement.machines)
        assert sizes == [0, 0, 1]
