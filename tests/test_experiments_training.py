"""Tests for the training experiment driver (uses the session classifier)."""

import pytest

from repro.core.labels import SnapshotClass
from repro.experiments.training import profile_training_entry
from repro.workloads.catalog import entry


def test_training_runs_cover_five_classes(training_outcome):
    assert set(training_outcome.labels.values()) == {
        SnapshotClass.IDLE,
        SnapshotClass.IO,
        SnapshotClass.CPU,
        SnapshotClass.NET,
        SnapshotClass.MEM,
    }


def test_training_pool_reasonably_balanced(training_outcome):
    """No training class should dominate the pool (keeps PCA honest)."""
    sizes = {key: len(run.series) for key, run in training_outcome.runs.items()}
    assert min(sizes.values()) >= 40
    assert max(sizes.values()) / min(sizes.values()) < 3.0


def test_classifier_extracts_two_components(training_outcome):
    pca = training_outcome.classifier.pca
    assert pca.n_components_ == 2
    # Two components carry most of the expert-metric variance.
    assert pca.explained_variance_ratio_.sum() > 0.6


def test_training_self_consistency(training_outcome):
    """Re-classifying a training run recovers its own class dominantly."""
    clf = training_outcome.classifier
    for key, run in training_outcome.runs.items():
        expected = training_outcome.labels[key]
        result = clf.classify_series(run.series)
        assert result.composition.fraction(expected) > 0.5, key


def test_profile_training_entry_runs():
    run = profile_training_entry(entry("train-idle"), seed=1)
    assert run.num_samples == pytest.approx(60, abs=2)
    assert run.workload_name == "idle"


def test_total_training_samples(training_outcome):
    total = training_outcome.total_training_samples()
    assert total == sum(len(r.series) for r in training_outcome.runs.values())
    assert total == training_outcome.classifier.training_scores_.shape[0]
