"""Tests for the conservative-scheduling baseline and its blind spot."""

import pytest

from repro.monitoring.stack import MonitoringStack
from repro.scheduler.conservative import (
    ConservativeLoadPredictor,
    ConservativeScheduler,
)
from repro.sim.engine import SimulationEngine
from repro.vm.cluster import Cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand
from repro.workloads.base import WorkloadInstance, constant_workload


def running_cluster(seed=0, horizon=120.0):
    """Two VMs: VM-CPU runs a CPU hog, VM-IO a disk hog with idle CPU."""
    c = Cluster()
    c.add_host("h1", ResourceCapacity())
    c.add_host("h2", ResourceCapacity())
    c.create_vm("h1", "VM-CPU")
    c.create_vm("h2", "VM-IO")
    engine = SimulationEngine(c, seed=seed)
    stack = MonitoringStack(engine, seed=seed + 1)
    engine.add_instance(
        WorkloadInstance(
            constant_workload("cpu-hog", ResourceDemand(cpu_user=0.95, cpu_system=0.03, mem_mb=20.0), 1e6),
            vm_name="VM-CPU",
            loop=True,
        )
    )
    engine.add_instance(
        WorkloadInstance(
            constant_workload(
                "io-hog",
                ResourceDemand(cpu_user=0.05, cpu_system=0.1, io_bi=700.0, io_bo=700.0, mem_mb=20.0),
                1e6,
            ),
            vm_name="VM-IO",
            loop=True,
        )
    )
    engine.run(until=horizon)
    return engine, stack


class TestPredictor:
    def test_forecast_reflects_cpu_load(self):
        _, stack = running_cluster()
        predictor = ConservativeLoadPredictor(stack.aggregator, window=12)
        busy = predictor.forecast("VM-CPU")
        calm = predictor.forecast("VM-IO")
        assert busy.mean > calm.mean
        assert busy.conservative_load >= busy.mean
        assert busy.samples == 12

    def test_conservative_headroom_scales_with_confidence(self):
        _, stack = running_cluster()
        low = ConservativeLoadPredictor(stack.aggregator, confidence=0.0).forecast("VM-CPU")
        high = ConservativeLoadPredictor(stack.aggregator, confidence=3.0).forecast("VM-CPU")
        assert high.conservative_load >= low.conservative_load
        assert low.conservative_load == pytest.approx(low.mean)

    def test_unknown_node(self):
        _, stack = running_cluster()
        predictor = ConservativeLoadPredictor(stack.aggregator)
        with pytest.raises(KeyError):
            predictor.forecast("ghost")

    def test_validation(self):
        _, stack = running_cluster()
        with pytest.raises(ValueError):
            ConservativeLoadPredictor(stack.aggregator, window=0)
        with pytest.raises(ValueError):
            ConservativeLoadPredictor(stack.aggregator, confidence=-1.0)
        with pytest.raises(KeyError):
            ConservativeLoadPredictor(stack.aggregator, metric="bogus")


class TestScheduler:
    def test_picks_low_cpu_node(self):
        _, stack = running_cluster()
        scheduler = ConservativeScheduler(ConservativeLoadPredictor(stack.aggregator))
        assert scheduler.pick_node(["VM-CPU", "VM-IO"]) == "VM-IO"

    def test_rank_order(self):
        _, stack = running_cluster()
        scheduler = ConservativeScheduler(ConservativeLoadPredictor(stack.aggregator))
        ranked = scheduler.rank_nodes(["VM-CPU", "VM-IO"])
        assert [f.node for f in ranked] == ["VM-IO", "VM-CPU"]

    def test_empty_candidates(self):
        _, stack = running_cluster()
        scheduler = ConservativeScheduler(ConservativeLoadPredictor(stack.aggregator))
        with pytest.raises(ValueError):
            scheduler.pick_node([])


class TestBlindSpot:
    def test_cpu_only_prediction_misplaces_io_job(self, classifier):
        """The paper's argument for multi-dimensional awareness: the
        conservative (CPU-only) scheduler sends an I/O job to the host
        whose CPU is idle — but whose *disk* is saturated — while the
        class-aware view avoids it; measured completion times agree."""
        def io_job():
            return constant_workload(
                "new-io",
                ResourceDemand(cpu_user=0.08, cpu_system=0.12, io_bi=500.0, io_bo=500.0, mem_mb=20.0),
                90.0,
            )

        # Conservative choice: VM-IO's host (low CPU, saturated disk).
        engine, stack = running_cluster(seed=7)
        scheduler = ConservativeScheduler(ConservativeLoadPredictor(stack.aggregator))
        choice = scheduler.pick_node(["VM-CPU", "VM-IO"])
        assert choice == "VM-IO"
        key = engine.add_instance(WorkloadInstance(io_job(), vm_name=choice, start_time=engine.now))
        engine.run(until=engine.now + 600.0)
        conservative_elapsed = engine.instance(key).elapsed()
        assert conservative_elapsed is not None

        # Class-aware choice: co-locate the IO job with the CPU hog.
        engine2, _ = running_cluster(seed=7)
        key2 = engine2.add_instance(
            WorkloadInstance(io_job(), vm_name="VM-CPU", start_time=engine2.now)
        )
        engine2.run(until=engine2.now + 600.0)
        class_aware_elapsed = engine2.instance(key2).elapsed()
        assert class_aware_elapsed is not None

        assert class_aware_elapsed < conservative_elapsed
