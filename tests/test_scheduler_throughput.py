"""Tests for schedule throughput evaluation (fast, reduced horizons)."""

import pytest

from repro.scheduler.schedules import schedule_by_number, spn_schedule
from repro.scheduler.throughput import (
    PerAppSummary,
    ScheduleThroughput,
    average_system_throughput,
    default_job_factories,
    evaluate_schedule,
    improvement_percent,
    per_app_summaries,
)
from repro.vm.resources import ResourceDemand
from repro.workloads.base import constant_workload


def fast_factories():
    """Miniature S/P/N jobs so schedule evaluation runs in milliseconds."""
    return {
        "S": lambda: constant_workload("S", ResourceDemand(cpu_user=0.9, mem_mb=20.0), 60.0),
        "P": lambda: constant_workload(
            "P", ResourceDemand(cpu_user=0.15, io_bi=500.0, io_bo=500.0, mem_mb=20.0), 60.0
        ),
        "N": lambda: constant_workload(
            "N",
            ResourceDemand(cpu_system=0.25, net_out=50_000_000.0, mem_mb=20.0),
            60.0,
            remote_vm="VM4",
        ),
    }


@pytest.fixture(scope="module")
def evaluated():
    spn = evaluate_schedule(spn_schedule(), factories=fast_factories(), horizon=240.0, seed=1)
    worst = evaluate_schedule(
        schedule_by_number(1), factories=fast_factories(), horizon=240.0, seed=1
    )
    return spn, worst


def test_default_factories_paper_apps():
    f = default_job_factories()
    assert f["S"]().name == "specseis96-small"
    assert f["P"]().name == "postmark"
    assert f["N"]().name == "netpipe"


def test_missing_factory_rejected():
    with pytest.raises(ValueError, match="missing job codes"):
        evaluate_schedule(spn_schedule(), factories={"S": fast_factories()["S"]})


def test_evaluate_schedule_shape(evaluated):
    spn, _ = evaluated
    assert set(spn.per_app_jobs_per_day) == {"S", "P", "N"}
    assert spn.system_jobs_per_day == pytest.approx(
        sum(spn.per_app_jobs_per_day.values())
    )
    assert spn.system_jobs_per_day > 0


def test_spn_beats_segregated_schedule(evaluated):
    """The paper's central claim, on miniature jobs."""
    spn, worst = evaluated
    assert spn.system_jobs_per_day > worst.system_jobs_per_day


def test_average_weighting_modes(evaluated):
    spn, worst = evaluated
    results = [worst, spn]
    uniform = average_system_throughput(results, weighting="uniform")
    assert uniform == pytest.approx(
        (spn.system_jobs_per_day + worst.system_jobs_per_day) / 2
    )
    weighted = average_system_throughput(results, weighting="multiplicity")
    # Schedule 1 has multiplicity 6, SPN 1 → weighted leans toward worst.
    assert weighted < uniform


def test_average_validation(evaluated):
    with pytest.raises(ValueError):
        average_system_throughput([])
    with pytest.raises(ValueError):
        average_system_throughput(list(evaluated), weighting="bogus")


def test_improvement_percent(evaluated):
    spn, worst = evaluated
    imp = improvement_percent(spn, [worst, spn], weighting="uniform")
    assert imp > 0


def test_per_app_summaries_requires_spn_last(evaluated):
    spn, worst = evaluated
    with pytest.raises(ValueError):
        per_app_summaries([spn, worst])


def test_per_app_summaries_fields(evaluated):
    spn, worst = evaluated
    summaries = per_app_summaries([worst, spn])
    assert [s.code for s in summaries] == ["S", "P", "N"]
    for s in summaries:
        assert s.minimum <= s.average <= s.maximum
        assert s.spn in (s.minimum, s.maximum) or s.minimum < s.spn < s.maximum


def test_per_app_summary_gain():
    s = PerAppSummary(code="S", minimum=1.0, maximum=3.0, average=2.0, spn=3.0, max_schedule_label="x")
    assert s.spn_gain_over_average_percent == pytest.approx(50.0)
