"""Tests for the individual benchmark application models."""

import pytest

from repro.workloads.cpu import SPECSEIS_DURATIONS, ch3d, simplescalar, specseis96
from repro.workloads.idle import idle
from repro.workloads.interactive import vmd, xspim
from repro.workloads.io import bonnie, pagebench, postmark, stream
from repro.workloads.network import (
    DEFAULT_SERVER_VM,
    autobench,
    ettcp,
    netpipe,
    postmark_nfs,
    sftp,
)


class TestCPUModels:
    def test_specseis_sizes(self):
        assert specseis96("small").solo_duration == pytest.approx(SPECSEIS_DURATIONS["small"])
        assert specseis96("medium").solo_duration == pytest.approx(SPECSEIS_DURATIONS["medium"])

    def test_specseis_unknown_size(self):
        with pytest.raises(ValueError):
            specseis96("huge")

    def test_specseis_is_multi_stage(self):
        """Alternating compute/stress stages (the multi-stage application
        motivation of paper §1)."""
        w = specseis96("small")
        names = {p.name.split("-")[-1] for p in w.phases}
        assert {"compute", "stress"} <= names

    def test_specseis_stress_working_set_by_size(self):
        small = specseis96("small").max_working_set_mb()
        medium = specseis96("medium").max_working_set_mb()
        assert medium > small > 32.0  # medium overflows a 32 MB VM

    def test_specseis_dominantly_cpu(self):
        w = specseis96("small")
        cpu_work = sum(p.work for p in w.phases if p.demand.cpu > 0.8)
        assert cpu_work / w.solo_duration > 0.9

    def test_simplescalar_pure_cpu(self):
        w = simplescalar()
        assert w.solo_duration == 310.0
        for p in w.phases:
            assert p.demand.cpu > 0.9
            assert p.demand.net == 0.0

    def test_ch3d_default_matches_table4(self):
        assert ch3d().solo_duration == pytest.approx(488.0)


class TestIOModels:
    def test_postmark_default_matches_table4(self):
        assert postmark().solo_duration == pytest.approx(264.0)

    def test_postmark_io_dominant(self):
        w = postmark()
        io_work = sum(p.work for p in w.phases if p.demand.io_bi + p.demand.io_bo > 200)
        assert io_work / w.solo_duration > 0.8

    def test_postmark_has_cache_pressure_episode(self):
        """Source of the paper's 3.85% paging snapshots."""
        assert any(p.demand.mem_mb > 256.0 for p in postmark().phases)

    def test_pagebench_overflows_vm_memory(self):
        w = pagebench()
        assert w.max_working_set_mb() > 256.0

    def test_pagebench_rejects_bad_array(self):
        with pytest.raises(ValueError):
            pagebench(array_mb=0.0)

    def test_bonnie_has_distinct_stages(self):
        names = {p.name for p in bonnie().phases}
        assert {"putc", "block-write", "rewrite", "block-read", "seeks"} <= names

    def test_stream_four_kernels(self):
        assert [p.name for p in stream().phases] == ["copy", "scale", "add", "triad"]

    def test_stream_pages_on_256mb_vm(self):
        assert stream().max_working_set_mb() > 232.0


class TestNetworkModels:
    @pytest.mark.parametrize("factory", [ettcp, netpipe, autobench, sftp, postmark_nfs])
    def test_network_phases_have_server(self, factory):
        w = factory()
        net_phases = [p for p in w.phases if p.demand.net > 0]
        assert net_phases, f"{w.name} has no network phases"
        for p in net_phases:
            assert p.remote_vm == DEFAULT_SERVER_VM

    def test_custom_server_vm(self):
        w = ettcp(server_vm="SRV")
        assert all(p.remote_vm == "SRV" for p in w.phases if p.demand.net > 0)

    def test_ettcp_sweeps_rates(self):
        """The NET training cluster must span moderate to saturating rates."""
        rates = [p.demand.net_out for p in ettcp().phases]
        assert min(rates) < 10_000_000.0
        assert max(rates) > 40_000_000.0

    def test_postmark_nfs_has_no_local_io(self):
        """The NFS variant turns file operations into network traffic."""
        w = postmark_nfs()
        for p in w.phases:
            assert p.demand.io_bi == 0.0
            assert p.demand.io_bo == 0.0
            assert p.demand.net > 0.0

    def test_sftp_mixes_io_and_net(self):
        w = sftp()
        assert any(p.demand.io_bi > 0 for p in w.phases)
        assert any(p.demand.net_out > 1_000_000 for p in w.phases)


class TestInteractiveAndIdle:
    def test_vmd_mixes_idle_io_net(self):
        w = vmd()
        idle_work = sum(p.work for p in w.phases if p.demand.is_idle())
        io_work = sum(p.work for p in w.phases if p.demand.io_bi + p.demand.io_bo > 100)
        net_work = sum(p.work for p in w.phases if p.demand.net > 1_000_000)
        total = w.solo_duration
        # Paper Table 3: ~37% idle, ~41% IO, ~22% NET.
        assert idle_work / total == pytest.approx(0.37, abs=0.03)
        assert io_work / total == pytest.approx(0.41, abs=0.03)
        assert net_work / total == pytest.approx(0.22, abs=0.03)

    def test_xspim_mixes_idle_io(self):
        w = xspim()
        idle_work = sum(p.work for p in w.phases if p.demand.is_idle())
        assert idle_work / w.solo_duration == pytest.approx(0.22, abs=0.02)

    def test_idle_demands_nothing(self):
        w = idle(duration=100.0)
        assert w.solo_duration == 100.0
        assert all(p.demand.is_idle() for p in w.phases)

    def test_idle_rejects_non_positive(self):
        with pytest.raises(ValueError):
            idle(duration=0.0)


def test_all_models_have_expected_class():
    for factory in (specseis96, simplescalar, ch3d, postmark, pagebench, bonnie, stream,
                    ettcp, netpipe, autobench, sftp, postmark_nfs, vmd, xspim, idle):
        w = factory()
        assert w.expected_class in {"CPU", "IO", "MEM", "NET", "IDLE", "MIXED"}
        assert w.description
