"""Tests for CSV import/export of snapshot series."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS, metric_index
from repro.metrics.csv_io import series_from_csv, series_to_csv
from repro.metrics.series import SnapshotSeries


def make_series(m=5):
    rng = np.random.default_rng(3)
    return SnapshotSeries(
        node="VM1",
        timestamps=np.arange(1, m + 1) * 5.0,
        matrix=np.round(rng.uniform(0, 100, size=(NUM_METRICS, m)), 4),
    )


def test_round_trip_all_metrics(tmp_path):
    series = make_series()
    path = series_to_csv(series, tmp_path / "trace.csv")
    back = series_from_csv(path, node="VM1")
    assert back.node == "VM1"
    assert np.allclose(back.timestamps, series.timestamps)
    assert np.allclose(back.matrix, series.matrix, atol=1e-5)


def test_partial_metrics_default_zero(tmp_path):
    path = tmp_path / "partial.csv"
    path.write_text("timestamp,cpu_user,io_bi\n5.0,80.5,120\n10.0,81.0,130\n")
    series = series_from_csv(path)
    assert len(series) == 2
    assert series.metric("cpu_user").tolist() == [80.5, 81.0]
    assert series.metric("io_bo").tolist() == [0.0, 0.0]


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "blank.csv"
    path.write_text("timestamp,cpu_user\n5.0,1\n\n10.0,2\n")
    assert len(series_from_csv(path)) == 2


def test_header_validation(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time,cpu_user\n5.0,1\n")
    with pytest.raises(ValueError, match="timestamp"):
        series_from_csv(path)
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        series_from_csv(path)
    path.write_text("timestamp\n5.0\n")
    with pytest.raises(ValueError, match="no metric columns"):
        series_from_csv(path)


def test_unknown_metric_rejected(tmp_path):
    path = tmp_path / "unk.csv"
    path.write_text("timestamp,gpu_load\n5.0,1\n")
    with pytest.raises(KeyError):
        series_from_csv(path)


def test_cell_count_mismatch(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("timestamp,cpu_user\n5.0,1,9\n")
    with pytest.raises(ValueError, match="cells"):
        series_from_csv(path)


def test_non_numeric_cell(tmp_path):
    path = tmp_path / "nan.csv"
    path.write_text("timestamp,cpu_user\n5.0,lots\n")
    with pytest.raises(ValueError, match="nan.csv:2"):
        series_from_csv(path)


def test_no_rows(tmp_path):
    path = tmp_path / "norows.csv"
    path.write_text("timestamp,cpu_user\n")
    with pytest.raises(ValueError, match="no data rows"):
        series_from_csv(path)


def test_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        series_from_csv(tmp_path / "nope.csv")


def test_imported_trace_classifies(classifier, tmp_path):
    """Full real-trace path: record → CSV → import → classify."""
    from repro.sim.execution import profiled_run
    from tests.conftest import short_io_workload

    run = profiled_run(short_io_workload(80.0), seed=41)
    path = series_to_csv(run.series, tmp_path / "real_trace.csv")
    imported = series_from_csv(path, node="VM1")
    result = classifier.classify_series(imported)
    assert result.application_class.name == "IO"
