"""Tests for the QA tooling around the engine: autofix, SARIF output,
the incremental result cache, baseline sync, and the CLI subcommands.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.qa.baseline import Baseline
from repro.qa.cache import ResultCache, rules_signature
from repro.qa.cli import main as qa_main
from repro.qa.engine import Analyzer, Report, collect_files
from repro.qa.findings import Finding, Severity
from repro.qa.fix import fix_source
from repro.qa.registry import all_rules
from repro.qa.sarif import to_sarif


def dedent(src: str) -> str:
    return textwrap.dedent(src)


# ----------------------------------------------------------------------
# autofix
# ----------------------------------------------------------------------


def test_fix_inserts_future_import_after_docstring():
    src = dedent(
        """\
        \"\"\"Module doc.\"\"\"

        def f(x: int | None) -> int:
            return x or 0
        """
    )
    result = fix_source(src)
    lines = result.fixed.splitlines()
    assert lines[0] == '"""Module doc."""'
    assert lines[1] == ""
    assert lines[2] == "from __future__ import annotations"
    assert result.counts == {"future-annotations": 1}


def test_fix_inserts_future_import_at_top_without_docstring():
    src = "def f(x: int | None) -> int:\n    return x or 0\n"
    result = fix_source(src)
    assert result.fixed.splitlines()[0] == "from __future__ import annotations"


def test_fix_mutable_default_rewrites_and_guards():
    src = dedent(
        """\
        def f(x, y=[]):
            \"\"\"Doc.\"\"\"
            y.append(x)
            return y
        """
    )
    result = fix_source(src)
    assert result.fixed == dedent(
        """\
        def f(x, y=None):
            \"\"\"Doc.\"\"\"
            if y is None:
                y = []
            y.append(x)
            return y
        """
    )


def test_fix_mutable_default_without_docstring_guards_first():
    src = "def f(y={}):\n    return y\n"
    result = fix_source(src)
    assert result.fixed == ("def f(y=None):\n    if y is None:\n        y = {}\n    return y\n")


def test_fix_mutable_default_skips_lambdas_and_multiline_defaults():
    src = dedent(
        """\
        g = lambda x=[]: x

        def f(y=[
            1,
        ]):
            return y
        """
    )
    result = fix_source(src)
    assert not result.changed


def test_fix_bare_except():
    src = "try:\n    work()\nexcept:\n    pass\n"
    result = fix_source(src)
    assert "except Exception:" in result.fixed
    assert result.counts == {"bare-except": 1}


def test_fix_is_idempotent():
    src = dedent(
        """\
        def f(x: int | None, y=[]):
            try:
                return y
            except:
                pass
        """
    )
    once = fix_source(src).fixed
    twice = fix_source(once)
    assert not twice.changed
    assert twice.fixed == once


def test_fix_output_is_clean_for_fixed_rules():
    src = dedent(
        """\
        def f(x: int | None, y=[], z={}):
            try:
                return x, y, z
            except:
                pass
        """
    )
    fixed = fix_source(src).fixed
    found = Analyzer().run_source(fixed, name="repro.workloads.mod")
    fixable = {"future-annotations", "mutable-default", "bare-except"}
    assert [f for f in found if f.rule_id in fixable] == []


def test_fix_leaves_clean_source_untouched():
    src = "from __future__ import annotations\n\n\ndef f(x: int | None) -> int:\n    return 0\n"
    result = fix_source(src)
    assert not result.changed
    assert result.fixed == src


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------


def _finding(rule="float-eq", severity=Severity.ERROR, line=3, col=4):
    return Finding(
        rule_id=rule,
        severity=severity,
        path="src/repro/core/x.py",
        line=line,
        col=col,
        message="boom",
        source_line="x == 0.15",
    )


def test_sarif_document_shape():
    report = Report(findings=[_finding()], num_files=1)
    rules = list(all_rules())
    doc = to_sarif(report, rules)
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-qa"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {r.id for r in rules}
    assert len(run["results"]) == 1


def test_sarif_result_location_and_fingerprint():
    finding = _finding()
    doc = to_sarif(Report(findings=[finding]), list(all_rules()))
    result = doc["runs"][0]["results"][0]
    assert result["ruleId"] == "float-eq"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/core/x.py"
    assert loc["region"] == {"startLine": 3, "startColumn": 5}  # 1-based column
    assert result["partialFingerprints"]["reproQa/v1"] == finding.fingerprint()


def test_sarif_synthesizes_descriptor_for_unregistered_rule():
    report = Report(findings=[_finding(rule="parse-error")])
    doc = to_sarif(report, list(all_rules()))
    ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert "parse-error" in ids


def test_sarif_one_result_per_finding():
    report = Report(findings=[_finding(line=n) for n in range(1, 6)])
    doc = to_sarif(report, list(all_rules()))
    assert len(doc["runs"][0]["results"]) == 5


def test_sarif_is_json_serializable():
    doc = to_sarif(Report(findings=[_finding()]), list(all_rules()))
    assert json.loads(json.dumps(doc)) == doc


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        dedent(
            """\
            \"\"\"Doc.\"\"\"

            __all__ = ["api"]


            def api():
                \"\"\"Doc.\"\"\"
                return 1
            """
        )
    )
    return tmp_path


def _run(tree, cache):
    analyzer = Analyzer(list(all_rules()), baseline=Baseline(), cache=cache)
    return analyzer.run([tree])


def test_cache_warm_run_parses_nothing(tree, tmp_path):
    sig = rules_signature(list(all_rules()))
    cache_path = tmp_path / "cache.json"
    cold = _run(tree, ResultCache(cache_path, sig))
    assert cold.parsed_files == cold.num_files > 0
    warm = _run(tree, ResultCache(cache_path, sig))
    assert warm.cached_files == warm.num_files
    assert warm.parsed_files == 0
    assert warm.findings == cold.findings


def test_cache_invalidated_by_edit(tree, tmp_path):
    sig = rules_signature(list(all_rules()))
    cache_path = tmp_path / "cache.json"
    _run(tree, ResultCache(cache_path, sig))
    mod = tree / "repro" / "core" / "mod.py"
    mod.write_text(mod.read_text() + "\n\nBAD = value == 0.15\n")
    warm = _run(tree, ResultCache(cache_path, sig))
    assert warm.parsed_files == 1
    assert [f.rule_id for f in warm.findings] == ["float-eq"]


def test_cache_invalidated_by_rules_signature(tree, tmp_path):
    cache_path = tmp_path / "cache.json"
    _run(tree, ResultCache(cache_path, rules_signature(list(all_rules()))))
    other = _run(tree, ResultCache(cache_path, "deadbeefdeadbeef"))
    assert other.parsed_files == other.num_files


def test_cache_tolerates_corrupt_file(tree, tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    report = _run(tree, ResultCache(cache_path, rules_signature(list(all_rules()))))
    assert report.parsed_files == report.num_files


def test_cache_prunes_deleted_files(tree, tmp_path):
    sig = rules_signature(list(all_rules()))
    cache_path = tmp_path / "cache.json"
    extra = tree / "repro" / "core" / "extra.py"
    extra.write_text('"""Doc."""\n')
    _run(tree, ResultCache(cache_path, sig))
    extra.unlink()
    _run(tree, ResultCache(cache_path, sig))
    data = json.loads(cache_path.read_text())
    assert not any(key.endswith("extra.py") for key in data["files"])


def test_cached_findings_still_pragma_filtered(tree, tmp_path):
    sig = rules_signature(list(all_rules()))
    cache_path = tmp_path / "cache.json"
    mod = tree / "repro" / "core" / "mod.py"
    mod.write_text(mod.read_text() + "\nBAD = value == 0.15  # qa: ignore[float-eq]\n")
    cold = _run(tree, ResultCache(cache_path, sig))
    warm = _run(tree, ResultCache(cache_path, sig))
    assert warm.cached_files == warm.num_files
    assert cold.findings == warm.findings == []


# ----------------------------------------------------------------------
# concurrency facts through cache and baseline
# ----------------------------------------------------------------------


CONC_FIXTURE = dedent(
    '''\
    """Doc."""

    from __future__ import annotations

    import threading

    __all__ = ["Box"]


    class Box:
        """Doc."""

        def __init__(self):
            """Doc."""
            self._lock = threading.Lock()
            self._items = []

        def add(self, x):
            """Doc."""
            with self._lock:
                self._items.append(x)

        def flush(self):
            """Doc."""
            with self._lock:
                self._items = []

        def peek(self):
            """Doc."""
            return self._items
    '''
)


def test_cache_round_trips_concurrency_facts(tree, tmp_path):
    # The concurrency rules are index rules: a warm (parse-free) run
    # answers them from cached ModuleSymbols, so the lock/thread facts
    # must survive the serialization round trip.
    sig = rules_signature(list(all_rules()))
    cache_path = tmp_path / "cache.json"
    (tree / "repro" / "core" / "conc.py").write_text(CONC_FIXTURE)
    cold = _run(tree, ResultCache(cache_path, sig))
    assert [f.rule_id for f in cold.findings] == ["unguarded-shared-state"]
    warm = _run(tree, ResultCache(cache_path, sig))
    assert warm.parsed_files == 0
    assert warm.findings == cold.findings


def test_engine_revision_invalidates_rules_signature(monkeypatch):
    # Caches written before the concurrency facts existed must not
    # satisfy a run that needs them: bumping ENGINE_REVISION (as the
    # concurrency release did) changes the signature, forcing a reparse.
    import repro.qa.cache as cache_mod

    before = rules_signature(list(all_rules()))
    monkeypatch.setattr(cache_mod, "ENGINE_REVISION", cache_mod.ENGINE_REVISION + 1)
    assert rules_signature(list(all_rules())) != before


def test_baseline_workflow_covers_concurrency_rules(tree, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    conc = tree / "repro" / "core" / "conc.py"
    conc.write_text(CONC_FIXTURE)
    baseline = tmp_path / "qa-baseline.txt"
    args = ["--baseline", str(baseline), "--no-cache"]
    assert qa_main(["check", str(tree / "repro"), "--write-baseline", *args]) == 0
    assert "unguarded-shared-state" in baseline.read_text()
    capsys.readouterr()
    # Grandfathered: strict is clean with the baseline in place.
    assert qa_main(["check", str(tree / "repro"), "--strict", *args]) == 0
    capsys.readouterr()
    # Fix the bug at source; --sync prunes the now-stale entry.
    conc.write_text(
        CONC_FIXTURE.replace(
            "return self._items",
            "with self._lock:\n            return self._items",
        )
    )
    code = qa_main(["baseline", str(tree / "repro"), "--sync", "--baseline", str(baseline)])
    assert code == 0
    assert "unguarded-shared-state" not in baseline.read_text()


# ----------------------------------------------------------------------
# baseline sync
# ----------------------------------------------------------------------


def test_baseline_sync_prunes_stale_and_keeps_comments(tmp_path):
    live = _finding()
    stale = _finding(rule="bare-except", line=9)
    path = tmp_path / "qa-baseline.txt"
    path.write_text(
        "# header comment\n"
        "\n"
        f"{live.fingerprint()}  # justified: legacy float compare\n"
        f"{stale.fingerprint()}  # obsolete\n"
    )
    kept, pruned = Baseline.sync(path, [live])
    assert (kept, pruned) == (1, 1)
    text = path.read_text()
    assert "# header comment" in text
    assert "justified: legacy float compare" in text
    assert stale.fingerprint() not in text


def test_baseline_sync_never_adds_entries(tmp_path):
    path = tmp_path / "qa-baseline.txt"
    path.write_text("# empty baseline\n")
    kept, pruned = Baseline.sync(path, [_finding()])
    assert (kept, pruned) == (0, 0)
    assert path.read_text() == "# empty baseline\n"


def test_baseline_sync_missing_file_is_noop(tmp_path):
    assert Baseline.sync(tmp_path / "nope.txt", []) == (0, 0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_check_sarif_format(tree, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = qa_main(["check", str(tree / "repro"), "--format", "sarif", "--no-cache"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["version"] == "2.1.0"


def test_cli_check_uses_cache_file(tree, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    cache = tmp_path / "qa-cache.json"
    assert qa_main(["check", str(tree / "repro"), "--cache", str(cache)]) == 0
    assert cache.exists()
    capsys.readouterr()
    assert qa_main(["check", str(tree / "repro"), "--cache", str(cache), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["parsed"] == 0
    assert payload["cached"] == payload["files"]


def test_cli_fix_applies_and_reports(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "broken.py"
    target.write_text("def f(x=[]):\n    try:\n        return x\n    except:\n        pass\n")
    assert qa_main(["fix", str(target)]) == 0
    out = capsys.readouterr().out
    assert "fixed 2 finding(s) in 1 of 1 file(s)" in out
    fixed = target.read_text()
    assert "x=None" in fixed and "except Exception:" in fixed


def test_cli_fix_dry_run_leaves_file_alone(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "broken.py"
    original = "def f(x=[]):\n    return x\n"
    target.write_text(original)
    assert qa_main(["fix", str(target), "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would fix" in out and "---" in out
    assert target.read_text() == original


def test_cli_baseline_sync(tree, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "qa-baseline.txt"
    baseline.write_text("somerule:gone.py:abcdef012345  # stale entry\n")
    code = qa_main(["baseline", str(tree / "repro"), "--sync", "--baseline", str(baseline)])
    assert code == 0
    assert "pruned 1" in capsys.readouterr().out
    assert "somerule" not in baseline.read_text()


def test_cli_collect_files_skips_configured_dirs(tmp_path):
    (tmp_path / ".venv").mkdir()
    (tmp_path / ".venv" / "junk.py").write_text("x = 1\n")
    (tmp_path / "node_modules").mkdir()
    (tmp_path / "node_modules" / "junk.py").write_text("x = 1\n")
    (tmp_path / "benchmarks" / "out").mkdir(parents=True)
    (tmp_path / "benchmarks" / "out" / "junk.py").write_text("x = 1\n")
    (tmp_path / "benchmarks" / "bench_ok.py").write_text("x = 1\n")
    (tmp_path / "keep.py").write_text("x = 1\n")
    found = {p.name for p in collect_files([tmp_path])}
    assert found == {"keep.py", "bench_ok.py"}


# ----------------------------------------------------------------------
# numeric facts through cache and baseline
# ----------------------------------------------------------------------


NUM_FIXTURE = dedent(
    '''\
    """Doc."""

    from __future__ import annotations

    import numpy as np

    __all__ = ["accumulate"]


    def accumulate(x):
        """Doc.

        dtype: float64
        """
        total = np.zeros(3)
        for i in range(len(x)):
            t = np.ones(3)
            total += t * x[i]
        return total
    '''
)


def test_cache_round_trips_numeric_facts(tree, tmp_path):
    # The numeric rules are index rules too: a warm (parse-free) run
    # answers them from cached ModuleSymbols, so the array-op,
    # scalar-loop, and dtype-policy facts must survive serialization.
    sig = rules_signature(list(all_rules()))
    cache_path = tmp_path / "cache.json"
    (tree / "repro" / "core" / "num.py").write_text(NUM_FIXTURE)
    cold = _run(tree, ResultCache(cache_path, sig))
    assert sorted(f.rule_id for f in cold.findings) == [
        "hot-loop-alloc",
        "scalar-loop",
    ]
    warm = _run(tree, ResultCache(cache_path, sig))
    assert warm.parsed_files == 0
    assert warm.findings == cold.findings


def test_baseline_workflow_covers_numeric_rules(tree, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    num = tree / "repro" / "core" / "num.py"
    num.write_text(NUM_FIXTURE)
    baseline = tmp_path / "qa-baseline.txt"
    args = ["--baseline", str(baseline), "--no-cache"]
    assert qa_main(["check", str(tree / "repro"), "--write-baseline", *args]) == 0
    text = baseline.read_text()
    assert "hot-loop-alloc" in text and "scalar-loop" in text
    capsys.readouterr()
    # Grandfathered: strict is clean with the baseline in place.
    assert qa_main(["check", str(tree / "repro"), "--strict", *args]) == 0
    capsys.readouterr()
    # Vectorize the kernel at source; --sync prunes the stale entries.
    num.write_text(
        NUM_FIXTURE.replace(
            "    total = np.zeros(3)\n"
            "    for i in range(len(x)):\n"
            "        t = np.ones(3)\n"
            "        total += t * x[i]\n"
            "    return total\n",
            "    return np.sum(x)\n",
        )
    )
    code = qa_main(["baseline", str(tree / "repro"), "--sync", "--baseline", str(baseline)])
    assert code == 0
    text = baseline.read_text()
    assert "hot-loop-alloc" not in text and "scalar-loop" not in text
