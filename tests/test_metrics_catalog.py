"""Tests for the metric catalog (paper's 33-metric list and Table 1)."""

import pytest

from repro.metrics.catalog import (
    ALL_METRIC_NAMES,
    ALL_METRICS,
    EXPERT_METRIC_NAMES,
    EXPERT_METRIC_PAIRS,
    GANGLIA_DEFAULT_METRICS,
    NUM_EXPERT_METRICS,
    NUM_METRICS,
    VMSTAT_EXTENSION_METRICS,
    MetricGroup,
    MetricKind,
    metric_index,
    metric_indices,
    metric_spec,
    metrics_in_group,
    validate_metric_names,
)


def test_paper_dimensions():
    """The paper requires n=33 (29 Ganglia + 4 vmstat) and p=8."""
    assert NUM_METRICS == 33
    assert len(GANGLIA_DEFAULT_METRICS) == 29
    assert len(VMSTAT_EXTENSION_METRICS) == 4
    assert NUM_EXPERT_METRICS == 8


def test_metric_names_unique():
    assert len(set(ALL_METRIC_NAMES)) == NUM_METRICS


def test_expert_metrics_are_catalog_metrics():
    for name in EXPERT_METRIC_NAMES:
        assert name in ALL_METRIC_NAMES


def test_expert_metrics_are_the_vmstat_and_core_pairs():
    """Table 1: CPU system/user, bytes in/out, IO bi/bo, swap in/out."""
    assert set(EXPERT_METRIC_NAMES) == {
        "cpu_system",
        "cpu_user",
        "bytes_in",
        "bytes_out",
        "io_bi",
        "io_bo",
        "swap_in",
        "swap_out",
    }


def test_expert_pairs_cover_four_classes():
    classes = [cls for _pair, cls in EXPERT_METRIC_PAIRS]
    assert classes == ["CPU", "NET", "IO", "MEM"]
    paired = [name for pair, _ in EXPERT_METRIC_PAIRS for name in pair]
    assert sorted(paired) == sorted(EXPERT_METRIC_NAMES)


def test_metric_index_round_trip():
    for i, name in enumerate(ALL_METRIC_NAMES):
        assert metric_index(name) == i


def test_metric_index_unknown_raises():
    with pytest.raises(KeyError, match="unknown metric"):
        metric_index("cpu_bogus")


def test_metric_indices_order_preserved():
    assert metric_indices(["io_bo", "cpu_user"]) == [
        metric_index("io_bo"),
        metric_index("cpu_user"),
    ]


def test_metric_spec_lookup():
    spec = metric_spec("swap_in")
    assert spec.unit == "kB/s"
    assert spec.kind is MetricKind.RATE
    assert spec.group is MetricGroup.MEMORY


def test_metric_spec_unknown_raises():
    with pytest.raises(KeyError):
        metric_spec("nonexistent")


def test_metrics_in_group_network():
    names = {s.name for s in metrics_in_group(MetricGroup.NETWORK)}
    assert {"bytes_in", "bytes_out", "pkts_in", "pkts_out"} == names


def test_vmstat_extensions_are_rates():
    for spec in VMSTAT_EXTENSION_METRICS:
        assert spec.kind is MetricKind.RATE


def test_validate_metric_names_rejects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        validate_metric_names(["cpu_user", "cpu_user"])


def test_validate_metric_names_rejects_unknown():
    with pytest.raises(KeyError):
        validate_metric_names(["cpu_user", "nope"])


def test_all_metrics_have_descriptions():
    for spec in ALL_METRICS:
        assert spec.description, f"{spec.name} lacks a description"
