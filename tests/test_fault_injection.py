"""Fault-injection tests: lossy monitoring and killed instances."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS
from repro.monitoring.faults import LossyChannel
from repro.monitoring.multicast import MetricAnnouncement
from repro.monitoring.profiler import PerformanceProfiler
from repro.monitoring.filter import PerformanceFilter
from repro.sim.engine import SimulationEngine
from repro.vm.cluster import single_vm_cluster
from repro.workloads.base import WorkloadInstance

from tests.conftest import short_cpu_workload, short_io_workload


def announce(channel, node, t):
    channel.announce(
        MetricAnnouncement(node=node, timestamp=t, values=np.zeros(NUM_METRICS))
    )


class TestLossyChannel:
    def test_no_loss_by_default(self):
        channel = LossyChannel()
        received = []
        channel.subscribe(received.append)
        for t in range(20):
            announce(channel, "VM1", float(t))
        assert len(received) == 20
        assert channel.loss_rate() == 0.0

    def test_probabilistic_drops(self):
        channel = LossyChannel(drop_probability=0.3, seed=1)
        received = []
        channel.subscribe(received.append)
        for t in range(1000):
            announce(channel, "VM1", float(t))
        assert 0.2 < channel.loss_rate() < 0.4
        assert len(received) == 1000 - channel.dropped

    def test_outage_window_drops_everything(self):
        channel = LossyChannel(outages=[(10.0, 20.0)])
        received = []
        channel.subscribe(received.append)
        for t in (5.0, 10.0, 15.0, 20.0, 25.0):
            announce(channel, "VM1", t)
        assert [a.timestamp for a in received] == [5.0, 25.0]
        assert channel.dropped == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(drop_probability=1.0)
        with pytest.raises(ValueError):
            LossyChannel(outages=[(10.0, 5.0)])

    def test_deterministic_per_seed(self):
        def run(seed):
            channel = LossyChannel(drop_probability=0.5, seed=seed)
            got = []
            channel.subscribe(got.append)
            for t in range(50):
                announce(channel, "VM1", float(t))
            return [a.timestamp for a in got]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestClassificationUnderLoss:
    def _run_with_channel(self, channel, classifier):
        """Wire a lossy channel into a monitored PostMark-like run."""
        from repro.monitoring.gmond import Gmond
        from repro.sim.execution import classification_testbed

        cluster = classification_testbed()
        engine = SimulationEngine(cluster, seed=2)
        rng = np.random.default_rng(9)
        for vm in cluster.iter_vms():
            gmond = Gmond(vm, channel, rng=np.random.default_rng(rng.integers(1 << 62)))
            engine.add_tick_listener(gmond.on_tick)
        profiler = PerformanceProfiler(channel)
        engine.add_instance(WorkloadInstance(short_io_workload(150.0), vm_name="VM1"))
        profiler.start("VM1", now=0.0)
        engine.run()
        profiler.stop(now=engine.now)
        series = PerformanceFilter().extract(profiler.data_pool(), "VM1")
        return classifier.classify_series(series)

    def test_composition_robust_to_20pct_loss(self, classifier):
        from repro.monitoring.multicast import MulticastChannel

        clean = self._run_with_channel(MulticastChannel(), classifier)
        lossy = self._run_with_channel(LossyChannel(drop_probability=0.2, seed=5), classifier)
        assert lossy.num_samples < clean.num_samples
        assert lossy.application_class is clean.application_class
        assert lossy.composition.io == pytest.approx(clean.composition.io, abs=0.1)

    def test_outage_mid_run_still_classifies(self, classifier):
        channel = LossyChannel(outages=[(40.0, 90.0)])
        result = self._run_with_channel(channel, classifier)
        assert result.application_class.name == "IO"


class TestKillInstance:
    def test_killed_instance_stops_consuming(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(short_cpu_workload(500.0), vm_name="VM1"))
        engine.run(until=20.0)
        cpu_at_kill = cluster.vm("VM1").counters.cpu_user_s
        engine.kill_instance(key)
        engine.run(until=60.0)
        assert engine.was_killed(key)
        assert cluster.vm("VM1").counters.cpu_user_s < cpu_at_kill + 2.0
        assert engine.completions == []

    def test_kill_unblocks_run_completion(self):
        """run() finishes once the only pending work is killed."""
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        k1 = engine.add_instance(WorkloadInstance(short_cpu_workload(30.0), vm_name="VM1"))
        k2 = engine.add_instance(WorkloadInstance(short_cpu_workload(10_000.0), vm_name="VM1"))
        engine.run(until=5.0)
        engine.kill_instance(k2)
        engine.run()  # only k1 remains
        assert engine.instance(k1).done

    def test_kill_validation(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(short_cpu_workload(5.0), vm_name="VM1"))
        with pytest.raises(KeyError):
            engine.kill_instance(99)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.kill_instance(key)

    def test_surviving_instances_speed_up_after_kill(self):
        cluster = single_vm_cluster()
        engine = SimulationEngine(cluster, seed=0)
        k1 = engine.add_instance(WorkloadInstance(short_cpu_workload(60.0), vm_name="VM1"))
        k2 = engine.add_instance(WorkloadInstance(short_cpu_workload(10_000.0), vm_name="VM1"))
        engine.run(until=10.0)
        progress_rate_contended = engine.instance(k1).progress_fraction() / 10.0
        engine.kill_instance(k2)
        engine.run(until=20.0)
        progress_after = engine.instance(k1).progress_fraction()
        rate_after = (progress_after - progress_rate_contended * 10.0) / 10.0
        assert rate_after > progress_rate_contended * 1.1
