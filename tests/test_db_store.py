"""Tests for the application database store."""

import pytest

from repro.core.labels import ClassComposition, SnapshotClass
from repro.db.records import RunRecord
from repro.db.store import ApplicationDB


def record(app, cpu=1.0, io=0.0, duration=100.0):
    comp = ClassComposition(fractions=(0.0, io, cpu, 0.0, max(1.0 - cpu - io, 0.0)))
    return RunRecord(
        application=app,
        node="VM1",
        t0=0.0,
        t1=duration,
        num_samples=20,
        application_class=comp.dominant(),
        composition=comp,
    )


def test_add_and_query():
    db = ApplicationDB()
    db.add_run(record("postmark", cpu=0.0, io=1.0))
    db.add_run(record("postmark", cpu=0.1, io=0.9))
    db.add_run(record("specseis", cpu=1.0))
    assert db.applications() == ["postmark", "specseis"]
    assert db.run_count("postmark") == 2
    assert db.run_count("unknown") == 0
    assert db.total_runs() == 3


def test_runs_returns_copy():
    db = ApplicationDB()
    db.add_run(record("a"))
    runs = db.runs("a")
    runs.clear()
    assert db.run_count("a") == 1


def test_runs_unknown_raises():
    with pytest.raises(KeyError):
        ApplicationDB().runs("ghost")


def test_stats_aggregates():
    db = ApplicationDB()
    db.add_runs([record("a", cpu=1.0), record("a", cpu=0.5, io=0.5)])
    stats = db.stats("a")
    assert stats.run_count == 2
    assert stats.mean_composition.cpu == pytest.approx(0.75)


def test_known_class_with_default():
    db = ApplicationDB()
    db.add_run(record("io-app", cpu=0.0, io=1.0))
    assert db.known_class("io-app") is SnapshotClass.IO
    assert db.known_class("never-seen") is None
    assert db.known_class("never-seen", default=SnapshotClass.CPU) is SnapshotClass.CPU


def test_clear():
    db = ApplicationDB()
    db.add_run(record("a"))
    db.clear()
    assert db.total_runs() == 0


def test_save_load_round_trip(tmp_path):
    db = ApplicationDB()
    db.add_runs([record("a", cpu=1.0), record("b", io=1.0, cpu=0.0)])
    path = tmp_path / "appdb.json"
    db.save(path)
    loaded = ApplicationDB.load(path)
    assert loaded.applications() == ["a", "b"]
    assert loaded.runs("a") == db.runs("a")


def test_load_detects_misfiled_record(tmp_path):
    db = ApplicationDB()
    db.add_run(record("a"))
    path = tmp_path / "appdb.json"
    db.save(path)
    text = path.read_text().replace('"application": "a"', '"application": "zzz"')
    path.write_text(text)
    with pytest.raises(ValueError, match="filed under"):
        ApplicationDB.load(path)


def test_load_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        ApplicationDB.load(tmp_path / "nope.json")


def test_save_is_atomic_under_simulated_crash(tmp_path, monkeypatch):
    """A crash mid-write must leave the previous database intact."""
    import repro.db.store as store_mod

    db = ApplicationDB()
    db.add_run(record("a", cpu=1.0))
    path = tmp_path / "appdb.json"
    db.save(path)
    before = path.read_text()

    db.add_run(record("b", io=1.0, cpu=0.0))

    def crashing_replace(src, dst):
        raise OSError("simulated crash during rename")

    monkeypatch.setattr(store_mod.os, "replace", crashing_replace)
    with pytest.raises(OSError, match="simulated crash"):
        db.save(path)
    # Old contents survived untouched and no temp file leaked.
    assert path.read_text() == before
    assert list(tmp_path.iterdir()) == [path]
    assert ApplicationDB.load(path).applications() == ["a"]


def test_save_leaves_no_temp_files_on_success(tmp_path):
    db = ApplicationDB()
    db.add_run(record("a"))
    path = tmp_path / "appdb.json"
    db.save(path)
    db.save(path)  # overwrite in place
    assert list(tmp_path.iterdir()) == [path]


def test_save_recovers_from_partial_writer_failure(tmp_path, monkeypatch):
    """If serialization of the temp file fails, the target is untouched."""
    import repro.db.store as store_mod

    db = ApplicationDB()
    db.add_run(record("a"))
    path = tmp_path / "appdb.json"
    db.save(path)

    def failing_mkstemp(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(store_mod.tempfile, "mkstemp", failing_mkstemp)
    with pytest.raises(OSError, match="disk full"):
        db.save(path)
    assert ApplicationDB.load(path).applications() == ["a"]
