"""The README quickstart snippet must work exactly as documented."""

from repro.experiments import build_trained_classifier
from repro.sim import profiled_run
from repro.workloads import postmark


def test_readme_quickstart_snippet():
    outcome = build_trained_classifier(seed=0)
    run = profiled_run(postmark(), seed=42)
    result = outcome.classifier.classify_series(run.series)

    assert result.application_class.name == "IO"
    percentages = result.composition.as_percentages()
    assert set(percentages) == {"IDLE", "IO", "CPU", "NET", "MEM"}
    assert percentages["IO"] > 90.0


def test_readme_serve_snippet():
    from repro.manager.service import shared_model_cache
    from repro.serve import BatchClassifier, ClassificationService

    classifier = shared_model_cache().get()
    series_list = [profiled_run(postmark(), seed=42).series]
    results = BatchClassifier(classifier).classify_batch(series_list)
    assert results[0].application_class.name == "IO"

    with ClassificationService(classifier, batch_size=16) as service:
        futures = [service.submit(series) for series in series_list]
        results = [f.result() for f in futures]
    assert results[0].application_class.name == "IO"


def test_readme_ingest_snippet():
    from repro.core.online import OnlineClassifier
    from repro.ingest import IngestPlane, MulticastChannel, synthetic_fleet
    from repro.manager.service import shared_model_cache

    classifier = shared_model_cache().get()
    channel = MulticastChannel()
    plane = IngestPlane(channel, lateness_s=5.0)
    online = OnlineClassifier(classifier, plane)

    for announcement in synthetic_fleet(4, 8, seed=1):
        channel.announce(announcement)
    window = online.pump(flush=True)
    assert len(window) == 32
    assert len(online.nodes()) == 4


def test_package_version_importable():
    import repro

    assert repro.__version__ == "1.2.0"
    # Every advertised subpackage is importable from the root.
    for name in repro.__all__:
        if name != "__version__":
            assert getattr(repro, name) is not None
