"""Tests for the fixed-capacity time-series recorder (fake clocks, no sleeps)."""

import threading

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import (
    InstrumentSeries,
    MetricsRecorder,
    SeriesPoint,
    render_top,
)


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class ManualClock:
    """Clock a test advances explicitly."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def registry(clock):
    return MetricsRegistry(clock=clock)


@pytest.fixture()
def recorder(registry):
    # Recorder inherits the registry's manual clock.
    return MetricsRecorder(registry)


class TestSampling:
    def test_timestamps_come_from_registry_clock(self, registry, recorder, clock):
        registry.counter("c").inc()
        clock.t = 5.0
        assert recorder.sample() == 5.0
        (series,) = recorder.all_series()
        assert series.points() == [SeriesPoint(5.0, 1.0)]

    def test_counter_and_gauge_values(self, registry, recorder, clock):
        c = registry.counter("hits")
        g = registry.gauge("depth")
        c.inc(3)
        g.set(7.0)
        recorder.sample()
        clock.t = 1.0
        c.inc(2)
        g.set(4.0)
        recorder.sample()
        assert [p.value for p in recorder.series("hits").points()] == [3.0, 5.0]
        assert [p.value for p in recorder.series("depth").points()] == [7.0, 4.0]

    def test_histogram_samples_carry_cumulative_buckets(self, registry, recorder):
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        recorder.sample()
        series = recorder.series("lat")
        (point,) = series.points()
        assert point.value == 2.0  # histogram count
        assert point.sum == pytest.approx(0.55)
        assert point.cumulative == (1, 2, 2)
        assert series.bounds == (0.1, 1.0)

    def test_labelled_instruments_get_distinct_series(self, registry, recorder):
        registry.counter("runs", stage="pca").inc()
        registry.counter("runs", stage="knn").inc(2)
        recorder.sample()
        assert recorder.series("runs", stage="pca").last() == 1.0
        assert recorder.series("runs", stage="knn").last() == 2.0
        assert recorder.series("runs") is None

    def test_samples_taken_counts_scrapes(self, recorder):
        assert recorder.samples_taken == 0
        recorder.sample()
        recorder.sample()
        assert recorder.samples_taken == 2

    def test_clear_drops_series(self, registry, recorder):
        registry.counter("c").inc()
        recorder.sample()
        recorder.clear()
        assert recorder.all_series() == []
        assert recorder.samples_taken == 0

    def test_interval_must_be_positive(self, registry):
        with pytest.raises(ValueError):
            MetricsRecorder(registry, interval_s=0.0)


class TestRingCapacity:
    def test_ring_evicts_oldest(self, registry, clock):
        recorder = MetricsRecorder(registry, capacity=3)
        c = registry.counter("c")
        for i in range(5):
            clock.t = float(i)
            c.inc()
            recorder.sample()
        series = recorder.series("c")
        assert len(series) == 3
        assert [p.t_s for p in series.points()] == [2.0, 3.0, 4.0]

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            InstrumentSeries("counter", "c", (), capacity=1)


class TestWindowedStats:
    def fill(self, registry, recorder, clock, values):
        g = registry.gauge("g")
        for t, v in values:
            clock.t = t
            g.set(v)
            recorder.sample()

    def test_last_min_max_over_window(self, registry, recorder, clock):
        self.fill(registry, recorder, clock, [(0.0, 9.0), (10.0, 1.0), (20.0, 5.0)])
        series = recorder.series("g")
        assert series.last() == 5.0
        # Full history.
        assert series.minimum() == 1.0
        assert series.maximum() == 9.0
        # 10-second window anchored at the newest sample excludes t=0.
        assert series.minimum(10.0) == 1.0
        assert series.maximum(10.0) == 5.0
        # Explicit now shifts the window.
        assert series.maximum(5.0, now=10.0) == 1.0

    def test_empty_series_stats_are_none(self):
        series = InstrumentSeries("gauge", "g", ())
        assert series.last() is None
        assert series.minimum() is None
        assert series.maximum() is None
        assert series.rate() is None

    def test_rate_is_delta_over_time(self, registry, recorder, clock):
        c = registry.counter("c")
        clock.t = 0.0
        recorder.sample()
        clock.t = 10.0
        c.inc(50)
        recorder.sample()
        assert recorder.series("c").rate() == pytest.approx(5.0)

    def test_rate_needs_two_points_spanning_time(self, registry, recorder, clock):
        c = registry.counter("c")
        c.inc()
        recorder.sample()
        assert recorder.series("c").rate() is None  # single point
        recorder.sample()  # same timestamp: dt == 0
        assert recorder.series("c").rate() is None

    def test_windowed_quantile_subtracts_old_snapshot(self, registry, recorder, clock):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        # Old traffic: slow observations.
        for _ in range(100):
            h.observe(5.0)
        clock.t = 0.0
        recorder.sample()
        series = recorder.series("lat")
        # Single snapshot: the lifetime distribution (all slow).
        assert series.quantile(0.99) > 1.0
        # Recent traffic: fast observations.
        for _ in range(100):
            h.observe(0.05)
        clock.t = 100.0
        recorder.sample()
        # Two snapshots: newest minus oldest cumulative counts — the old
        # slow population is subtracted out, leaving only fast traffic.
        assert series.quantile(0.99) <= 0.1
        assert series.quantile(0.99, window_s=150.0) <= 0.1

    def test_quantile_none_for_non_histogram_or_empty_window(self, registry, recorder, clock):
        registry.counter("c").inc()
        h = registry.histogram("lat", buckets=(1.0,))
        recorder.sample()
        assert recorder.series("c").quantile(0.5) is None
        # Histogram with zero in-window observations.
        assert recorder.series("lat").quantile(0.5) is None
        h.observe(0.5)
        clock.t = 10.0
        recorder.sample()
        assert recorder.series("lat").quantile(0.5) is not None


class TestSeriesMatching:
    def test_label_superset_matching(self, registry, recorder):
        registry.histogram("lat", stage="pca").observe(0.1)
        registry.histogram("lat", stage="knn").observe(0.2)
        registry.histogram("other").observe(0.3)
        recorder.sample()
        all_lat = recorder.series_matching("lat")
        assert sorted(s.labels for s in all_lat) == [
            (("stage", "knn"),),
            (("stage", "pca"),),
        ]
        only_pca = recorder.series_matching("lat", stage="pca")
        assert [s.labels for s in only_pca] == [(("stage", "pca"),)]
        assert recorder.series_matching("lat", stage="nope") == []


class TestBackgroundThread:
    def test_start_stop_idempotent(self, recorder):
        assert not recorder.running
        recorder.start()
        recorder.start()
        assert recorder.running
        recorder.stop()
        recorder.stop()
        assert not recorder.running

    def test_background_thread_scrapes(self, registry):
        # The only sleep-adjacent test: a tiny interval and a stop() that
        # joins, bounding the wait to the first scrape.
        recorder = MetricsRecorder(registry, interval_s=0.005)
        registry.counter("c").inc()
        recorder.start()
        try:
            deadline = 200
            while recorder.samples_taken == 0 and deadline:
                deadline -= 1
                recorder._stop.wait(0.005)
        finally:
            recorder.stop()
        assert recorder.samples_taken > 0
        assert recorder.series("c").last() == 1.0


class TestRenderTop:
    def test_empty_recorder(self, recorder):
        assert render_top(recorder) == "(no series recorded)"

    def test_table_has_all_series_and_columns(self, registry, recorder, clock):
        registry.counter("hits", node="a").inc(4)
        registry.gauge("depth").set(2.0)
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        recorder.sample()
        clock.t = 2.0
        registry.counter("hits", node="a").inc(4)
        recorder.sample()
        text = render_top(recorder, window_s=60.0)
        lines = text.splitlines()
        assert lines[0].split() == [
            "METRIC", "KIND", "LAST", "MIN", "MAX", "RATE/s", "P50", "P99",
        ]
        assert any(line.startswith("hits{node=a}") for line in lines)
        assert any(line.startswith("depth") for line in lines)
        hits_line = next(line for line in lines if line.startswith("hits"))
        assert "2" in hits_line.split()  # rate: +4 over 2 s


class TestConcurrentStop:
    def test_stop_joins_outside_the_lock(self, registry):
        # The loop's sample() takes the recorder lock; stop() must join
        # the thread without holding it, or this would deadlock against
        # an in-flight scrape.  Bound the whole check with a watchdog.
        recorder = MetricsRecorder(registry, interval_s=0.001)
        registry.counter("c").inc()
        recorder.start()
        done = threading.Event()

        def closer():
            recorder.stop()
            done.set()

        threading.Thread(target=closer, daemon=True).start()
        assert done.wait(10.0), "stop() deadlocked against the sampling loop"
        assert not recorder.running

    def test_concurrent_stop_is_safe(self, registry):
        recorder = MetricsRecorder(registry, interval_s=0.001).start()
        barrier = threading.Barrier(3, timeout=10.0)

        def closer():
            barrier.wait()
            recorder.stop()

        threads = [threading.Thread(target=closer) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not any(t.is_alive() for t in threads)
        assert not recorder.running
        recorder.start()  # still restartable after a racy stop
        recorder.stop()
