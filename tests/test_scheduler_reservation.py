"""Tests for reservation recommendations from run history."""

import pytest

from repro.core.labels import ClassComposition, SnapshotClass
from repro.db.records import RunRecord
from repro.db.stats import aggregate_runs
from repro.scheduler.reservation import ResourceReservation, recommend_reservation


def stats_for(compositions, durations):
    runs = []
    for comp, dur in zip(compositions, durations):
        runs.append(
            RunRecord(
                application="app",
                node="VM1",
                t0=0.0,
                t1=dur,
                num_samples=10,
                application_class=ClassComposition(fractions=comp).dominant(),
                composition=ClassComposition(fractions=comp),
            )
        )
    return aggregate_runs(runs)


def test_reservation_from_stable_history():
    comp = (0.1, 0.2, 0.5, 0.1, 0.1)
    stats = stats_for([comp, comp], [100.0, 100.0])
    r = recommend_reservation(stats, headroom_sigmas=2.0)
    assert r.cpu_share == pytest.approx(0.5)
    assert r.io_share == pytest.approx(0.2)
    assert r.net_share == pytest.approx(0.1)
    assert r.mem_share == pytest.approx(0.1)
    assert r.expected_duration_s == 100.0
    assert r.duration_bound_s == 100.0


def test_headroom_grows_with_variance():
    stats = stats_for(
        [(0.0, 0.0, 1.0, 0.0, 0.0), (0.0, 0.5, 0.5, 0.0, 0.0)],
        [100.0, 300.0],
    )
    r = recommend_reservation(stats, headroom_sigmas=2.0)
    assert r.cpu_share == pytest.approx(min(0.75 + 2 * 0.25, 1.0))
    assert r.duration_bound_s == pytest.approx(200.0 + 2 * 100.0)


def test_shares_clipped_to_unit():
    stats = stats_for(
        [(0.0, 0.0, 1.0, 0.0, 0.0), (0.0, 1.0, 0.0, 0.0, 0.0)],
        [100.0, 100.0],
    )
    r = recommend_reservation(stats, headroom_sigmas=10.0)
    assert r.cpu_share == 1.0
    assert r.io_share == 1.0


def test_negative_headroom_rejected():
    stats = stats_for([(0.0, 0.0, 1.0, 0.0, 0.0)], [100.0])
    with pytest.raises(ValueError):
        recommend_reservation(stats, headroom_sigmas=-1.0)


def test_reservation_validation():
    with pytest.raises(ValueError):
        ResourceReservation(
            application="a", cpu_share=1.5, io_share=0.0, net_share=0.0,
            mem_share=0.0, expected_duration_s=1.0, duration_bound_s=2.0,
        )
    with pytest.raises(ValueError):
        ResourceReservation(
            application="a", cpu_share=0.5, io_share=0.0, net_share=0.0,
            mem_share=0.0, expected_duration_s=10.0, duration_bound_s=5.0,
        )
