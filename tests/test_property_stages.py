"""Property-based tests for stage segmentation and online state."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import ClassComposition, SnapshotClass
from repro.core.online import NodeClassificationState
from repro.core.stages import mode_filter, segment_stages
from repro.core.pipeline import ClassificationResult, StageTimings
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries

class_vectors = st.lists(st.integers(0, 4), min_size=1, max_size=60)


def build(class_vector):
    vec = np.asarray(class_vector, dtype=np.int64)
    m = vec.size
    series = SnapshotSeries(
        node="n",
        timestamps=np.arange(1, m + 1) * 5.0,
        matrix=np.zeros((NUM_METRICS, m)),
    )
    comp = ClassComposition.from_class_vector(vec)
    result = ClassificationResult(
        node="n",
        num_samples=m,
        class_vector=vec,
        composition=comp,
        application_class=comp.dominant(),
        category="x",
        scores=np.zeros((m, 2)),
        timings=StageTimings(),
    )
    return result, series


@given(vec=class_vectors)
@settings(max_examples=100, deadline=None)
def test_stages_partition_the_run(vec):
    result, series = build(vec)
    analysis = segment_stages(result, series, smoothing_window=1)
    # Stages tile [0, m-1] exactly, in order, without gaps or overlap.
    expected_start = 0
    for stage in analysis.stages:
        assert stage.start_snapshot == expected_start
        expected_start = stage.end_snapshot + 1
    assert expected_start == len(vec)


@given(vec=class_vectors)
@settings(max_examples=100, deadline=None)
def test_adjacent_stages_differ_in_class(vec):
    result, series = build(vec)
    analysis = segment_stages(result, series, smoothing_window=1)
    for a, b in zip(analysis.stages, analysis.stages[1:]):
        assert a.snapshot_class is not b.snapshot_class


@given(vec=class_vectors)
@settings(max_examples=100, deadline=None)
def test_unsmoothed_segmentation_reproduces_vector(vec):
    result, series = build(vec)
    analysis = segment_stages(result, series, smoothing_window=1)
    rebuilt = np.concatenate(
        [np.full(s.num_snapshots, int(s.snapshot_class)) for s in analysis.stages]
    )
    assert np.array_equal(rebuilt, np.asarray(vec))


@given(vec=class_vectors, window=st.sampled_from([1, 3, 5]))
@settings(max_examples=100, deadline=None)
def test_mode_filter_never_invents_classes(vec, window):
    arr = np.asarray(vec, dtype=np.int64)
    out = mode_filter(arr, window)
    assert set(out.tolist()) <= set(arr.tolist())
    assert out.shape == arr.shape


@given(vec=class_vectors, window=st.sampled_from([3, 5]))
@settings(max_examples=100, deadline=None)
def test_smoothing_never_increases_stage_count(vec, window):
    result, series = build(vec)
    rough = segment_stages(result, series, smoothing_window=1)
    smooth = segment_stages(result, series, smoothing_window=window)
    assert smooth.num_stages <= rough.num_stages


@given(vec=class_vectors)
@settings(max_examples=100, deadline=None)
def test_online_state_matches_batch_counts(vec):
    state = NodeClassificationState(node="n")
    for i, code in enumerate(vec):
        state.record(SnapshotClass(code), float(i))
    counts = np.bincount(np.asarray(vec), minlength=5)
    assert np.array_equal(state.class_counts, counts)
    assert state.snapshots_seen == len(vec)
    assert state.majority_class() is SnapshotClass(int(counts.argmax()))
    # Streak equals the length of the trailing constant run.
    trailing = 1
    for a, b in zip(reversed(vec[:-1]), reversed(vec)):
        if a == b:
            trailing += 1
        else:
            break
    assert state.streak == trailing
