"""Tests for the multicast listen/announce channel."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS
from repro.monitoring.multicast import MetricAnnouncement, MulticastChannel


def make_announcement(node="VM1", t=5.0):
    return MetricAnnouncement(node=node, timestamp=t, values=np.zeros(NUM_METRICS))


def test_announcement_validates_shape():
    with pytest.raises(ValueError):
        MetricAnnouncement(node="VM1", timestamp=0.0, values=np.zeros(4))


def test_subscribe_and_receive():
    channel = MulticastChannel()
    received = []
    channel.subscribe(received.append)
    a = make_announcement()
    channel.announce(a)
    assert received == [a]
    assert channel.announcements_sent == 1


def test_all_listeners_receive_every_announcement():
    channel = MulticastChannel()
    boxes = [[], [], []]
    for box in boxes:
        channel.subscribe(box.append)
    channel.announce(make_announcement("VM1"))
    channel.announce(make_announcement("VM2"))
    for box in boxes:
        assert [a.node for a in box] == ["VM1", "VM2"]


def test_duplicate_subscription_rejected():
    channel = MulticastChannel()
    listener = lambda a: None
    channel.subscribe(listener)
    with pytest.raises(ValueError):
        channel.subscribe(listener)


def test_unsubscribe():
    channel = MulticastChannel()
    received = []
    listener = received.append
    channel.subscribe(listener)
    channel.unsubscribe(listener)
    channel.announce(make_announcement())
    assert received == []
    assert channel.listener_count == 0


def test_unsubscribe_unknown_rejected():
    with pytest.raises(ValueError):
        MulticastChannel().unsubscribe(lambda a: None)
