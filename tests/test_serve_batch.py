"""Batch/sequential bit-identity of the vectorized serving kernel."""

import numpy as np
import pytest

from repro.core.pipeline import ApplicationClassifier
from repro.errors import EmptySeriesError, NotTrainedError
from repro.experiments.fleet import profile_fleet
from repro.metrics.series import SnapshotSeries
from repro.serve.batch import BatchClassifier
from repro.sim.execution import profiled_run
from repro.vm.resources import ResourceDemand
from repro.workloads.base import constant_workload


@pytest.fixture(scope="module")
def fleet():
    """32 seeded short runs plus one single-snapshot run (33 total)."""
    series_list = profile_fleet(32, seed=100)
    tiny = profiled_run(
        constant_workload("tiny", ResourceDemand(cpu_user=0.9, mem_mb=20.0), 5.0),
        seed=9,
    ).series
    assert len(tiny) == 1
    return series_list + [tiny]


@pytest.fixture(scope="module")
def batch(classifier):
    return BatchClassifier(classifier)


class TestParity:
    def test_bit_identical_to_sequential(self, classifier, batch, fleet):
        sequential = [classifier.classify_series(s) for s in fleet]
        batched = batch.classify_batch(fleet)
        assert len(batched) == len(fleet)
        for seq, bat in zip(sequential, batched):
            assert np.array_equal(seq.class_vector, bat.class_vector)
            assert np.array_equal(seq.scores, bat.scores)
            assert seq.composition == bat.composition
            assert seq.application_class is bat.application_class
            assert seq.category == bat.category
            assert seq.num_samples == bat.num_samples
            assert seq.node == bat.node

    def test_order_preserved(self, batch, fleet):
        results = batch.classify_batch(fleet)
        for series, result in zip(fleet, results):
            assert result.node == series.node
            assert result.num_samples == len(series)

    def test_single_run_batch(self, classifier, batch, fleet):
        (result,) = batch.classify_batch(fleet[:1])
        expected = classifier.classify_series(fleet[0])
        assert np.array_equal(result.class_vector, expected.class_vector)
        assert np.array_equal(result.scores, expected.scores)

    def test_results_are_independent_copies(self, batch, fleet):
        results = batch.classify_batch(fleet[:2])
        results[0].class_vector[:] = -1
        results[0].scores[:] = 0.0
        again = batch.classify_batch(fleet[:2])
        assert again[1].class_vector.min() >= 0
        assert not np.shares_memory(results[1].class_vector, again[1].class_vector)


class TestTimings:
    def test_timings_sum_to_batch_totals(self, batch, fleet):
        results = batch.classify_batch(fleet)
        for stage in ("preprocess_s", "pca_s", "classify_s", "vote_s"):
            total = sum(getattr(r.timings, stage) for r in results)
            assert total >= 0.0
        assert results[0].timings.total_s >= 0.0


class TestRejection:
    def test_empty_input_returns_empty(self, batch):
        assert batch.classify_batch([]) == []

    def test_empty_series_rejects_whole_batch(self, batch, fleet):
        empty = SnapshotSeries(
            node=fleet[0].node,
            timestamps=np.empty(0, dtype=np.float64),
            matrix=np.empty((fleet[0].matrix.shape[0], 0), dtype=np.float64),
        )
        with pytest.raises(EmptySeriesError):
            batch.classify_batch([fleet[0], empty])
        # Dual inheritance: pre-1.1 except ValueError still catches.
        with pytest.raises(ValueError):
            batch.classify_batch([empty])

    def test_untrained_classifier_rejected(self):
        with pytest.raises(NotTrainedError):
            BatchClassifier(ApplicationClassifier())
        with pytest.raises(RuntimeError):
            BatchClassifier(ApplicationClassifier())
