"""Tests for the numeric kernel analysis (repro.qa.numerics).

Covers the dtype lattice (promotion, weak scalars, flow propagation),
the fact extractor (array ops, scalar loops, dtype policies), the four
index rules (positive / negative / pragma fixtures each), the
``repro-qa numerics`` report (text determinism + JSON), and the
live-tree-clean integration contract.
"""

from __future__ import annotations

import json
import textwrap

from pathlib import Path

import pytest

from repro.qa import Analyzer, all_rules
from repro.qa.cli import main as qa_main
from repro.qa.dtypeflow import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT64,
    UNKNOWN,
    WEAK_FLOAT,
    WEAK_INT,
    concrete,
    promote,
)
from repro.qa.numerics import (
    DEFAULT_DTYPE_POLICY,
    build_module_numerics,
    parse_dtype_tag,
)
from repro.qa.source import SourceModule
from repro.qa.symbols import build_module_symbols

REPO = Path(__file__).resolve().parent.parent

NUMERIC_RULES = ("dtype-promotion", "hot-loop-alloc", "implicit-copy", "scalar-loop")


def findings(source: str, rule: str, name: str = "repro.serve.mod"):
    out = Analyzer().run_source(textwrap.dedent(source), name=name)
    return [f for f in out if f.rule_id == rule]


def numerics_of(source: str, name: str = "repro.serve.mod"):
    module = SourceModule.from_source(textwrap.dedent(source), name=name)
    symbols = build_module_symbols(module)
    return symbols.numerics


def function_facts(source: str, fn_name: str, name: str = "repro.serve.mod"):
    num = numerics_of(source, name=name)
    assert num is not None
    for fn in num.functions:
        if fn.name == fn_name:
            return fn
    raise AssertionError(f"no numeric facts for {fn_name}")


# ----------------------------------------------------------------------
# dtype lattice
# ----------------------------------------------------------------------


class TestPromotion:
    def test_equal_dtypes_are_fixed_points(self):
        for d in (FLOAT64, FLOAT32, INT64, BOOL):
            assert promote(d, d) == d

    def test_float64_dominates_floats(self):
        assert promote(FLOAT64, FLOAT32) == FLOAT64
        assert promote(FLOAT32, FLOAT64) == FLOAT64

    def test_weak_float_does_not_promote_float32(self):
        # NEP 50: a Python float literal defers to the array dtype.
        assert promote(FLOAT32, WEAK_FLOAT) == FLOAT32
        assert promote(WEAK_FLOAT, FLOAT32) == FLOAT32

    def test_weak_float_forces_integers_to_float64(self):
        assert promote(INT64, WEAK_FLOAT) == FLOAT64

    def test_weak_int_defers_everywhere(self):
        assert promote(FLOAT32, WEAK_INT) == FLOAT32
        assert promote(INT64, WEAK_INT) == INT64

    def test_float32_with_int64_widens_to_float64(self):
        assert promote(FLOAT32, INT64) == FLOAT64

    def test_bool_defers_to_floats(self):
        assert promote(BOOL, FLOAT32) == FLOAT32

    def test_unknown_is_absorbing(self):
        assert promote(UNKNOWN, FLOAT64) is UNKNOWN
        assert promote(FLOAT32, UNKNOWN) is UNKNOWN

    def test_concrete_strengthens_weak_scalars(self):
        assert concrete(WEAK_FLOAT) == FLOAT64
        assert concrete(WEAK_INT) == INT64
        assert concrete(FLOAT32) == FLOAT32


class TestDtypeInference:
    def test_constructor_defaults_and_kwargs(self):
        fn = function_facts(
            '''
            import numpy as np

            def f(n):
                """Make buffers.

                dtype: preserve
                """
                a = np.zeros(n)
                b = np.zeros(n, dtype=np.float32)
                return a
            ''',
            "f",
        )
        dtypes = {op.dtype for op in fn.array_ops}
        assert FLOAT64 in dtypes  # np.zeros defaults to float64
        assert FLOAT32 in dtypes  # explicit dtype kwarg wins

    def test_astype_and_out_and_promotion_flow(self):
        fn = function_facts(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                y = x.astype(np.float32)
                z = y + 1.0
                w = np.multiply(z, z, out=z)
                return w
            ''',
            "f",
        )
        kinds = {(op.kind, op.op) for op in fn.array_ops}
        assert ("copy", ".astype") in kinds  # astype copies
        assert ("inplace", "np.multiply") in kinds  # out= is in-place
        # ``y + 1.0`` stays float32 (weak scalar) — no promote fact.
        assert not any(op.kind == "promote" for op in fn.array_ops)

    def test_return_dtype_joins_returns(self):
        fn = function_facts(
            '''
            import numpy as np

            def f(x, flag):
                """Kernel.

                dtype: preserve
                """
                if flag:
                    return np.zeros(3, dtype=np.int64)
                return np.arange(3)
            ''',
            "f",
        )
        assert fn.return_dtype == INT64

    def test_division_of_integers_is_float(self):
        fn = function_facts(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                n = np.zeros(3, dtype=np.int64)
                return n / 2
            ''',
            "f",
        )
        assert fn.return_dtype == FLOAT64


# ----------------------------------------------------------------------
# fact extraction
# ----------------------------------------------------------------------


class TestExtraction:
    def test_docstring_tag_beats_module_policy(self):
        assert parse_dtype_tag("Text.\n\ndtype: float32\n") == "float32"
        assert parse_dtype_tag("no tag here") is None
        fn = function_facts(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                return np.zeros(3)
            ''',
            "f",
            name="repro.core.knn",
        )
        assert fn.declared == "float32"  # tag wins over the module map

    def test_module_policy_applies_to_kernel_modules(self):
        fn = function_facts(
            """
            import numpy as np

            def f(x):
                return np.zeros(3)
            """,
            "f",
            name="repro.core.knn",
        )
        assert DEFAULT_DTYPE_POLICY["repro.core.knn"] == "preserve"
        assert fn.declared == "preserve"

    def test_non_policy_module_has_no_declaration(self):
        fn = function_facts(
            """
            import numpy as np

            def f(x):
                return np.zeros(3)
            """,
            "f",
            name="repro.metrics.mod",
        )
        assert fn.declared is None

    def test_trivial_module_stores_no_facts(self):
        assert numerics_of("x = 1\n") is None

    def test_facts_round_trip_through_json(self):
        num = numerics_of(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                acc = np.zeros(4)
                for i in range(x.size):
                    acc += np.ones(4)
                return acc
            '''
        )
        from repro.qa.numerics import ModuleNumerics

        restored = ModuleNumerics.from_dict(json.loads(json.dumps(num.to_dict())))
        assert restored.to_dict() == num.to_dict()

    def test_chunked_range_loop_is_not_scalar(self):
        fn = function_facts(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                for start in range(0, x.shape[0], 64):
                    block = x[start : start + 64]
                return x
            ''',
            "f",
        )
        assert fn.scalar_loops == []

    def test_plain_int_range_loop_is_not_scalar(self):
        fn = function_facts(
            '''
            import numpy as np

            def f(x, n_classes):
                """Kernel.

                dtype: float64
                """
                for c in range(n_classes):
                    pass
                return x
            ''',
            "f",
        )
        assert fn.scalar_loops == []


# ----------------------------------------------------------------------
# the four rules: positive / negative / pragma
# ----------------------------------------------------------------------


class TestDtypePromotionRule:
    def test_fires_on_float64_default_in_float32_kernel(self):
        got = findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                return np.zeros(3)
            ''',
            "dtype-promotion",
        )
        assert len(got) == 1
        assert "float64" in got[0].message

    def test_fires_on_scalar_upcast(self):
        got = findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                return x * np.float64(2.0)
            ''',
            "dtype-promotion",
        )
        assert got, "explicit float64 scalar must promote a float32 kernel"

    def test_fires_one_call_level_down(self):
        out = Analyzer().run_sources(
            {
                "repro.serve.helper": textwrap.dedent(
                    '''
                    import numpy as np

                    def make_table(n):
                        """Build the table.

                        dtype: float64
                        """
                        return np.zeros(n)
                    '''
                ),
                "repro.serve.kern": textwrap.dedent(
                    '''
                    from repro.serve.helper import make_table

                    def g(n):
                        """Kernel.

                        dtype: float32
                        """
                        return make_table(n)
                    '''
                ),
            }
        )
        got = [f for f in out if f.rule_id == "dtype-promotion"]
        assert any("make_table" in f.message for f in got)

    def test_quiet_on_explicit_float32(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                y = np.zeros(3, dtype=np.float32)
                return y + 1.0
            ''',
            "dtype-promotion",
        )

    def test_quiet_in_float64_kernels(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                return np.zeros(3)
            ''',
            "dtype-promotion",
        )

    def test_pragma_suppresses(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float32
                """
                return np.zeros(3)  # qa: ignore[dtype-promotion]
            ''',
            "dtype-promotion",
        )


class TestHotLoopAllocRule:
    SRC = '''
        import numpy as np

        def f(x):
            """Kernel.

            dtype: float64
            """
            acc = np.zeros(4)
            for i in range(x.size):
                t = np.empty(4){pragma}
                acc += t
            return acc
    '''

    def test_fires_on_alloc_in_scalar_loop(self):
        got = findings(self.SRC.format(pragma=""), "hot-loop-alloc")
        assert len(got) == 1
        assert "out=" in got[0].message or "preallocate" in got[0].message

    def test_quiet_when_hoisted(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                acc = np.zeros(4)
                t = np.empty(4)
                for i in range(x.size):
                    np.multiply(acc, acc, out=t)
                return acc
            ''',
            "hot-loop-alloc",
        )

    def test_quiet_in_chunked_loops(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                out = []
                for start in range(0, x.shape[0], 64):
                    out.append(np.zeros(4))
                return out
            ''',
            "hot-loop-alloc",
        )

    def test_pragma_suppresses(self):
        assert not findings(
            self.SRC.format(pragma="  # qa: ignore[hot-loop-alloc]"),
            "hot-loop-alloc",
        )


class TestImplicitCopyRule:
    def test_fires_on_vstack_feeding_gemm(self):
        got = findings(
            '''
            import numpy as np

            def f(blocks, w):
                """Kernel.

                dtype: float64
                """
                return np.vstack(blocks) @ w
            ''',
            "implicit-copy",
        )
        assert len(got) == 1
        assert "np.vstack" in got[0].message

    def test_fires_on_copy_feeding_reduction(self):
        got = findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                y = np.zeros(3)
                return np.sum(y.copy())
            ''',
            "implicit-copy",
        )
        assert len(got) == 1

    def test_quiet_on_views_feeding_gemm(self):
        # .T is a view — BLAS handles transposed operands natively.
        assert not findings(
            '''
            import numpy as np

            def f(a, b):
                """Kernel.

                dtype: float64
                """
                return a @ b.T
            ''',
            "implicit-copy",
        )

    def test_quiet_on_staged_copy(self):
        assert not findings(
            '''
            import numpy as np

            def f(blocks, w):
                """Kernel.

                dtype: float64
                """
                stacked = np.vstack(blocks)
                return stacked @ w
            ''',
            "implicit-copy",
        )

    def test_pragma_suppresses(self):
        assert not findings(
            '''
            import numpy as np

            def f(blocks, w):
                """Kernel.

                dtype: float64
                """
                return np.vstack(blocks) @ w  # qa: ignore[implicit-copy]
            ''',
            "implicit-copy",
        )


class TestScalarLoopRule:
    def test_fires_on_per_element_range_loop(self):
        got = findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                s = 0.0
                for i in range(len(x)):
                    s += float(x[i])
                return s
            ''',
            "scalar-loop",
        )
        assert len(got) == 1
        assert "range(len(x))" in got[0].message

    def test_quiet_outside_policy_scope(self):
        assert not findings(
            """
            import numpy as np

            def f(x):
                s = 0.0
                for i in range(len(x)):
                    s += float(x[i])
                return s
            """,
            "scalar-loop",
            name="repro.metrics.mod",
        )

    def test_quiet_on_vectorized_equivalent(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                return np.sum(x)
            ''',
            "scalar-loop",
        )

    def test_pragma_suppresses(self):
        assert not findings(
            '''
            import numpy as np

            def f(x):
                """Kernel.

                dtype: float64
                """
                s = 0.0
                for i in range(len(x)):  # qa: ignore[scalar-loop]
                    s += float(x[i])
                return s
            ''',
            "scalar-loop",
        )


# ----------------------------------------------------------------------
# the CLI report
# ----------------------------------------------------------------------


class TestNumericsReport:
    def test_text_table_is_deterministic(self, capsys):
        target = str(REPO / "src" / "repro" / "core")
        assert qa_main(["numerics", target, "--no-cache"]) == 0
        first = capsys.readouterr().out
        assert qa_main(["numerics", target, "--no-cache"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "repro.core.knn.pairwise_sq_distances" in first
        assert first.endswith("\n")

    def test_json_report_covers_core_and_serve(self, capsys):
        assert (
            qa_main(
                [
                    "numerics",
                    str(REPO / "src" / "repro" / "core"),
                    str(REPO / "src" / "repro" / "serve" / "batch.py"),
                    "--no-cache",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        kernels = {k["module"] + "." + k["function"] for k in payload["kernels"]}
        assert "repro.core.knn.pairwise_sq_distances" in kernels
        assert "repro.serve.batch.BatchClassifier._run_stacked" in kernels
        batch = next(
            k
            for k in payload["kernels"]
            if k["function"] == "BatchClassifier._run_stacked"
        )
        assert batch["declared"] == "preserve"
        # The stacked kernel writes through preallocated buffers.
        assert any(op["kind"] == "inplace" for op in batch["ops"])

    def test_missing_path_is_usage_error(self, capsys):
        assert qa_main(["numerics", "no/such/path", "--no-cache"]) == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# live tree integration
# ----------------------------------------------------------------------


def test_live_tree_has_no_numeric_findings():
    """The kernels in core/ and serve/ must satisfy their own lint."""
    analyzer = Analyzer(list(all_rules()))
    report = analyzer.run([REPO / "src" / "repro"])
    numeric = [f for f in report.findings if f.rule_id in NUMERIC_RULES]
    assert numeric == [], [f.render() for f in numeric]
