"""Tests for the simulated /proc views."""

import pytest

from repro.monitoring.procfs import USER_HZ, SimulatedProcFS
from repro.vm.machine import OS_BASE_MEM_MB, VirtualMachine


def make_vm():
    vm = VirtualMachine("VM1", mem_mb=256.0)
    vm.counters.account_cpu(user_s=10.0, system_s=2.0, wio_s=1.0, nice_s=0.0, idle_s=7.0)
    vm.counters.account_io(blocks_in=500.0, blocks_out=250.0)
    vm.counters.account_swap(kb_in=64.0, kb_out=32.0)
    vm.counters.account_net(bytes_in=15000.0, bytes_out=4500.0)
    return vm


def test_stat_reports_jiffies():
    procfs = SimulatedProcFS(make_vm())
    stat = procfs.stat()
    assert stat["user"] == pytest.approx(10.0 * USER_HZ)
    assert stat["system"] == pytest.approx(2.0 * USER_HZ)
    assert stat["iowait"] == pytest.approx(1.0 * USER_HZ)


def test_render_stat_format():
    text = SimulatedProcFS(make_vm()).render_stat()
    assert text.startswith("cpu  1000 0 200 700 100")
    assert "procs_running" in text


def test_meminfo_accounting_consistent():
    vm = make_vm()
    vm.update_memory_gauges(100.0)
    mem = SimulatedProcFS(vm).meminfo()
    total = mem["MemTotal"]
    assert total == 256.0 * 1024.0
    used = total - mem["MemFree"] - mem["Buffers"] - mem["Cached"]
    assert used == pytest.approx((OS_BASE_MEM_MB + 100.0) * 1024.0, rel=1e-6)
    assert mem["MemFree"] >= 0.0


def test_meminfo_swap():
    vm = make_vm()
    vm.update_memory_gauges(400.0)  # overflows
    mem = SimulatedProcFS(vm).meminfo()
    assert mem["SwapFree"] < mem["SwapTotal"]


def test_render_meminfo():
    text = SimulatedProcFS(make_vm()).render_meminfo()
    assert "MemTotal: 262144 kB" in text


def test_loadavg():
    vm = make_vm()
    vm.counters.advance_time(60.0, runnable=1.0)
    one, five, fifteen = SimulatedProcFS(vm).loadavg()
    assert one > five > fifteen > 0.0
    rendered = SimulatedProcFS(vm).render_loadavg()
    assert rendered.count(".") >= 3


def test_net_dev_counters():
    net = SimulatedProcFS(make_vm()).net_dev()
    assert net["rx_bytes"] == 15000.0
    assert net["tx_bytes"] == 4500.0
    assert net["rx_packets"] == pytest.approx(10.0)


def test_vmstat_counters():
    counters = SimulatedProcFS(make_vm()).vmstat_counters()
    assert counters["pgpgin_blocks"] == 500.0
    assert counters["pswpin_kb"] == 64.0
