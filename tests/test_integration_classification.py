"""End-to-end classification integration tests (paper Table 3 shape).

Fast variants of the headline results: each test profiles one real
workload model in the simulator, pushes it through monitoring +
classification, and asserts the paper's qualitative outcome.
"""

import pytest

from repro.core.labels import SnapshotClass
from repro.sim.execution import profiled_run
from repro.workloads.cpu import simplescalar, specseis96
from repro.workloads.interactive import vmd, xspim
from repro.workloads.io import postmark
from repro.workloads.network import postmark_nfs, sftp


@pytest.fixture(scope="module")
def classify(classifier):
    def _run(workload, mem=256.0, seed=77):
        run = profiled_run(workload, vm_mem_mb=mem, seed=seed)
        return classifier.classify_series(run.series), run

    return _run


def test_simplescalar_is_cpu(classify):
    result, _ = classify(simplescalar())
    assert result.application_class is SnapshotClass.CPU
    assert result.composition.cpu > 0.9


def test_postmark_local_is_io(classify):
    result, _ = classify(postmark())
    assert result.application_class is SnapshotClass.IO
    assert result.composition.io > 0.85


def test_postmark_nfs_flips_to_network(classify):
    """Table 3's environment-dependence result: same benchmark, NFS
    directory → network class."""
    result, _ = classify(postmark_nfs())
    assert result.application_class is SnapshotClass.NET
    assert result.composition.net > 0.9


def test_sftp_is_network_despite_disk_reads(classify):
    result, _ = classify(sftp())
    assert result.application_class is SnapshotClass.NET


def test_vmd_is_interactive_mix(classify):
    """Paper: 37% idle / 41% IO / 22% NET."""
    result, _ = classify(vmd())
    assert result.category == "Idle + Others"
    assert result.composition.idle == pytest.approx(0.37, abs=0.08)
    assert result.composition.io == pytest.approx(0.41, abs=0.08)
    assert result.composition.net == pytest.approx(0.22, abs=0.08)


def test_xspim_idle_io_mix(classify):
    result, _ = classify(xspim())
    assert result.composition.idle > 0.1
    assert result.composition.io > 0.6


def test_specseis_small_vm_class_shift(classify):
    """The B experiment in miniature: small input, 256 MB vs 32 MB VM.

    On 32 MB the same application gains substantial IO+paging share and
    runs longer.
    """
    roomy, run_roomy = classify(specseis96("small"), mem=256.0)
    tight, run_tight = classify(specseis96("small"), mem=32.0)
    assert roomy.composition.cpu > 0.9
    io_paging_tight = tight.composition.io + tight.composition.mem
    assert io_paging_tight > 0.10
    assert tight.composition.cpu < roomy.composition.cpu
    assert run_tight.duration > run_roomy.duration * 1.2


def test_sample_count_matches_duration(classify):
    _, run = classify(postmark())
    assert run.num_samples == pytest.approx(run.duration / 5.0, abs=2)


def test_deterministic_classification(classifier):
    a = profiled_run(postmark(), seed=5)
    b = profiled_run(postmark(), seed=5)
    ra = classifier.classify_series(a.series)
    rb = classifier.classify_series(b.series)
    assert (ra.class_vector == rb.class_vector).all()
