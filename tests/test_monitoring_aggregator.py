"""Tests for the gmetad-style aggregator."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS, metric_index
from repro.monitoring.aggregator import GmetadAggregator
from repro.monitoring.multicast import MetricAnnouncement, MulticastChannel


def announce(channel, node, t, cpu_user=0.0):
    values = np.zeros(NUM_METRICS)
    values[metric_index("cpu_user")] = cpu_user
    channel.announce(MetricAnnouncement(node=node, timestamp=t, values=values))


def test_latest_per_node():
    channel = MulticastChannel()
    agg = GmetadAggregator(channel)
    announce(channel, "VM1", 5.0, cpu_user=10.0)
    announce(channel, "VM2", 5.0, cpu_user=20.0)
    announce(channel, "VM1", 10.0, cpu_user=30.0)
    assert agg.nodes() == ["VM1", "VM2"]
    assert agg.latest("VM1").timestamp == 10.0
    assert agg.latest_metric("VM1", "cpu_user") == 30.0
    assert agg.latest_metric("VM2", "cpu_user") == 20.0


def test_unknown_node_raises():
    agg = GmetadAggregator(MulticastChannel())
    with pytest.raises(KeyError):
        agg.latest("ghost")


def test_recent_mean():
    channel = MulticastChannel()
    agg = GmetadAggregator(channel)
    for i in range(6):
        announce(channel, "VM1", float(i * 5), cpu_user=float(i))
    assert agg.recent_mean("VM1", "cpu_user", samples=3) == pytest.approx(4.0)
    assert agg.recent_mean("VM1", "cpu_user", samples=100) == pytest.approx(2.5)


def test_recent_mean_validation():
    channel = MulticastChannel()
    agg = GmetadAggregator(channel)
    with pytest.raises(ValueError):
        agg.recent_mean("VM1", "cpu_user", samples=0)
    with pytest.raises(KeyError):
        agg.recent_mean("ghost", "cpu_user")


def test_history_bounded():
    channel = MulticastChannel()
    agg = GmetadAggregator(channel, history_len=4)
    for i in range(10):
        announce(channel, "VM1", float(i), cpu_user=float(i))
    # Only the last 4 remain.
    assert agg.recent_mean("VM1", "cpu_user", samples=100) == pytest.approx((6 + 7 + 8 + 9) / 4)


def test_history_len_validation():
    with pytest.raises(ValueError):
        GmetadAggregator(MulticastChannel(), history_len=0)
