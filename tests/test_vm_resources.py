"""Tests for resource capacities, demands, and grants."""

import pytest

from repro.vm.resources import (
    BLOCKS_PER_SWAP_KB,
    ResourceCapacity,
    ResourceDemand,
    ResourceGrant,
)


class TestResourceCapacity:
    def test_defaults_valid(self):
        cap = ResourceCapacity()
        assert cap.cpu_cores == 2.0
        assert cap.net_bytes_per_s == 125_000_000.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ResourceCapacity(cpu_cores=0.0)
        with pytest.raises(ValueError):
            ResourceCapacity(disk_blocks_per_s=-1.0)

    def test_reference_cores_scales_with_clock(self):
        cap = ResourceCapacity(cpu_cores=2.0, cpu_mhz=2400.0)
        assert cap.reference_cores == pytest.approx(2.0 * 2400.0 / 1800.0)

    def test_reference_cores_identity_at_reference_clock(self):
        cap = ResourceCapacity(cpu_cores=2.0, cpu_mhz=1800.0)
        assert cap.reference_cores == pytest.approx(2.0)

    def test_scaled(self):
        cap = ResourceCapacity().scaled(0.5)
        assert cap.cpu_cores == 1.0
        assert cap.disk_blocks_per_s == 700.0

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ResourceCapacity().scaled(0.0)


class TestResourceDemand:
    def test_aggregates(self):
        d = ResourceDemand(
            cpu_user=0.5, cpu_system=0.2, io_bi=100.0, io_bo=50.0, swap_in=10.0, swap_out=20.0,
            net_in=5.0, net_out=7.0,
        )
        assert d.cpu == pytest.approx(0.7)
        assert d.disk == pytest.approx(150.0 + 30.0 * BLOCKS_PER_SWAP_KB)
        assert d.net == pytest.approx(12.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceDemand(cpu_user=-0.1)

    def test_paging_intensity_bounds(self):
        with pytest.raises(ValueError):
            ResourceDemand(paging_intensity=1.5)
        ResourceDemand(paging_intensity=0.0)  # ok

    def test_is_idle(self):
        assert ResourceDemand().is_idle()
        assert ResourceDemand(mem_mb=50.0).is_idle()
        assert not ResourceDemand(cpu_user=0.1).is_idle()
        assert not ResourceDemand(net_in=1.0).is_idle()

    def test_scaled_rates_only(self):
        d = ResourceDemand(cpu_user=1.0, io_bi=100.0, mem_mb=64.0, paging_intensity=0.3)
        half = d.scaled(0.5)
        assert half.cpu_user == 0.5
        assert half.io_bi == 50.0
        assert half.mem_mb == 64.0  # capacity, not a rate
        assert half.paging_intensity == 0.3

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ResourceDemand().scaled(-1.0)

    def test_plus_sums_fields(self):
        a = ResourceDemand(cpu_user=0.3, mem_mb=10.0, paging_intensity=0.2)
        b = ResourceDemand(cpu_user=0.4, io_bo=5.0, mem_mb=20.0)
        c = a.plus(b)
        assert c.cpu_user == pytest.approx(0.7)
        assert c.io_bo == 5.0
        assert c.mem_mb == 30.0
        assert c.paging_intensity == 1.0  # max wins


class TestResourceGrant:
    def test_from_demand_scales_everything(self):
        d = ResourceDemand(cpu_user=1.0, io_bi=100.0, net_out=200.0, swap_in=10.0)
        g = ResourceGrant.from_demand(d, 0.25)
        assert g.fraction == 0.25
        assert g.cpu_user == 0.25
        assert g.io_bi == 25.0
        assert g.net_out == 50.0
        assert g.swap_in == 2.5

    def test_idle_grant(self):
        g = ResourceGrant.idle()
        assert g.fraction == 1.0
        assert g.cpu_user == 0.0

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            ResourceGrant(fraction=1.5)
        with pytest.raises(ValueError):
            ResourceGrant(fraction=-0.1)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            ResourceGrant(fraction=0.5, io_bi=-1.0)
