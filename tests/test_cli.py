"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.qa.cli import main as qa_main


def test_list_apps(capsys):
    assert main(["list-apps"]) == 0
    out = capsys.readouterr().out
    assert "train-postmark" in out
    assert "specseis96-B" in out
    assert "training→MEM" in out


def test_classify_known_app(capsys):
    assert main(["classify", "xspim", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "class:" in out
    assert "xspim" in out


def test_classify_with_diagram(capsys):
    assert main(["classify", "xspim", "--diagram"]) == 0
    out = capsys.readouterr().out
    assert "+" in out  # diagram border


def test_classify_unknown_app(capsys):
    assert main(["classify", "fortnite"]) == 2
    assert "unknown application" in capsys.readouterr().out


def test_classify_memory_override(capsys):
    assert main(["classify", "ch3d", "--mem", "128"]) == 0


def test_table3_fast(capsys):
    assert main(["table3", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "postmark-nfs" in out
    assert "specseis96-A" not in out


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Concurrent" in out
    assert "sooner" in out


def test_fig4_short_horizon(capsys):
    assert main(["fig4", "--horizon", "600"]) == 0
    out = capsys.readouterr().out
    assert "{(SPN),(SPN),(SPN)}" in out
    assert "SPN improvement" in out


def test_cost_small(capsys):
    assert main(["cost", "--samples", "200"]) == 0
    out = capsys.readouterr().out
    assert "unit cost" in out


def test_validate_small(capsys):
    assert main(["validate", "--per-class", "1", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "run-level accuracy" in out
    assert "IDLE" in out  # confusion matrix header


def test_stages_command(capsys):
    assert main(["stages", "xspim"]) == 0
    out = capsys.readouterr().out
    assert "stages, dominant" in out
    assert "migration opportunities" in out


def test_stages_unknown_app(capsys):
    assert main(["stages", "crysis"]) == 2


def test_serve_bench_small(capsys):
    assert main(["serve", "bench", "--runs", "6", "--repeats", "2"]) == 0
    out = capsys.readouterr().out
    assert "bit-identical: True" in out
    assert "speedup:" in out


def test_serve_bench_json(capsys):
    assert main(["serve", "bench", "--runs", "6", "--repeats", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.split("...\n")[-1])
    assert payload["bit_identical"] is True
    assert payload["num_runs"] == 6


# ----------------------------------------------------------------------
# repro obs — telemetry plane verbs
# ----------------------------------------------------------------------


@pytest.fixture()
def _obs_cleanup():
    from repro import obs

    yield
    obs.disable()


def test_obs_dump_to_file(tmp_path, capsys, _obs_cleanup):
    target = tmp_path / "metrics.prom"
    assert main(["obs", "dump", "--no-run", "--output", str(target)]) == 0
    assert str(target) in capsys.readouterr().out
    assert target.exists()


def test_obs_dump_events_format(capsys, _obs_cleanup):
    from repro import obs

    obs.enable()
    obs.event("cli.test", k="v")
    assert main(["obs", "dump", "--no-run", "--format", "events"]) == 0
    out = capsys.readouterr().out
    assert json.loads(out.splitlines()[0])["name"] == "cli.test"


def test_obs_top_no_run(capsys, _obs_cleanup):
    assert main(["obs", "top", "--no-run"]) == 0
    assert "no series recorded" in capsys.readouterr().out


def test_obs_slo_no_run(capsys, _obs_cleanup):
    assert main(["obs", "slo", "--no-run"]) == 0
    out = capsys.readouterr().out
    assert "online-drop-rate" in out
    assert "overall: OK" in out


def test_obs_serve_short_duration(capsys, _obs_cleanup):
    assert main(
        ["obs", "serve", "--no-run", "--duration", "0.05", "--port", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "serving telemetry on http://127.0.0.1:" in out
    assert "telemetry server stopped" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_module_entry_point():
    import repro.__main__  # noqa: F401  (import side effects only under __main__)


# ----------------------------------------------------------------------
# python -m repro.qa check — smoke coverage
# ----------------------------------------------------------------------


def test_qa_check_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text('"""A clean module."""\n\nVALUE = 1\n')
    assert qa_main(["check", str(clean), "--no-baseline", "--strict"]) == 0
    assert "0 errors, 0 warnings" in capsys.readouterr().out


def test_qa_check_seeded_violation_exits_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('"""doc."""\n\n\ndef f(x=[]):\n    return x\n')
    assert qa_main(["check", str(bad), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "mutable-default" in out
    assert "bad.py:4" in out


def test_qa_check_json_output_parses(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('"""doc."""\n\n__all__ = ["f"]\n\n\ndef f(x=[]):\n    return x\n')
    assert qa_main(["check", str(bad), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["error"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "mutable-default"
    assert finding["line"] == 6
    assert finding["fingerprint"].startswith("mutable-default:")


def test_qa_check_baseline_grandfathers_finding(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('"""doc."""\n\n__all__ = ["f"]\n\n\ndef f(x=[]):\n    return x\n')
    baseline = tmp_path / "baseline.txt"
    assert qa_main(["check", str(bad), "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    assert qa_main(["check", str(bad), "--baseline", str(baseline), "--strict"]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_qa_rules_lists_every_rule(capsys):
    assert qa_main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("determinism", "layering", "shape-doc", "float-eq", "dead-code"):
        assert rule_id in out


def test_qa_check_unreadable_path_exits_two(tmp_path, capsys):
    assert qa_main(["check", str(tmp_path / "missing.py"), "--no-baseline"]) == 2
