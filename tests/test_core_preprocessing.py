"""Tests for expert metric selection and normalization."""

import numpy as np
import pytest

from repro.core.preprocessing import MetricSelector, Normalizer, Preprocessor
from repro.metrics.catalog import EXPERT_METRIC_NAMES, NUM_METRICS
from repro.metrics.series import SnapshotSeries


def make_series(m=10, seed=0):
    rng = np.random.default_rng(seed)
    return SnapshotSeries(
        node="VM1",
        timestamps=np.arange(1, m + 1, dtype=float),
        matrix=rng.uniform(0, 100, size=(NUM_METRICS, m)),
    )


class TestMetricSelector:
    def test_default_is_expert_set(self):
        selector = MetricSelector()
        assert selector.names == EXPERT_METRIC_NAMES
        assert selector.dimension == 8

    def test_transform_series_shape(self):
        fm = MetricSelector().transform_series(make_series(m=7))
        assert fm.shape == (7, 8)

    def test_custom_subset(self):
        selector = MetricSelector(names=("cpu_user", "load_one"))
        assert selector.dimension == 2

    def test_validation(self):
        with pytest.raises(KeyError):
            MetricSelector(names=("bogus",))
        with pytest.raises(ValueError):
            MetricSelector(names=())
        with pytest.raises(ValueError):
            MetricSelector(names=("cpu_user", "cpu_user"))


class TestNormalizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(1)
        x = rng.normal(50.0, 10.0, size=(500, 4))
        z = Normalizer().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_safe(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        z = Normalizer().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)
        assert np.all(np.isfinite(z))

    def test_transform_uses_training_statistics(self):
        norm = Normalizer().fit(np.array([[0.0], [10.0]]))
        z = norm.transform(np.array([[5.0]]))
        assert z[0, 0] == pytest.approx(0.0)
        z = norm.transform(np.array([[10.0]]))
        assert z[0, 0] == pytest.approx(1.0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-5, 5, size=(20, 3))
        norm = Normalizer().fit(x)
        assert np.allclose(norm.inverse_transform(norm.transform(x)), x)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Normalizer().transform(np.zeros((1, 1)))
        with pytest.raises(RuntimeError):
            Normalizer().inverse_transform(np.zeros((1, 1)))

    def test_dimension_mismatch(self):
        norm = Normalizer().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            norm.transform(np.zeros((5, 4)))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            Normalizer().fit(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            Normalizer().fit(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            Normalizer().fit(np.array([[np.inf]]))


class TestPreprocessor:
    def test_fit_pools_training_series(self):
        a, b = make_series(m=5, seed=1), make_series(m=7, seed=2)
        prep = Preprocessor().fit([a, b])
        za = prep.transform_series(a)
        zb = prep.transform_series(b)
        pooled = np.vstack([za, zb])
        assert np.allclose(pooled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(pooled.std(axis=0), 1.0, atol=1e-10)

    def test_fit_requires_series(self):
        with pytest.raises(ValueError):
            Preprocessor().fit([])

    def test_transform_features_matches_series_path(self):
        series = make_series(m=6, seed=3)
        prep = Preprocessor().fit([series])
        raw = series.feature_matrix(EXPERT_METRIC_NAMES)
        assert np.allclose(prep.transform_features(raw), prep.transform_series(series))
