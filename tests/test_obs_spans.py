"""Tests for hierarchical tracing spans and deterministic fake clocks."""

import pytest

from repro import obs
from repro.obs.registry import SPAN_HISTOGRAM_NAME, MetricsRegistry
from repro.obs.spans import SpanRecord, null_span, render_trace


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class FakeClock:
    """Deterministic clock advancing a fixed step per reading."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        now = self.t
        self.t += self.step
        return now


class TestSpanHierarchy:
    def test_root_span_has_no_parent(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("root"):
            pass
        (record,) = reg.spans()
        assert record.name == "root"
        assert record.parent is None
        assert record.depth == 0

    def test_nested_spans_record_parent_and_depth(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("outer"):
            with reg.span("middle"):
                with reg.span("inner"):
                    pass
        by_name = {s.name: s for s in reg.spans()}
        assert by_name["outer"].parent is None
        assert by_name["middle"].parent == "outer"
        assert by_name["middle"].depth == 1
        assert by_name["inner"].parent == "middle"
        assert by_name["inner"].depth == 2

    def test_siblings_share_parent(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("parent"):
            with reg.span("a"):
                pass
            with reg.span("b"):
                pass
        by_name = {s.name: s for s in reg.spans()}
        assert by_name["a"].parent == "parent"
        assert by_name["b"].parent == "parent"
        assert by_name["a"].depth == by_name["b"].depth == 1

    def test_spans_recorded_in_completion_order(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        assert [s.name for s in reg.spans()] == ["inner", "outer"]

    def test_exception_still_closes_span(self):
        reg = MetricsRegistry(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                with reg.span("failing"):
                    raise RuntimeError("boom")
        names = [s.name for s in reg.spans()]
        assert names == ["failing", "outer"]
        # The stack unwound fully: a new span is a root again.
        with reg.span("after"):
            pass
        assert reg.spans()[-1].parent is None


class TestDeterminism:
    def test_fake_clock_durations_are_exact(self):
        """Under an injected fake clock the trace is bit-reproducible."""

        def run():
            reg = MetricsRegistry(clock=FakeClock(step=1.0))
            with reg.span("outer"):
                with reg.span("inner"):
                    pass
            return reg.spans()

        first, second = run(), run()
        assert first == second
        by_name = {s.name: s for s in first}
        # FakeClock readings: outer start=0, inner start=1, inner end=2,
        # outer end=3 → inner duration 1.0, outer duration 3.0.  Span ids
        # count up from 1 in entry order; parent ids follow the stack.
        assert by_name["inner"] == SpanRecord("inner", "outer", 1, 1.0, 1.0, 2, 1)
        assert by_name["outer"] == SpanRecord("outer", None, 0, 0.0, 3.0, 1, None)

    def test_per_span_clock_override(self):
        reg = MetricsRegistry(clock=FakeClock(step=1.0))
        with reg.span("fast", clock=FakeClock(step=0.25)):
            pass
        (record,) = reg.spans()
        assert record.duration_s == 0.25

    def test_span_observes_duration_histogram(self):
        reg = MetricsRegistry(clock=FakeClock(step=0.5))
        with reg.span("stage"):
            pass
        h = reg.histogram(SPAN_HISTOGRAM_NAME, span="stage")
        assert h.count == 1
        assert h.sum == 0.5

    def test_trace_capacity_bounds_buffer(self):
        reg = MetricsRegistry(clock=FakeClock(), trace_capacity=3)
        for i in range(5):
            with reg.span(f"s{i}"):
                pass
        assert [s.name for s in reg.spans()] == ["s2", "s3", "s4"]

    def test_trace_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(trace_capacity=0)


class TestNullSpanAndRender:
    def test_null_span_is_shared_singleton(self):
        assert null_span() is null_span()

    def test_facade_span_disabled_is_null(self):
        assert obs.span("anything") is null_span()

    def test_facade_span_enabled_records(self):
        obs.enable(clock=FakeClock())
        with obs.span("live"):
            pass
        assert [s.name for s in obs.get_registry().spans()] == ["live"]

    def test_render_trace_indents_by_depth(self):
        # Legacy id-less records keep their recorded depth, ordered by
        # start time (the tree reconstruction needs span ids).
        spans = [
            SpanRecord("inner", "outer", 1, 1.0, 0.002),
            SpanRecord("outer", None, 0, 0.0, 0.004),
        ]
        text = render_trace(spans)
        assert text == "outer  4.000 ms\n  inner  2.000 ms"

    def test_render_trace_empty(self):
        assert render_trace([]) == ""
