"""Tests for the phase-structured workload model."""

import pytest

from repro.vm.resources import ResourceDemand
from repro.workloads.base import (
    Phase,
    Workload,
    WorkloadInstance,
    constant_workload,
    cycle_phases,
    scaled_workload,
)


def two_phase_workload():
    return Workload(
        name="w",
        phases=(
            Phase("a", ResourceDemand(cpu_user=1.0), work=10.0),
            Phase("b", ResourceDemand(io_bi=100.0), work=20.0),
        ),
    )


class TestPhaseAndWorkload:
    def test_phase_requires_positive_work(self):
        with pytest.raises(ValueError):
            Phase("p", ResourceDemand(), work=0.0)

    def test_workload_requires_phases(self):
        with pytest.raises(ValueError):
            Workload(name="w", phases=())

    def test_solo_duration(self):
        assert two_phase_workload().solo_duration == 30.0

    def test_max_working_set(self):
        w = Workload(
            name="w",
            phases=(
                Phase("a", ResourceDemand(mem_mb=10.0), 1.0),
                Phase("b", ResourceDemand(mem_mb=99.0), 1.0),
            ),
        )
        assert w.max_working_set_mb() == 99.0

    def test_cycle_phases_repeats_with_names(self):
        cycle = (Phase("x", ResourceDemand(), 1.0), Phase("y", ResourceDemand(), 2.0))
        phases = cycle_phases("c", cycle, repeats=3)
        assert len(phases) == 6
        assert phases[0].name == "c0-x"
        assert phases[5].name == "c2-y"
        assert sum(p.work for p in phases) == 9.0

    def test_cycle_phases_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            cycle_phases("c", (Phase("x", ResourceDemand(), 1.0),), repeats=0)

    def test_scaled_workload_duration(self):
        w = scaled_workload(two_phase_workload(), duration=60.0)
        assert w.solo_duration == pytest.approx(60.0)
        # proportions preserved
        assert w.phases[0].work == pytest.approx(20.0)

    def test_scaled_workload_rejects_non_positive(self):
        with pytest.raises(ValueError):
            scaled_workload(two_phase_workload(), 0.0)

    def test_constant_workload(self):
        w = constant_workload("k", ResourceDemand(cpu_user=0.5), 42.0, remote_vm="VM4")
        assert w.solo_duration == 42.0
        assert w.phases[0].remote_vm == "VM4"


class TestWorkloadInstance:
    def test_full_speed_completion(self):
        inst = WorkloadInstance(two_phase_workload(), vm_name="VM1")
        for t in range(30):
            inst.advance(1.0, dt=1.0, now=float(t))
        assert inst.done
        assert inst.completions == 1
        assert inst.elapsed() == pytest.approx(30.0)

    def test_half_speed_takes_twice_as_long(self):
        inst = WorkloadInstance(two_phase_workload(), vm_name="VM1")
        steps = 0
        while not inst.done:
            inst.advance(0.5, dt=1.0, now=float(steps))
            steps += 1
        assert steps == 60

    def test_phase_transition_mid_tick(self):
        """Work crossing a phase boundary within one tick is not lost."""
        w = Workload(
            name="w",
            phases=(
                Phase("a", ResourceDemand(cpu_user=1.0), work=0.5),
                Phase("b", ResourceDemand(cpu_user=1.0), work=0.5),
            ),
        )
        inst = WorkloadInstance(w, vm_name="VM1")
        inst.advance(1.0, dt=1.0, now=0.0)
        assert inst.done

    def test_current_phase_progression(self):
        inst = WorkloadInstance(two_phase_workload(), vm_name="VM1")
        assert inst.current_phase().name == "a"
        for t in range(10):
            inst.advance(1.0, 1.0, float(t))
        assert inst.current_phase().name == "b"

    def test_current_phase_after_done_raises(self):
        w = constant_workload("k", ResourceDemand(cpu_user=1.0), 1.0)
        inst = WorkloadInstance(w, vm_name="VM1")
        inst.advance(1.0, 1.0, 0.0)
        assert inst.done
        with pytest.raises(RuntimeError):
            inst.current_phase()
        with pytest.raises(RuntimeError):
            inst.advance(1.0, 1.0, 1.0)

    def test_progress_fraction_monotonic(self):
        inst = WorkloadInstance(two_phase_workload(), vm_name="VM1")
        last = inst.progress_fraction()
        for t in range(29):
            inst.advance(1.0, 1.0, float(t))
            if not inst.done:
                cur = inst.progress_fraction()
                assert cur >= last
                last = cur

    def test_looping_counts_completions(self):
        w = constant_workload("k", ResourceDemand(cpu_user=1.0), 10.0)
        inst = WorkloadInstance(w, vm_name="VM1", loop=True)
        for t in range(35):
            inst.advance(1.0, 1.0, float(t))
        assert inst.completions == 3
        assert not inst.done
        assert inst.total_jobs() == pytest.approx(3.5)

    def test_start_time_gates_activity(self):
        inst = WorkloadInstance(two_phase_workload(), vm_name="VM1", start_time=100.0)
        assert not inst.has_started(50.0)
        assert inst.has_started(100.0)

    def test_invalid_inputs(self):
        inst = WorkloadInstance(two_phase_workload(), vm_name="VM1")
        with pytest.raises(ValueError):
            inst.advance(1.5, 1.0, 0.0)
        with pytest.raises(ValueError):
            inst.advance(0.5, 0.0, 0.0)
        with pytest.raises(ValueError):
            WorkloadInstance(two_phase_workload(), vm_name="VM1", start_time=-1.0)
