"""End-to-end request tracing through the ingest plane and the service.

Everything runs under a deterministic, thread-safe injected clock (each
read returns the next integer), so latency attribution is asserted
*exactly*: the boundary segments of every trace telescope to the root
span's end-to-end duration bit for bit.
"""

import itertools
import random
import threading

import numpy as np
import pytest

from repro import obs
from repro.core.pipeline import ApplicationClassifier
from repro.ingest import IngestPlane, MulticastChannel, synthetic_fleet
from repro.obs.context import PIPELINE_STAGE_NAMES, TailSampler
from repro.serve.service import ClassificationService
from repro.serve.stream import drain_trace_contexts


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


class TickClock:
    """Thread-safe fake clock: every read is the next integer second."""

    def __init__(self):
        self._ticks = itertools.count(1)
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return float(next(self._ticks))


@pytest.fixture()
def traced(classifier):
    """(registry, classifier) with obs enabled on one shared fake clock."""
    clock = TickClock()
    registry = obs.enable(clock=clock)
    registry.reset()
    previous = classifier.clock
    classifier.clock = clock
    yield registry, classifier
    classifier.clock = previous
    obs.disable()


def roots(registry):
    return [s for s in registry.spans() if s.name == "serve.request" and s.span_id]


def children_of(registry, root):
    return [s for s in registry.spans() if s.parent_id == root.span_id]


def make_series(classifier, n=4, seed=0):
    """One valid snapshot series, built without minting any trace ids."""
    from repro.metrics.series import SnapshotSeries

    fleet = synthetic_fleet(1, n, seed=seed)
    return SnapshotSeries(
        node=fleet[0].node,
        timestamps=np.array([a.timestamp for a in fleet]),
        matrix=np.stack([a.values for a in fleet], axis=1),
    )


class TestDirectSubmit:
    def test_one_submission_produces_one_complete_trace(self, traced):
        registry, classifier = traced
        series = make_series(classifier)
        with ClassificationService(classifier, batch_size=1, workers=1) as service:
            service.classify(series, timeout=10)
        (root,) = roots(registry)
        assert root.trace_id
        kids = children_of(registry, root)
        assert [k.name for k in kids] == [
            "serve.queue.wait",
            "serve.batch.wait",
            "pipeline.classify",
        ]
        # Exact latency attribution: the segments telescope to the
        # root's end-to-end duration under the integer fake clock.
        assert sum(k.duration_s for k in kids) == root.duration_s
        tail = kids[-1]
        stages = [s for s in registry.spans() if s.parent_id == tail.span_id]
        assert [s.name for s in stages] == [
            f"pipeline.stage.{name}" for name in PIPELINE_STAGE_NAMES
        ]
        # Stage children are contiguous (each starts where the previous
        # ended) and stay inside the compute tail; they cover the
        # *kernel's* stage durations, not the batch bookkeeping around
        # it, so they sum to at most the tail.
        t = tail.start_s
        for stage in stages:
            assert stage.start_s == t
            t += stage.duration_s
        assert sum(s.duration_s for s in stages) <= tail.duration_s
        assert all(s.trace_id == root.trace_id for s in [*kids, *stages])

    def test_attribution_histograms_sum_to_end_to_end(self, traced):
        registry, classifier = traced
        series = make_series(classifier)
        with ClassificationService(classifier, batch_size=1, workers=1) as service:
            service.classify(series, timeout=10)
        (root,) = roots(registry)
        queue_wait = registry.histogram("serve.queue_wait.seconds")
        batch_wait = registry.histogram("serve.batch_wait.seconds")
        assert queue_wait.count == 1
        assert batch_wait.count == 1
        compute = next(
            k.duration_s
            for k in children_of(registry, root)
            if k.name == "pipeline.classify"
        )
        assert queue_wait.sum + batch_wait.sum + compute == root.duration_s
        for hist in (queue_wait, batch_wait):
            (exemplar,) = hist.exemplars()
            assert exemplar["trace_id"] == root.trace_id

    def test_multiple_workers_each_result_has_a_complete_trace(self, traced):
        registry, classifier = traced
        series = [make_series(classifier, seed=i) for i in range(6)]
        with ClassificationService(
            classifier, batch_size=2, max_wait_s=0.005, workers=2, max_queue=64
        ) as service:
            futures = [service.submit(s) for s in series]
            for f in futures:
                f.result(timeout=10)
        all_roots = roots(registry)
        assert len(all_roots) == 6
        assert len({r.trace_id for r in all_roots}) == 6
        for root in all_roots:
            kids = children_of(registry, root)
            assert [k.name for k in kids] == [
                "serve.queue.wait",
                "serve.batch.wait",
                "pipeline.classify",
            ]
            assert sum(k.duration_s for k in kids) == root.duration_s
            stages = [
                s for s in registry.spans() if s.parent_id == kids[-1].span_id
            ]
            assert len(stages) == len(PIPELINE_STAGE_NAMES)


class TestIngestToService:
    def test_trace_survives_ring_drain_and_queue(self, traced):
        registry, classifier = traced
        channel = MulticastChannel()
        plane = IngestPlane(channel, capacity=64)
        for a in synthetic_fleet(2, 4, seed=0):
            channel.announce(a)
        with ClassificationService(
            classifier, batch_size=4, max_wait_s=0.005, workers=2
        ) as service:
            futures = service.submit_drain(plane.drain())
            assert len(futures) == 2
            for f in futures:
                f.result(timeout=10)
        all_roots = roots(registry)
        assert len(all_roots) == 2
        for root in all_roots:
            kids = children_of(registry, root)
            assert [k.name for k in kids] == [
                "ingest.buffer",
                "ingest.handoff",
                "serve.queue.wait",
                "serve.batch.wait",
                "pipeline.classify",
            ]
            assert sum(k.duration_s for k in kids) == root.duration_s
            stages = [
                s for s in registry.spans() if s.parent_id == kids[-1].span_id
            ]
            assert [s.name for s in stages] == [
                f"pipeline.stage.{name}" for name in PIPELINE_STAGE_NAMES
            ]
        drain_hist = registry.histogram("ingest.drain_to_classify.seconds")
        assert drain_hist.count == 2
        assert drain_hist.exemplars()

    def test_coalesced_rows_counted(self, traced):
        registry, classifier = traced
        channel = MulticastChannel()
        plane = IngestPlane(channel, capacity=64)
        for a in synthetic_fleet(1, 5, seed=0):
            channel.announce(a)
        batch = plane.drain()
        contexts = drain_trace_contexts(batch)
        assert len(contexts) == 1
        assert contexts[0].mark_time("ingest.push") is not None
        assert contexts[0].mark_time("ingest.drain") is not None
        coalesced = next(
            i for i in registry.instruments() if i.name == "obs.traces.coalesced"
        )
        assert coalesced.value == 4  # 5 rows, one representative trace

    def test_drain_without_tracing_yields_null_contexts(self, classifier):
        channel = MulticastChannel()
        plane = IngestPlane(channel, capacity=64)
        for a in synthetic_fleet(1, 3, seed=0):
            channel.announce(a)
        contexts = drain_trace_contexts(plane.drain())
        assert len(contexts) == 1
        assert not contexts[0]


class TestTailSampling:
    def test_boring_traces_follow_the_seeded_pattern(self, traced):
        registry, classifier = traced
        # A huge slow threshold keeps fake-clock durations out of the
        # always-keep path, isolating the seeded probabilistic draws.
        registry.sampler = TailSampler(keep_ratio=0.5, slow_threshold_s=1e9, seed=0)
        series = make_series(classifier)
        n = 8
        with ClassificationService(classifier, batch_size=1, workers=1) as service:
            for _ in range(n):
                service.classify(series, timeout=10)  # serial: one draw per trace
        rng = random.Random(0)
        expected_kept = [i + 1 for i in range(n) if rng.random() < 0.5]
        assert sorted(r.trace_id for r in roots(registry)) == expected_kept
        counters = {
            (i.name, dict(i.labels).get("reason")): i.value
            for i in registry.instruments()
            if i.name.startswith("obs.traces.")
        }
        assert counters[("obs.traces.kept", "sampled")] == len(expected_kept)
        assert counters[("obs.traces.dropped", None)] == n - len(expected_kept)

    def test_dropped_traces_leave_no_spans_but_results_flow(self, traced):
        registry, classifier = traced
        registry.sampler = TailSampler(keep_ratio=0.0, slow_threshold_s=1e9, seed=0)
        series = make_series(classifier)
        with ClassificationService(classifier, batch_size=1, workers=1) as service:
            result = service.classify(series, timeout=10)
        assert result.num_samples == len(series)
        # No trace-carrying spans survive; the worker's own untraced
        # batch span (trace_id 0) is not part of any request trace.
        assert [s for s in registry.spans() if s.trace_id] == []
        # Attribution histograms are complete even for dropped traces.
        assert registry.histogram("serve.queue_wait.seconds").count == 1

    def test_errored_traces_always_kept(self, traced):
        registry, classifier = traced
        registry.sampler = TailSampler(keep_ratio=0.0, slow_threshold_s=1e9, seed=0)
        series = make_series(classifier)
        service = ClassificationService(classifier, batch_size=1, workers=1)
        # Sabotage the batch kernel after startup: the worker's classify
        # raises NotTrainedError and the request fails.
        service.batch.classifier = ApplicationClassifier()
        future = service.submit(series)
        with pytest.raises(Exception):
            future.result(timeout=10)
        service.shutdown()
        (root,) = roots(registry)
        kids = children_of(registry, root)
        assert [k.name for k in kids] == [
            "serve.queue.wait",
            "serve.batch.wait",
            "serve.failed",
        ]
        assert sum(k.duration_s for k in kids) == root.duration_s
        kept = next(
            i
            for i in registry.instruments()
            if i.name == "obs.traces.kept" and dict(i.labels).get("reason") == "error"
        )
        assert kept.value == 1


class TestUntracedPathsUnchanged:
    def test_disabled_service_records_nothing(self, classifier):
        series = make_series(classifier)
        with ClassificationService(classifier, batch_size=1, workers=1) as service:
            result = service.classify(series, timeout=10)
        assert result.num_samples == len(series)
        assert obs.get_registry().spans() == []
        assert obs.get_registry().instruments() == []

    def test_traced_batch_results_match_untraced(self, traced):
        registry, classifier = traced
        series = make_series(classifier)
        from repro.serve.batch import BatchClassifier

        batch = BatchClassifier(classifier)
        plain = batch.classify_batch([series])
        traced_results, stage_seconds = batch.classify_batch_traced([series])
        assert len(stage_seconds) == len(PIPELINE_STAGE_NAMES)
        assert np.array_equal(plain[0].class_vector, traced_results[0].class_vector)
        assert plain[0].application_class is traced_results[0].application_class
