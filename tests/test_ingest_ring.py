"""Per-node announcement ring: wraparound, overflow, lazy re-ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ingest import AnnouncementRing, DEFAULT_RING_CAPACITY
from repro.metrics.catalog import NUM_METRICS


def row(fill: float) -> np.ndarray:
    return np.full(NUM_METRICS, fill, dtype=np.float64)


def drain_all(ring: AnnouncementRing) -> tuple[np.ndarray, np.ndarray]:
    n = ring.pending_until(np.inf)
    ts = np.empty(n)
    vals = np.empty((n, NUM_METRICS))
    ring.drain_into(n, ts, vals)
    return ts, vals


class TestBasics:
    def test_starts_empty_with_preallocated_storage(self):
        ring = AnnouncementRing("node00")
        assert len(ring) == 0
        assert ring.capacity == DEFAULT_RING_CAPACITY
        assert ring.timestamps.shape == (DEFAULT_RING_CAPACITY,)
        assert ring.values.shape == (DEFAULT_RING_CAPACITY, NUM_METRICS)
        assert ring.occupancy() == 0.0

    def test_push_and_drain_round_trip(self):
        ring = AnnouncementRing("n", capacity=8)
        for i in range(5):
            assert ring.push(float(i), row(i)) is True
        assert len(ring) == 5
        assert ring.occupancy() == pytest.approx(5 / 8)
        ts, vals = drain_all(ring)
        assert ts.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert vals[:, 0].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(ring) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            AnnouncementRing("n", capacity=0)


class TestWraparound:
    def test_drain_after_wraparound_preserves_order(self):
        ring = AnnouncementRing("n", capacity=4)
        for i in range(4):
            ring.push(float(i), row(i))
        ts = np.empty(2)
        vals = np.empty((2, NUM_METRICS))
        ring.drain_into(2, ts, vals)
        assert ts.tolist() == [0.0, 1.0]
        # These two land in the freed slots at the physical front.
        ring.push(4.0, row(4))
        ring.push(5.0, row(5))
        ts, vals = drain_all(ring)
        assert ts.tolist() == [2.0, 3.0, 4.0, 5.0]
        assert vals[:, -1].tolist() == [2.0, 3.0, 4.0, 5.0]
        assert ring.overflowed == 0

    def test_many_wraparound_cycles(self):
        ring = AnnouncementRing("n", capacity=3)
        t = 0.0
        for _ in range(7):
            ring.push(t, row(t))
            t += 1.0
            ring.push(t, row(t))
            t += 1.0
            ts, _ = drain_all(ring)
            assert ts.tolist() == [t - 2.0, t - 1.0]
        assert ring.pushed == 14
        assert ring.overflowed == 0


class TestOverflow:
    def test_overflow_drops_oldest_and_counts(self):
        ring = AnnouncementRing("n", capacity=3)
        assert ring.push(0.0, row(0)) is True
        assert ring.push(1.0, row(1)) is True
        assert ring.push(2.0, row(2)) is True
        assert ring.push(3.0, row(3)) is False
        assert ring.push(4.0, row(4)) is False
        assert ring.overflowed == 2
        assert ring.pushed == 5
        assert len(ring) == 3
        ts, _ = drain_all(ring)
        assert ts.tolist() == [2.0, 3.0, 4.0], "the freshest entries survive"

    def test_accounting_balances(self):
        ring = AnnouncementRing("n", capacity=4)
        for i in range(11):
            ring.push(float(i), row(i))
        assert ring.pushed - ring.overflowed == len(ring)  # nothing drained yet
        ts, _ = drain_all(ring)
        assert ts.shape[0] == 4


class TestOutOfOrder:
    def test_out_of_order_push_restored_at_drain(self):
        ring = AnnouncementRing("n", capacity=8)
        for t in (1.0, 3.0, 2.0, 5.0, 4.0):
            ring.push(t, row(t))
        ts, vals = drain_all(ring)
        assert ts.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert vals[:, 3].tolist() == [1.0, 2.0, 3.0, 4.0, 5.0], "rows move with timestamps"

    def test_equal_timestamps_keep_arrival_order(self):
        ring = AnnouncementRing("n", capacity=8)
        ring.push(2.0, row(10))
        ring.push(1.0, row(20))
        ring.push(1.0, row(21))
        ts, vals = drain_all(ring)
        assert ts.tolist() == [1.0, 1.0, 2.0]
        assert vals[:, 0].tolist() == [20.0, 21.0, 10.0], "stable sort keeps arrival order"

    def test_restore_order_after_wraparound(self):
        ring = AnnouncementRing("n", capacity=4)
        for t in (0.0, 1.0, 2.0, 3.0):
            ring.push(t, row(t))
        ts = np.empty(3)
        vals = np.empty((3, NUM_METRICS))
        ring.drain_into(3, ts, vals)
        ring.push(5.0, row(5))
        ring.push(4.0, row(4))  # out of order, wrapped region
        ts, _ = drain_all(ring)
        assert ts.tolist() == [3.0, 4.0, 5.0]


class TestWatermark:
    def test_pending_until_cuts_at_watermark(self):
        ring = AnnouncementRing("n", capacity=8)
        for t in (1.0, 2.0, 3.0, 4.0):
            ring.push(t, row(t))
        assert ring.pending_until(0.5) == 0
        assert ring.pending_until(2.0) == 2, "watermark is inclusive"
        assert ring.pending_until(3.5) == 3
        assert ring.pending_until(np.inf) == 4

    def test_pending_until_spanning_the_wrap(self):
        ring = AnnouncementRing("n", capacity=4)
        for t in (0.0, 1.0, 2.0, 3.0):
            ring.push(t, row(t))
        ts = np.empty(2)
        vals = np.empty((2, NUM_METRICS))
        ring.drain_into(2, ts, vals)
        ring.push(4.0, row(4))
        ring.push(5.0, row(5))  # physically wrapped
        assert ring.pending_until(4.5) == 3

    def test_peek_does_not_consume(self):
        ring = AnnouncementRing("n", capacity=4)
        for t in (1.0, 2.0, 3.0):
            ring.push(t, row(t))
        ring.pending_until(np.inf)
        out = np.empty(4)
        ring.peek_timestamps_into(3, out)
        assert out[:3].tolist() == [1.0, 2.0, 3.0]
        assert len(ring) == 3
