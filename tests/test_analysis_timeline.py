"""Tests for class timeline rendering."""

import numpy as np
import pytest

from repro.analysis.timeline import render_stage_summary, render_timeline
from repro.core.labels import ClassComposition
from repro.core.pipeline import ClassificationResult, StageTimings
from repro.core.stages import segment_stages
from repro.metrics.catalog import NUM_METRICS
from repro.metrics.series import SnapshotSeries


def make_result(vec):
    vec = np.asarray(vec, dtype=np.int64)
    comp = ClassComposition.from_class_vector(vec)
    return ClassificationResult(
        node="n",
        num_samples=vec.size,
        class_vector=vec,
        composition=comp,
        application_class=comp.dominant(),
        category="x",
        scores=np.zeros((vec.size, 2)),
        timings=StageTimings(),
    )


def test_short_run_one_glyph_per_snapshot():
    result = make_result([2, 2, 1, 1, 3])
    text = render_timeline(result, width=72)
    assert "CCIIN" in text
    assert "C=CPU" in text and "I=IO" in text and "N=NET" in text


def test_long_run_downsampled_by_majority():
    vec = [2] * 500 + [1] * 500
    text = render_timeline(make_result(vec), width=10)
    strip = text.splitlines()[1]
    assert strip == "CCCCCIIIII"


def test_header_with_timestamps():
    result = make_result([2, 2, 2])
    text = render_timeline(result, timestamps=np.array([5.0, 10.0, 15.0]))
    assert text.startswith("t=5s … t=15s")


def test_width_validation():
    with pytest.raises(ValueError):
        render_timeline(make_result([2]), width=0)


def test_stage_summary():
    vec = [2] * 6 + [1] * 6
    series = SnapshotSeries(
        node="n",
        timestamps=np.arange(1, 13) * 5.0,
        matrix=np.zeros((NUM_METRICS, 12)),
    )
    analysis = segment_stages(make_result(vec), series)
    text = render_stage_summary(analysis)
    assert text.startswith("2 stages, dominant IDLE") or text.startswith("2 stages, dominant")
    assert "CPU" in text and "IO" in text


def test_stage_summary_truncation():
    vec = [2, 1] * 15  # 30 alternating stages
    series = SnapshotSeries(
        node="n",
        timestamps=np.arange(1, 31) * 5.0,
        matrix=np.zeros((NUM_METRICS, 30)),
    )
    analysis = segment_stages(make_result(vec), series, smoothing_window=1)
    text = render_stage_summary(analysis, max_stages=5)
    assert "more stages" in text
    with pytest.raises(ValueError):
        render_stage_summary(analysis, max_stages=0)
