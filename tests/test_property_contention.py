"""Property-based tests for the max-min allocator and related invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import ClassComposition
from repro.sim.contention import interference_efficiency, max_min_factors

demands_strategy = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False), min_size=0, max_size=12
)
capacity_strategy = st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False)


@given(demands=demands_strategy, capacity=capacity_strategy)
@settings(max_examples=200, deadline=None)
def test_capacity_never_exceeded(demands, capacity):
    factors = max_min_factors(demands, capacity)
    granted = sum(d * f for d, f in zip(demands, factors))
    assert granted <= capacity * (1 + 1e-9) + 1e-9


@given(demands=demands_strategy, capacity=capacity_strategy)
@settings(max_examples=200, deadline=None)
def test_factors_in_unit_interval(demands, capacity):
    for f in max_min_factors(demands, capacity):
        assert 0.0 <= f <= 1.0 + 1e-12


@given(demands=demands_strategy, capacity=capacity_strategy)
@settings(max_examples=200, deadline=None)
def test_no_throttling_when_capacity_suffices(demands, capacity):
    total = sum(demands)
    if total <= capacity:
        assert all(f == 1.0 for f in max_min_factors(demands, capacity))


@given(demands=demands_strategy, capacity=capacity_strategy)
@settings(max_examples=200, deadline=None)
def test_work_conserving_when_oversubscribed(demands, capacity):
    """If demand exceeds capacity, (almost) all capacity is handed out."""
    total = sum(demands)
    if total > capacity:
        factors = max_min_factors(demands, capacity)
        granted = sum(d * f for d, f in zip(demands, factors))
        assert granted >= capacity * (1 - 1e-9) - 1e-9


@given(demands=demands_strategy, capacity=capacity_strategy)
@settings(max_examples=200, deadline=None)
def test_max_min_fairness_monotone_in_demand(demands, capacity):
    """A smaller demand never receives a smaller grant than a bigger one."""
    factors = max_min_factors(demands, capacity)
    grants = [d * f for d, f in zip(demands, factors)]
    order = np.argsort(demands)
    sorted_grants = [grants[i] for i in order]
    assert all(
        g2 >= g1 - 1e-9 for g1, g2 in zip(sorted_grants, sorted_grants[1:])
    )


@given(n_vm=st.integers(1, 6), extra=st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_interference_monotone_in_co_runners(n_vm, extra):
    e1 = interference_efficiency(n_vm, n_vm + extra)
    e2 = interference_efficiency(n_vm + 1, n_vm + 1 + extra)
    assert 0 < e1 <= 1.0
    assert e2 < e1 or (e1 == e2 == 1.0)


@given(
    counts=st.lists(st.integers(0, 50), min_size=5, max_size=5).filter(
        lambda c: sum(c) > 0
    )
)
@settings(max_examples=100, deadline=None)
def test_composition_from_any_class_vector(counts):
    vec = np.concatenate([np.full(c, i, dtype=np.int64) for i, c in enumerate(counts)])
    comp = ClassComposition.from_class_vector(vec)
    assert sum(comp.fractions) == 1.0 or abs(sum(comp.fractions) - 1.0) < 1e-9
    assert comp.dominant() == np.argmax(counts) or counts[int(comp.dominant())] == max(counts)
