"""Tests for Snapshot (one column of the A(n×m) data pool)."""

import numpy as np
import pytest

from repro.metrics.catalog import ALL_METRIC_NAMES, NUM_METRICS, metric_index
from repro.metrics.snapshot import Snapshot


def make_snapshot(node="VM1", t=5.0, fill=1.0):
    return Snapshot(node=node, timestamp=t, values=np.full(NUM_METRICS, fill))


def test_snapshot_basic_fields():
    s = make_snapshot()
    assert s.node == "VM1"
    assert s.timestamp == 5.0
    assert s.values.shape == (NUM_METRICS,)


def test_snapshot_values_read_only():
    s = make_snapshot()
    with pytest.raises(ValueError):
        s.values[0] = 99.0


def test_snapshot_rejects_wrong_shape():
    with pytest.raises(ValueError, match="shape"):
        Snapshot(node="VM1", timestamp=0.0, values=np.zeros(5))


def test_snapshot_rejects_non_finite():
    bad = np.zeros(NUM_METRICS)
    bad[3] = np.nan
    with pytest.raises(ValueError, match="finite"):
        Snapshot(node="VM1", timestamp=0.0, values=bad)


def test_getitem_by_metric_name():
    values = np.zeros(NUM_METRICS)
    values[metric_index("io_bi")] = 123.0
    s = Snapshot(node="VM1", timestamp=0.0, values=values)
    assert s["io_bi"] == 123.0
    assert s["cpu_user"] == 0.0


def test_getitem_unknown_metric_raises():
    with pytest.raises(KeyError):
        make_snapshot()["made_up"]


def test_as_dict_covers_all_metrics():
    d = make_snapshot(fill=2.5).as_dict()
    assert set(d) == set(ALL_METRIC_NAMES)
    assert all(v == 2.5 for v in d.values())


def test_from_mapping_partial_fill():
    s = Snapshot.from_mapping("VM2", 10.0, {"cpu_user": 80.0, "swap_out": 5.0}, default=-1.0)
    assert s["cpu_user"] == 80.0
    assert s["swap_out"] == 5.0
    assert s["io_bi"] == -1.0


def test_from_mapping_unknown_metric_raises():
    with pytest.raises(KeyError):
        Snapshot.from_mapping("VM1", 0.0, {"bogus": 1.0})


def test_select_returns_ordered_copy():
    s = Snapshot.from_mapping("VM1", 0.0, {"io_bi": 7.0, "cpu_user": 3.0})
    sel = s.select(["io_bi", "cpu_user"])
    assert sel.tolist() == [7.0, 3.0]
    sel[0] = 100.0  # must not affect the snapshot
    assert s["io_bi"] == 7.0


def test_snapshot_copies_input_array():
    values = np.zeros(NUM_METRICS)
    s = Snapshot(node="VM1", timestamp=0.0, values=values)
    values[0] = 42.0
    assert s.values[0] == 0.0
