"""Drained-batch classification: bit-identity with the per-announcement path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ClassifierConfig
from repro.core.pipeline import ApplicationClassifier
from repro.ingest import IngestPlane, MulticastChannel, synthetic_fleet
from repro.serve.batch import BatchClassifier
from repro.serve.service import ClassificationService
from repro.serve.stream import drain_to_series, run_ingest_benchmark
from repro.core.online import OnlineClassifier
from repro.metrics.catalog import NUM_METRICS


@pytest.fixture(scope="module")
def classifier_f32(training_outcome):
    """A float32 tolerance-mode model refit on the session's training runs."""
    clf = ApplicationClassifier.from_config(ClassifierConfig(compute_dtype="float32"))
    clf.train(
        [
            (run.series, training_outcome.labels[key])
            for key, run in training_outcome.runs.items()
        ]
    )
    return clf


def run_both_arms(classifier, announcements, *, pump_rows=None, lateness_s=0.0):
    """Feed *announcements* through push and pull modes; return both classifiers."""
    push_channel = MulticastChannel()
    push_online = OnlineClassifier(classifier, push_channel)
    for announcement in announcements:
        push_channel.announce(announcement)

    pull_channel = MulticastChannel()
    plane = IngestPlane(pull_channel, lateness_s=lateness_s)
    pull_online = OnlineClassifier(classifier, plane)
    for announcement in announcements:
        pull_channel.announce(announcement)
    drained = []
    while True:
        result = pull_online.pump(pump_rows)
        if len(result) == 0:
            break
        drained.append(result)
    if plane.buffered:
        drained.append(pull_online.pump(flush=True))
    return push_online, pull_online, drained


def codes_by_node(online, announcements):
    """Classify each announcement alone (pure path), grouped per node."""
    grouped: dict[str, list[int]] = {}
    for announcement in announcements:
        grouped.setdefault(announcement.node, []).append(int(online.classify(announcement)))
    return grouped


def drained_codes_by_node(drained):
    grouped: dict[str, list[int]] = {}
    for result in drained:
        for node in result.nodes:
            codes = result.codes_for(node)
            if codes.shape[0]:
                grouped.setdefault(node, []).extend(int(c) for c in codes)
    return grouped


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_pump_is_bit_identical_to_per_announcement(
    dtype, classifier, classifier_f32
):
    clf = classifier if dtype == "float64" else classifier_f32
    announcements = synthetic_fleet(6, 12, seed=5)
    push_online, pull_online, drained = run_both_arms(clf, announcements, pump_rows=17)

    assert codes_by_node(push_online, announcements) == drained_codes_by_node(drained)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_fanback_state_matches_sequential_fold(dtype, classifier, classifier_f32):
    clf = classifier if dtype == "float64" else classifier_f32
    announcements = synthetic_fleet(5, 14, seed=9)
    push_online, pull_online, drained = run_both_arms(clf, announcements, pump_rows=11)

    assert push_online.nodes() == pull_online.nodes()
    for node in push_online.nodes():
        sp, sq = push_online.state(node), pull_online.state(node)
        assert np.array_equal(sp.class_counts, sq.class_counts)
        assert sp.current_class is sq.current_class
        assert sp.streak == sq.streak, f"streak diverged for {node}"
        assert sp.snapshots_seen == sq.snapshots_seen
        assert sp.last_timestamp == sq.last_timestamp


def test_streaks_survive_multiple_pumps(classifier):
    # Many tiny pumps exercise the cross-drain streak continuation: a
    # class run split across drains must extend, not restart.
    announcements = synthetic_fleet(3, 20, seed=2)
    push_online, pull_online, _ = run_both_arms(classifier, announcements, pump_rows=4)
    for node in push_online.nodes():
        assert push_online.state(node).streak == pull_online.state(node).streak
        assert push_online.stable_class(node) == pull_online.stable_class(node)


def test_out_of_order_fleet_still_bit_identical(classifier):
    # Jittered arrival order with a lateness budget: the drains see
    # timestamp order, the push arm sees arrival order; per-announcement
    # codes are pure so the per-node multisets must still match exactly.
    announcements = synthetic_fleet(4, 15, seed=11, arrival_jitter_s=3.0)
    plane_channel = MulticastChannel()
    plane = IngestPlane(plane_channel, lateness_s=10.0)
    online = OnlineClassifier(classifier, plane)
    for announcement in announcements:
        plane_channel.announce(announcement)
    drained = []
    while True:
        result = online.pump(flush=True)
        if len(result) == 0:
            break
        drained.append(result)
    stats = plane.stats()
    assert stats.received == len(announcements)
    assert stats.late_dropped == 0

    checker = OnlineClassifier(classifier, MulticastChannel())
    expected = codes_by_node(checker, announcements)
    got = drained_codes_by_node(drained)
    assert {n: sorted(c) for n, c in got.items()} == {
        n: sorted(c) for n, c in expected.items()
    }


def test_classify_stream_is_lazy_and_fans_back(classifier):
    announcements = synthetic_fleet(3, 8, seed=4)
    channel = MulticastChannel()
    plane = IngestPlane(channel)
    online = OnlineClassifier(classifier, plane)
    for announcement in announcements:
        channel.announce(announcement)

    def drains():
        while True:
            batch = plane.drain(flush=True)
            if len(batch) == 0:
                return
            yield batch

    stream = online.classify_stream(drains())
    assert online.nodes() == [], "nothing classified before iteration"
    results = list(stream)
    assert sum(len(r) for r in results) == len(announcements)
    assert len(online.nodes()) == 3


class TestDrainToSeries:
    def test_regroups_per_node_in_timestamp_order(self, classifier):
        announcements = synthetic_fleet(4, 10, seed=8)
        channel = MulticastChannel()
        plane = IngestPlane(channel)
        for announcement in announcements:
            channel.announce(announcement)
        batch = plane.drain(flush=True)
        series = drain_to_series(batch)
        assert sorted(s.node for s in series) == sorted(plane.node_names)
        for s in series:
            assert s.matrix.shape == (NUM_METRICS, 10)
            assert np.all(np.diff(s.timestamps) > 0)

    def test_copies_out_of_reused_buffers(self, classifier):
        channel = MulticastChannel()
        plane = IngestPlane(channel)
        plane.push("a", 1.0, np.full(NUM_METRICS, 7.0))
        series = drain_to_series(plane.drain(flush=True))
        plane.push("a", 2.0, np.full(NUM_METRICS, 9.0))
        plane.drain(flush=True)
        assert series[0].matrix[0, 0] == 7.0, "series must own their rows"

    def test_equal_timestamps_within_a_window_raise(self):
        plane = IngestPlane()
        plane.push("a", 5.0, np.ones(NUM_METRICS))
        plane.push("a", 6.0, np.ones(NUM_METRICS))
        plane.push("a", 5.0, np.ones(NUM_METRICS))  # non-consecutive duplicate
        batch = plane.drain(flush=True)
        with pytest.raises(ValueError):
            drain_to_series(batch)

    def test_series_route_matches_batch_kernel(self, classifier):
        announcements = synthetic_fleet(3, 12, seed=6)
        channel = MulticastChannel()
        plane = IngestPlane(channel)
        for announcement in announcements:
            channel.announce(announcement)
        series = drain_to_series(plane.drain(flush=True))
        direct = BatchClassifier(classifier).classify_batch(series)
        with ClassificationService(classifier, batch_size=4) as service:
            channel2 = MulticastChannel()
            plane2 = IngestPlane(channel2)
            for announcement in announcements:
                channel2.announce(announcement)
            futures = service.submit_drain(plane2.drain(flush=True))
            via_service = [f.result(timeout=30) for f in futures]
        assert len(via_service) == len(direct)
        for a, b in zip(direct, via_service):
            assert a.application_class == b.application_class
            assert np.array_equal(a.class_vector, b.class_vector)


def test_run_ingest_benchmark_smoke(classifier):
    result = run_ingest_benchmark(classifier, num_nodes=4, per_node=8, repeats=1)
    assert result.bit_identical
    assert result.num_announcements == 32
    assert result.drains >= 1
    assert result.ingest_rate > 0
    with pytest.raises(ValueError):
        run_ingest_benchmark(classifier, repeats=0)
