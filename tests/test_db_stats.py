"""Tests for run-history statistical abstracts."""

import pytest

from repro.core.labels import ClassComposition, SnapshotClass
from repro.db.records import RunRecord
from repro.db.stats import aggregate_runs


def record(app="x", cpu=1.0, io=0.0, duration=100.0, n=20):
    comp = ClassComposition(fractions=(0.0, io, cpu, 0.0, max(1.0 - cpu - io, 0.0)))
    return RunRecord(
        application=app,
        node="VM1",
        t0=0.0,
        t1=duration,
        num_samples=n,
        application_class=comp.dominant(),
        composition=comp,
    )


def test_empty_rejected():
    with pytest.raises(ValueError):
        aggregate_runs([])


def test_mixed_applications_rejected():
    with pytest.raises(ValueError):
        aggregate_runs([record("a"), record("b")])


def test_mean_composition_and_duration():
    stats = aggregate_runs([record(cpu=1.0, duration=100.0), record(cpu=0.5, io=0.5, duration=200.0)])
    assert stats.run_count == 2
    assert stats.mean_composition.cpu == pytest.approx(0.75)
    assert stats.mean_composition.io == pytest.approx(0.25)
    assert stats.mean_execution_time == pytest.approx(150.0)
    assert stats.execution_time_std == pytest.approx(50.0)


def test_composition_std():
    stats = aggregate_runs([record(cpu=1.0), record(cpu=0.5, io=0.5)])
    assert stats.composition_std[int(SnapshotClass.CPU)] == pytest.approx(0.25)
    assert stats.composition_std[int(SnapshotClass.NET)] == 0.0


def test_consensus_class_weighted_by_samples():
    """A long IO run outweighs a short CPU run."""
    runs = [
        record(cpu=1.0, io=0.0, n=5),
        record(cpu=0.0, io=1.0, n=100),
    ]
    assert aggregate_runs(runs).consensus_class is SnapshotClass.IO


def test_single_run_stats():
    stats = aggregate_runs([record(cpu=0.8, io=0.2)])
    assert stats.run_count == 1
    assert stats.execution_time_std == 0.0
    assert stats.consensus_class is SnapshotClass.CPU
