"""End-to-end scheduling integration tests (paper §5.2 shape, fast variants)."""

import pytest

from repro.core.labels import SnapshotClass
from repro.db.records import RunRecord
from repro.db.store import ApplicationDB
from repro.experiments.table4 import run_table4
from repro.scheduler.class_aware import ClassAwareScheduler
from repro.scheduler.reservation import recommend_reservation
from repro.sim.execution import profiled_run
from repro.workloads.cpu import ch3d
from repro.workloads.io import postmark


@pytest.fixture(scope="module")
def table4():
    return run_table4(seed=11)


class TestTable4:
    def test_concurrent_stretches_each_job(self, table4):
        assert table4.concurrent_ch3d > table4.solo_ch3d
        assert table4.concurrent_postmark > table4.solo_postmark

    def test_concurrent_beats_sequential(self, table4):
        """The paper's Table 4 conclusion."""
        assert table4.concurrent_total < table4.sequential_total
        assert table4.speedup_percent > 5.0

    def test_solo_durations_near_paper(self, table4):
        """CH3D 488 s, PostMark 264 s (paper's sequential column)."""
        assert table4.solo_ch3d == pytest.approx(488.0, rel=0.05)
        assert table4.solo_postmark == pytest.approx(264.0, rel=0.1)

    def test_stretch_magnitude_plausible(self, table4):
        """Paper: CH3D 488→613 (~1.26x), PostMark 264→310 (~1.17x)."""
        assert 1.05 < table4.concurrent_ch3d / table4.solo_ch3d < 1.5
        assert 1.05 < table4.concurrent_postmark / table4.solo_postmark < 1.7


class TestLearnedSchedulingLoop:
    """Profile → classify → store → schedule, the full paper workflow."""

    def test_db_driven_class_aware_scheduling(self, classifier):
        db = ApplicationDB()
        for workload, app in ((ch3d(100.0), "ch3d"), (postmark(100.0), "postmark")):
            run = profiled_run(workload, seed=21)
            result = classifier.classify_series(run.series)
            db.add_run(
                RunRecord(
                    application=app,
                    node=run.node,
                    t0=run.t0,
                    t1=run.t1,
                    num_samples=result.num_samples,
                    application_class=result.application_class,
                    composition=result.composition,
                )
            )
        scheduler = ClassAwareScheduler(db)
        assert scheduler.class_of("ch3d") is SnapshotClass.CPU
        assert scheduler.class_of("postmark") is SnapshotClass.IO
        placement = scheduler.schedule_jobs(["ch3d", "postmark", "ch3d", "postmark"], machines=2)
        for machine in placement.machines:
            classes = {scheduler.class_of(j) for j in machine}
            assert len(classes) == 2  # one CPU + one IO job per machine

    def test_reservation_from_learned_runs(self, classifier):
        db = ApplicationDB()
        for seed in (31, 32):
            run = profiled_run(postmark(100.0), seed=seed)
            result = classifier.classify_series(run.series)
            db.add_run(
                RunRecord(
                    application="postmark",
                    node=run.node,
                    t0=run.t0,
                    t1=run.t1,
                    num_samples=result.num_samples,
                    application_class=result.application_class,
                    composition=result.composition,
                )
            )
        reservation = recommend_reservation(db.stats("postmark"))
        assert reservation.io_share > 0.5
        assert reservation.cpu_share < 0.5
        assert reservation.expected_duration_s > 90.0
