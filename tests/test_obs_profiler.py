"""Tests for the stdlib sampling profiler (injected frames, no sleeps)."""

import sys
import threading

import pytest

from repro import obs
from repro.obs.profiler import (
    DEFAULT_PROFILER_INTERVAL_S,
    MAX_STACK_DEPTH,
    PROFILER_INTERVAL_ENV,
    SamplingProfiler,
    UNATTRIBUTED,
    fold_stack,
    profiler_interval_from_env,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    yield
    obs.disable()


def current_frame():
    return sys._getframe()


class TestFoldStack:
    def test_folds_outer_to_inner(self):
        def inner():
            return fold_stack(sys._getframe())

        def outer():
            return inner()

        folded = outer()
        parts = folded.split(";")
        # Innermost frame last; this module's helpers adjacent.
        assert parts[-1].endswith(".inner")
        assert parts[-2].endswith(".outer")

    def test_none_frame_folds_empty(self):
        assert fold_stack(None) == ""

    def test_depth_is_bounded(self):
        def recurse(n):
            if n == 0:
                return fold_stack(sys._getframe())
            return recurse(n - 1)

        folded = recurse(MAX_STACK_DEPTH + 50)
        assert len(folded.split(";")) == MAX_STACK_DEPTH


class TestIntervalFromEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(PROFILER_INTERVAL_ENV, raising=False)
        assert profiler_interval_from_env() == DEFAULT_PROFILER_INTERVAL_S

    def test_override_and_junk(self, monkeypatch):
        monkeypatch.setenv(PROFILER_INTERVAL_ENV, "0.002")
        assert profiler_interval_from_env() == 0.002
        monkeypatch.setenv(PROFILER_INTERVAL_ENV, "fast")
        assert profiler_interval_from_env() == DEFAULT_PROFILER_INTERVAL_S
        monkeypatch.setenv(PROFILER_INTERVAL_ENV, "-1")
        assert profiler_interval_from_env() == DEFAULT_PROFILER_INTERVAL_S

    def test_constructor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


class TestSampling:
    def test_sample_once_with_injected_frames(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=1.0, registry=registry)
        recorded = profiler.sample_once(frames={12345: current_frame()})
        assert recorded == 1
        assert profiler.samples == 1
        (key, count) = next(iter(profiler.stacks().items()))
        span, folded = key
        assert span == UNATTRIBUTED
        assert folded.endswith("test_obs_profiler.current_frame")
        assert count == 1

    def test_sample_attributes_to_open_span(self):
        # The span is open on this thread; the sample is taken from a
        # helper thread (sample_once skips its own thread's frames), so
        # attribution must flow through the registry's per-thread span
        # stacks rather than any thread-local of the sampling thread.
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=1.0, registry=registry)
        ident = threading.get_ident()
        frame = current_frame()
        with registry.span("serve.compute"):
            worker = threading.Thread(
                target=lambda: profiler.sample_once(frames={ident: frame})
            )
            worker.start()
            worker.join()
        spans = {span for span, _ in profiler.stacks()}
        assert spans == {"serve.compute"}

    def test_own_thread_excluded(self):
        # A frames entry keyed by the sampling thread's own ident is
        # skipped (the profiler never profiles itself).
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=1.0, registry=registry)
        recorded = []
        frame = current_frame()

        def sample_self():
            recorded.append(
                profiler.sample_once(frames={threading.get_ident(): frame})
            )

        worker = threading.Thread(target=sample_self)
        worker.start()
        worker.join()
        assert recorded == [0]
        assert profiler.stacks() == {}

    def test_aggregation_counts_repeats(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=1.0, registry=registry)
        frame = current_frame()
        for _ in range(3):
            profiler.sample_once(frames={99: frame})
        assert profiler.samples == 3
        assert list(profiler.stacks().values()) == [3]

    def test_render_collapsed_format_and_order(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(interval_s=1.0, registry=registry)
        assert profiler.render_collapsed() == ""
        frame = current_frame()
        for _ in range(2):
            profiler.sample_once(frames={99: frame})
        ident = threading.get_ident()
        with registry.span("hot"):
            worker = threading.Thread(
                target=lambda: profiler.sample_once(frames={ident: frame})
            )
            worker.start()
            worker.join()
        text = profiler.render_collapsed()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 2
        # Descending by count: the repeated unattributed stack first.
        first_stack, first_count = lines[0].rsplit(" ", 1)
        assert first_count == "2"
        assert first_stack.startswith(f"{UNATTRIBUTED};")
        assert lines[1].startswith("hot;")
        assert lines[1].endswith(" 1")

    def test_clear_resets(self):
        profiler = SamplingProfiler(interval_s=1.0, registry=MetricsRegistry())
        profiler.sample_once(frames={99: current_frame()})
        profiler.clear()
        assert profiler.samples == 0
        assert profiler.stacks() == {}
        assert profiler.render_collapsed() == ""


class TestLifecycle:
    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.001, registry=MetricsRegistry())
        assert not profiler.running
        profiler.start()
        profiler.start()
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_concurrent_stop_is_safe(self):
        profiler = SamplingProfiler(interval_s=0.001, registry=MetricsRegistry())
        profiler.start()
        threads = [threading.Thread(target=profiler.stop) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not profiler.running

    def test_restart_after_stop(self):
        profiler = SamplingProfiler(interval_s=0.001, registry=MetricsRegistry())
        profiler.start()
        profiler.stop()
        profiler.start()
        assert profiler.running
        profiler.stop()

    def test_live_sampling_records_real_stacks(self):
        profiler = SamplingProfiler(interval_s=0.001, registry=MetricsRegistry())
        profiler.start()
        try:
            deadline = threading.Event()
            # Busy-wait in Python frames until at least one sample lands.
            for _ in range(20000):
                if profiler.samples:
                    break
                deadline.wait(0.001)
        finally:
            profiler.stop()
        assert profiler.samples >= 1
        assert profiler.stacks()

    def test_unresolved_registry_falls_back_to_facade(self):
        registry = obs.enable()
        profiler = SamplingProfiler(interval_s=1.0)
        ident = threading.get_ident()
        frame = current_frame()
        with registry.span("facade.attributed"):
            worker = threading.Thread(
                target=lambda: profiler.sample_once(frames={ident: frame})
            )
            worker.start()
            worker.join()
        assert {span for span, _ in profiler.stacks()} == {"facade.attributed"}
