"""End-to-end observability: instrumented pipeline, manager, and CLI."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.manager.service import ResourceManager
from repro.obs.export import registry_to_dict
from repro.workloads.catalog import entry

from tests.test_core_pipeline import synthetic_series, synthetic_training


@pytest.fixture(autouse=True)
def _obs_off():
    """Observability never leaks between tests (process-global switch)."""
    obs.disable()
    yield
    obs.disable()


def _span_count(registry, name):
    return registry.histogram("span.seconds", span=name).count


class TestPipelineInstrumentation:
    def test_stage_histograms_after_classification(self, classifier):
        registry = obs.enable()
        series = synthetic_series("cpu", m=12, seed=6)
        classifier.classify_series(series)
        assert _span_count(registry, "pipeline.classify") == 1
        for stage in ("filter", "normalize", "pca", "knn", "postprocess"):
            h = registry.histogram("pipeline.stage.seconds", stage=stage)
            assert h.count == 1, stage
            assert h.sum >= 0.0
        assert registry.counter("pipeline.runs").value == 1.0
        assert registry.counter("pipeline.snapshots").value == float(len(series))

    def test_stage_durations_sum_within_classify_span(self, classifier):
        """Stage latencies are consistent with the enclosing span."""
        registry = obs.enable()
        classifier.classify_series(synthetic_series("io", m=10, seed=7))
        (span_record,) = registry.spans()
        assert span_record.name == "pipeline.classify"
        assert span_record.depth == 0
        stage_total = sum(
            registry.histogram("pipeline.stage.seconds", stage=s).sum
            for s in ("filter", "normalize", "pca", "knn", "postprocess")
        )
        assert stage_total <= span_record.duration_s

    def test_disabled_classification_records_nothing(self, classifier):
        result = classifier.classify_series(synthetic_series("cpu", m=10, seed=8))
        assert result.num_samples == 10
        assert obs.get_registry().instruments() == []

    def test_result_identical_enabled_vs_disabled(self, classifier):
        """Instrumentation observes; it must never change the answer."""
        series = synthetic_series("net", m=15, seed=9)
        baseline = classifier.classify_series(series)
        obs.enable()
        instrumented = classifier.classify_series(series)
        assert instrumented.class_vector.tolist() == baseline.class_vector.tolist()
        assert instrumented.application_class is baseline.application_class


class TestManagerInstrumentation:
    def test_profile_and_learn_emits_spans_and_counters(self):
        registry = obs.enable()
        e = entry("xspim")
        manager = ResourceManager(seed=0)
        manager.profile_and_learn("xspim", e.build(), vm_mem_mb=e.vm_mem_mb)
        for name in (
            "manager.train",
            "manager.profile_and_learn",
            "manager.profile",
            "manager.classify",
            "pipeline.classify",
        ):
            assert _span_count(registry, name) >= 1, name
        assert registry.histogram("pipeline.stage.seconds", stage="pca").count >= 1
        assert registry.counter("manager.runs.learned").value == 1.0
        # Monitoring substrate counted ingest during the profiled run.
        d = registry_to_dict(registry)
        names = {c["name"] for c in d["counters"]}
        assert "monitoring.aggregator.ingested" in names
        assert "monitoring.gmond.announcements" in names
        assert "sim.ticks" in names


class TestCli:
    def test_obs_dump_prometheus_shows_stage_histograms(self, capsys):
        assert main(["obs", "dump", "--app", "xspim", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        for stage in ("filter", "normalize", "pca", "knn"):
            line = f'repro_pipeline_stage_seconds_count{{stage="{stage}"}}'
            (match,) = [l for l in out.splitlines() if l.startswith(line)]
            assert float(match.split()[-1]) > 0, stage
        assert 'repro_span_seconds_count{span="pipeline.classify"}' in out
        assert "repro_pipeline_runs_total" in out

    def test_obs_dump_json_parses(self, capsys):
        assert main(["obs", "dump", "--app", "xspim", "--seed", "1", "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["enabled"] is True
        assert any(h["name"] == "span.seconds" for h in parsed["histograms"])

    def test_obs_dump_trace_is_indented_tree(self, capsys):
        assert main(["obs", "dump", "--app", "xspim", "--seed", "1", "--format", "trace"]) == 0
        out = capsys.readouterr().out
        assert "manager.profile_and_learn" in out
        assert "  manager.profile" in out  # indented child

    def test_obs_dump_unknown_app(self, capsys):
        assert main(["obs", "dump", "--app", "fortnite"]) == 2
        assert "unknown application" in capsys.readouterr().out

    def test_obs_dump_no_run_uses_existing_registry(self, capsys):
        obs.enable()
        obs.counter("preexisting.events").inc()
        assert main(["obs", "dump", "--no-run"]) == 0
        assert "repro_preexisting_events_total 1" in capsys.readouterr().out

    def test_obs_reset_clears_registry(self, capsys):
        registry = obs.enable()
        obs.counter("stale").inc()
        assert main(["obs", "reset"]) == 0
        assert "reset" in capsys.readouterr().out
        assert registry.instruments() == []


def test_online_announcement_metrics():
    """The streaming path times announcements when collection is on."""
    from repro.core.online import OnlineClassifier
    from repro.core.pipeline import ApplicationClassifier
    from repro.monitoring.multicast import MulticastChannel

    from tests.test_core_online import announce_kind

    registry = obs.enable()
    trained = ApplicationClassifier().train(synthetic_training())
    channel = MulticastChannel()
    online = OnlineClassifier(trained, channel, nodes=["VM1"])
    announce_kind(channel, "VM1", 5.0, "cpu")
    announce_kind(channel, "VM2", 5.0, "cpu")  # filtered by allow-list
    assert registry.counter("online.announcements.classified").value == 1.0
    assert registry.counter("online.announcements.dropped").value == 1.0
    assert registry.histogram("online.announcement.seconds").count == 1
