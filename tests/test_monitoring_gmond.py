"""Tests for the simulated gmond daemon."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS, metric_index
from repro.monitoring.gmond import Gmond
from repro.monitoring.multicast import MulticastChannel
from repro.vm.cluster import single_vm_cluster


def make_gmond(heartbeat=5.0, seed=0, mem_mb=256.0):
    cluster = single_vm_cluster(mem_mb=mem_mb)
    vm = cluster.vm("VM1")
    channel = MulticastChannel()
    gmond = Gmond(vm, channel, rng=np.random.default_rng(seed), heartbeat=heartbeat)
    return vm, channel, gmond


def drive_cpu(vm, seconds, user_frac=0.8):
    for _ in range(int(seconds)):
        vm.counters.account_cpu(
            user_s=user_frac, system_s=0.05, wio_s=0.0, nice_s=0.0,
            idle_s=vm.vcpus - user_frac - 0.05,
        )
        vm.counters.advance_time(1.0, runnable=1.0)


def test_collect_vector_shape():
    vm, _, gmond = make_gmond()
    values = gmond.collect(now=5.0)
    assert values.shape == (NUM_METRICS,)
    assert np.all(np.isfinite(values))


def test_first_collect_reports_idle_cpu():
    _, _, gmond = make_gmond()
    values = gmond.collect(now=5.0)
    assert values[metric_index("cpu_idle")] == pytest.approx(100.0, abs=2.0)


def test_cpu_percent_from_window_delta():
    vm, _, gmond = make_gmond(seed=1)
    gmond.collect(now=5.0)
    drive_cpu(vm, 5, user_frac=0.8)
    values = gmond.collect(now=10.0)
    # 0.8 core-seconds/s on a 1-vcpu VM → 80%.
    assert values[metric_index("cpu_user")] == pytest.approx(80.0, abs=3.0)


def test_rate_metrics_from_deltas():
    vm, _, gmond = make_gmond(seed=1)
    gmond.collect(now=5.0)
    vm.counters.account_net(bytes_in=5_000_000.0, bytes_out=2_500_000.0)
    values = gmond.collect(now=10.0)
    assert values[metric_index("bytes_in")] == pytest.approx(1_000_000.0, rel=0.1)
    assert values[metric_index("bytes_out")] == pytest.approx(500_000.0, rel=0.1)


def test_vmstat_extensions_present():
    vm, _, gmond = make_gmond(seed=1)
    gmond.collect(now=5.0)
    vm.counters.account_io(blocks_in=1000.0, blocks_out=500.0)
    vm.counters.account_swap(kb_in=250.0, kb_out=125.0)
    values = gmond.collect(now=10.0)
    assert values[metric_index("io_bi")] == pytest.approx(200.0, rel=0.15)
    assert values[metric_index("swap_in")] == pytest.approx(50.0, rel=0.15)


def test_constants_reported():
    vm, _, gmond = make_gmond()
    values = gmond.collect(now=5.0)
    assert values[metric_index("cpu_num")] == vm.vcpus
    assert values[metric_index("cpu_speed")] == vm.host.capacity.cpu_mhz
    assert values[metric_index("mem_total")] == vm.mem_mb * 1024.0
    assert values[metric_index("sys_clock")] == 5.0


def test_heartbeat_announcement_schedule():
    _, channel, gmond = make_gmond(heartbeat=5.0)
    for t in range(1, 21):
        gmond.on_tick(float(t))
    assert gmond.announcement_count == 4
    assert channel.announcements_sent == 4


def test_heartbeat_validation():
    vm, channel, _ = make_gmond()
    with pytest.raises(ValueError):
        Gmond(vm, channel, rng=np.random.default_rng(0), heartbeat=0.0)


def test_announce_publishes_snapshot():
    _, channel, gmond = make_gmond()
    received = []
    channel.subscribe(received.append)
    gmond.announce(now=5.0)
    assert len(received) == 1
    assert received[0].node == "VM1"
    assert received[0].timestamp == 5.0


def test_noise_keeps_rates_non_negative():
    _, _, gmond = make_gmond(seed=7)
    for t in range(5, 100, 5):
        values = gmond.collect(now=float(t))
        assert values[metric_index("io_bi")] >= 0.0
        assert 0.0 <= values[metric_index("cpu_user")] <= 100.0


def test_noise_is_deterministic_per_seed():
    _, _, g1 = make_gmond(seed=3)
    _, _, g2 = make_gmond(seed=3)
    assert np.array_equal(g1.collect(5.0), g2.collect(5.0))
