"""Tests for live migration in the engine."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.vm.cluster import Cluster
from repro.vm.resources import ResourceCapacity, ResourceDemand
from repro.workloads.base import WorkloadInstance, constant_workload


def two_host_cluster():
    c = Cluster()
    c.add_host("h1", ResourceCapacity())
    c.add_host("h2", ResourceCapacity())
    c.create_vm("h1", "VM1")
    c.create_vm("h2", "VM2")
    return c


def cpu_job(duration=60.0):
    return constant_workload("job", ResourceDemand(cpu_user=0.9, mem_mb=20.0), duration)


class TestMigrate:
    def test_progress_preserved_across_migration(self):
        cluster = two_host_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(cpu_job(60.0), vm_name="VM1"))
        engine.run(until=30.0)
        before = engine.instance(key).progress_fraction()
        engine.migrate(key, "VM2", downtime_s=5.0)
        assert engine.instance(key).progress_fraction() == before
        engine.run()
        assert engine.instance(key).done
        # 60 s work + 5 s downtime (± interference-free slack).
        assert engine.completions[0].elapsed == pytest.approx(65.0, abs=3.0)

    def test_downtime_pauses_execution(self):
        cluster = two_host_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(cpu_job(60.0), vm_name="VM1"))
        engine.run(until=10.0)
        engine.migrate(key, "VM2", downtime_s=20.0)
        progress_at_migration = engine.instance(key).progress_fraction()
        engine.run(until=25.0)
        assert engine.instance(key).progress_fraction() == progress_at_migration
        engine.run(until=40.0)
        assert engine.instance(key).progress_fraction() > progress_at_migration

    def test_counters_follow_the_instance(self):
        cluster = two_host_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(cpu_job(60.0), vm_name="VM1"))
        engine.run(until=30.0)
        vm1_cpu_before = cluster.vm("VM1").counters.cpu_user_s
        engine.migrate(key, "VM2", downtime_s=0.0)
        engine.run()
        # VM1 accrues only noise after the migration; VM2 does the rest.
        assert cluster.vm("VM1").counters.cpu_user_s < vm1_cpu_before + 2.0
        assert cluster.vm("VM2").counters.cpu_user_s > 20.0

    def test_migration_event_recorded(self):
        cluster = two_host_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(cpu_job(), vm_name="VM1"))
        engine.run(until=5.0)
        event = engine.migrate(key, "VM2")
        assert event.from_vm == "VM1"
        assert event.to_vm == "VM2"
        assert event.time == 5.0
        assert engine.migrations == [event]

    def test_validation(self):
        cluster = two_host_cluster()
        engine = SimulationEngine(cluster, seed=0)
        key = engine.add_instance(WorkloadInstance(cpu_job(10.0), vm_name="VM1"))
        with pytest.raises(KeyError):
            engine.migrate(99, "VM2")
        with pytest.raises(KeyError):
            engine.migrate(key, "ghost")
        with pytest.raises(ValueError):
            engine.migrate(key, "VM1")
        with pytest.raises(ValueError):
            engine.migrate(key, "VM2", downtime_s=-1.0)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.migrate(key, "VM2")

    def test_migration_away_from_contention_speeds_completion(self):
        """Migrating off a CPU-crowded host beats staying."""

        def run(migrate: bool) -> float:
            cluster = two_host_cluster()
            engine = SimulationEngine(cluster, seed=0)
            key = engine.add_instance(WorkloadInstance(cpu_job(120.0), vm_name="VM1"))
            # Two CPU hogs sharing VM1 forever.
            for _ in range(2):
                engine.add_instance(
                    WorkloadInstance(cpu_job(100000.0), vm_name="VM1", loop=True)
                )
            engine.run(until=10.0)
            if migrate:
                engine.migrate(key, "VM2", downtime_s=5.0)
            engine.run(until=600.0)
            inst = engine.instance(key)
            return inst.elapsed() if inst.done else float("inf")

        assert run(migrate=True) < run(migrate=False)
