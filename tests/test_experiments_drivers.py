"""Tests for the experiment drivers (fast configurations)."""

import pytest

from repro.experiments.cost import collect_snapshot_pool, measure_cost
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig45 import Fig45Outcome
from repro.experiments.table3 import run_table3
from repro.scheduler.schedules import enumerate_schedules
from repro.scheduler.throughput import ScheduleThroughput


class TestTable3Driver:
    def test_subset_selection(self, classifier):
        outcome = run_table3(classifier, seed=100, keys=["xspim", "postmark"])
        assert [r.key for r in outcome.rows] == ["postmark", "xspim"]

    def test_row_lookup(self, classifier):
        outcome = run_table3(classifier, seed=100, keys=["xspim"])
        row = outcome.row("xspim")
        assert row.dominant_class in {"IO", "IDLE"}
        with pytest.raises(KeyError):
            outcome.row("missing")

    def test_named_results_align(self, classifier):
        outcome = run_table3(classifier, seed=100, keys=["xspim"])
        named = outcome.named_results()
        assert named[0][0] == "xspim"
        assert named[0][1] is outcome.rows[0].result


class TestFig3Driver:
    def test_four_diagrams(self, classifier):
        outcome = run_fig3(classifier, seed=200)
        diagrams = outcome.all_diagrams()
        assert len(diagrams) == 4
        assert diagrams[0].title.startswith("Figure 3(a)")
        assert set(outcome.tests) == {"simplescalar", "autobench", "vmd"}


class TestCostDriver:
    def test_small_pool(self, classifier):
        pool = collect_snapshot_pool(num_samples=50, seed=500)
        assert len(pool) == 100  # two subnet nodes
        cost = measure_cost(classifier, pool)
        assert cost.num_samples == 50
        assert cost.per_sample_ms > 0

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            collect_snapshot_pool(num_samples=0)


class TestFig45Outcome:
    def _fake_outcome(self, values):
        schedules = enumerate_schedules()
        results = [
            ScheduleThroughput(
                schedule=s,
                system_jobs_per_day=v,
                per_app_jobs_per_day={"S": v / 3, "P": v / 3, "N": v / 3},
            )
            for s, v in zip(schedules, values)
        ]
        return Fig45Outcome(results=results, per_app=[])

    def test_spn_and_best(self):
        values = [100.0] * 9 + [150.0]
        outcome = self._fake_outcome(values)
        assert outcome.spn.schedule.number == 10
        assert outcome.best.schedule.number == 10

    def test_weighted_average_discounts_spn(self):
        """SPN's multiplicity is 1 of 55 ordered assignments."""
        values = [100.0] * 9 + [155.0]
        outcome = self._fake_outcome(values)
        expected = (100.0 * 54 + 155.0 * 1) / 55
        assert outcome.weighted_average() == pytest.approx(expected)
        assert outcome.uniform_average() == pytest.approx(105.5)

    def test_improvement_percent(self):
        values = [100.0] * 9 + [150.0]
        outcome = self._fake_outcome(values)
        assert outcome.spn_improvement_percent("uniform") == pytest.approx(
            100 * (150.0 - 105.0) / 105.0
        )
