"""Float32 tolerance mode vs the float64 reference, end to end.

The float32 pipeline is a *tolerance mode* (docs/API.md § Numeric
modes): it promises ≥99% per-snapshot label agreement with the float64
reference on the paper's Table-2 corpus, not bitwise equality.  These
tests pin that guarantee and the per-stage tolerances behind it, all
measured against the deterministic simulator (fixed seeds), so any
regression is a real kernel change rather than noise:

* fitted Normalizer statistics — master statistics are accumulated at
  float64 in both modes, so the float32 parameters sit within one or
  two float32 ulps of the cast float64 parameters (rtol 1e-6);
* fitted PCA basis — the eigensolve always runs at float64; cast and
  sign-alignment leave components within atol 1e-6 (measured 3e-8);
* projected scores — fused single-GEMM float32 projection stays within
  atol 1e-4 of the staged float64 scores (measured 3.8e-6 on score
  scale ~1);
* the float64 fused weights match the staged normalize→center→project
  composition to atol 1e-12 (measured 7e-16) — the algebraic fold is
  exact up to rounding;
* within float32, the batched path is *bit-identical* to the
  sequential path, the same guarantee the float64 kernel makes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ClassifierConfig
from repro.core.pipeline import ApplicationClassifier
from repro.serve.batch import BatchClassifier
from repro.sim.execution import profiled_run
from repro.workloads.catalog import test_entries as table2_test_entries

#: Tolerance-mode corpus guarantee (docs/API.md § Numeric modes).
MIN_AGREEMENT = 0.99
#: Fitted-parameter and score tolerances pinned by the suite docstring.
NORM_RTOL = 1e-6
PCA_ATOL = 1e-6
SCORE_ATOL = 1e-4
FUSED_F64_ATOL = 1e-12


@pytest.fixture(scope="module")
def classifier_f32(training_outcome):
    """Float32 classifier refit from the float64 session's profiles."""
    clf = ApplicationClassifier.from_config(ClassifierConfig(compute_dtype="float32"))
    clf.train(
        [
            (run.series, training_outcome.labels[key])
            for key, run in training_outcome.runs.items()
        ]
    )
    return clf


@pytest.fixture(scope="module")
def table2_corpus():
    """All fourteen Table-2 test runs, profiled once (seed 100)."""
    return [
        (e.key, profiled_run(e.build(), vm_mem_mb=e.vm_mem_mb, seed=100).series)
        for e in table2_test_entries()
    ]


class TestCorpusAgreement:
    def test_per_snapshot_label_agreement(self, classifier, classifier_f32, table2_corpus):
        agree = total = 0
        for _, series in table2_corpus:
            l64 = classifier.classify_series(series).class_vector
            l32 = classifier_f32.classify_series(series).class_vector
            agree += int((l64 == l32).sum())
            total += l64.size
        assert total > 5000, "corpus unexpectedly small"
        assert agree / total >= MIN_AGREEMENT, (
            f"float32 agreed on {agree}/{total} snapshots "
            f"({agree / total:.4f} < {MIN_AGREEMENT})"
        )

    def test_dominant_class_agrees_on_every_run(
        self, classifier, classifier_f32, table2_corpus
    ):
        for key, series in table2_corpus:
            r64 = classifier.classify_series(series)
            r32 = classifier_f32.classify_series(series)
            assert r64.application_class is r32.application_class, key


class TestStageTolerances:
    def test_normalizer_statistics_match_cast_reference(
        self, classifier, classifier_f32
    ):
        n64 = classifier.preprocessor.normalizer
        n32 = classifier_f32.preprocessor.normalizer
        assert n32.mean_.dtype == np.dtype(np.float32)
        np.testing.assert_allclose(
            n32.mean_, n64.mean_.astype(np.float32), rtol=NORM_RTOL, atol=0.0
        )
        np.testing.assert_allclose(
            n32.scale_, n64.scale_.astype(np.float32), rtol=NORM_RTOL, atol=0.0
        )

    def test_pca_basis_matches_cast_reference(self, classifier, classifier_f32):
        c64 = classifier.pca.components_.astype(np.float32)
        c32 = classifier_f32.pca.components_
        assert c32.dtype == np.dtype(np.float32)
        assert c32.shape == c64.shape  # float64 eigensolve → same q
        signs = np.sign(np.sum(c64 * c32, axis=1))
        np.testing.assert_allclose(c32 * signs[:, None], c64, atol=PCA_ATOL)
        np.testing.assert_allclose(
            classifier_f32.pca.mean_,
            classifier.pca.mean_.astype(np.float32),
            atol=PCA_ATOL,
        )

    def test_projected_scores_within_tolerance(
        self, classifier, classifier_f32, table2_corpus
    ):
        _, series = table2_corpus[0]
        s64 = classifier.classify_series(series).scores
        s32 = classifier_f32.classify_series(series).scores
        assert s32.dtype == np.dtype(np.float32)
        # The two bases may disagree in component sign; align first.
        signs = np.sign(np.sum(s64.astype(np.float32) * s32, axis=0))
        np.testing.assert_allclose(
            s32 * signs[None, :], s64.astype(np.float32), atol=SCORE_ATOL
        )

    def test_float64_fused_weights_match_staged_composition(
        self, classifier, table2_corpus
    ):
        # The fused weights exist for both dtypes; in float64 mode the
        # classify path stays staged (bit-identity), so pin the fold's
        # closeness here instead.
        _, series = table2_corpus[0]
        staged = classifier.classify_series(series).scores
        selected = classifier.preprocessor.selector.transform_series(series)
        fused = selected @ classifier.fused_weights_ + classifier.fused_bias_
        np.testing.assert_allclose(fused, staged, atol=FUSED_F64_ATOL)


class TestFloat32BitIdentity:
    def test_batched_matches_sequential_bitwise(self, classifier_f32, table2_corpus):
        series_list = [s for _, s in table2_corpus]
        sequential = [classifier_f32.classify_series(s) for s in series_list]
        batched = BatchClassifier(classifier_f32).classify_batch(series_list)
        for seq, bat in zip(sequential, batched):
            assert np.array_equal(seq.class_vector, bat.class_vector)
            assert np.array_equal(seq.scores, bat.scores)
            assert seq.composition == bat.composition
            assert seq.application_class is bat.application_class

    def test_classify_is_deterministic(self, classifier_f32, table2_corpus):
        _, series = table2_corpus[0]
        a = classifier_f32.classify_series(series)
        b = classifier_f32.classify_series(series)
        assert np.array_equal(a.class_vector, b.class_vector)
        assert np.array_equal(a.scores, b.scores)


class TestFloat32Plumbing:
    def test_every_fitted_buffer_is_float32(self, classifier_f32):
        f32 = np.dtype(np.float32)
        norm = classifier_f32.preprocessor.normalizer
        assert norm.mean_.dtype == f32 and norm.scale_.dtype == f32
        assert classifier_f32.pca.mean_.dtype == f32
        assert classifier_f32.pca.components_.dtype == f32
        assert classifier_f32.knn.training_points.dtype == f32
        assert classifier_f32.knn.training_sq_norms.dtype == f32
        assert classifier_f32.fused_weights_.dtype == f32
        assert classifier_f32.fused_bias_.dtype == f32

    def test_config_round_trips_dtype(self, classifier_f32):
        assert classifier_f32.config.compute_dtype == "float32"
        assert classifier_f32.compute_dtype == "float32"

    def test_snapshot_features_path_stays_float32(self, classifier_f32):
        # The online path feeds (1, p) raw feature rows through the
        # fused projection; the result must be float32 end to end.
        raw = np.zeros((1, len(classifier_f32.preprocessor.selector.names)))
        codes = classifier_f32.classify_snapshot_features(raw)
        assert codes.dtype == np.dtype(np.int64)
        assert codes.shape == (1,)
