"""Post-processing and presentation: cluster diagrams, table rendering."""

from .clustering import CLASS_GLYPHS, ClusterDiagram
from .export import (
    export_cluster_diagram,
    export_compositions,
    export_schedule_throughput,
    export_series_metrics,
)
from .timeline import render_stage_summary, render_timeline
from .reports import (
    TABLE3_COLUMNS,
    format_table,
    percent_cell,
    render_bar_chart,
    render_table3,
    render_table4,
    table3_row,
)

__all__ = [
    "CLASS_GLYPHS",
    "ClusterDiagram",
    "export_cluster_diagram",
    "export_compositions",
    "export_schedule_throughput",
    "export_series_metrics",
    "render_stage_summary",
    "render_timeline",
    "TABLE3_COLUMNS",
    "format_table",
    "percent_cell",
    "render_bar_chart",
    "render_table3",
    "render_table4",
    "table3_row",
]
