"""Class timeline rendering.

A compact one-glyph-per-snapshot strip of a run's class vector over
time — the quickest way to *see* a multi-stage application's structure::

    t=5s   CCCCCCCCCCCCIIIIIIIIIIIIIICCCCCCCCCCCC   t=600s
           C=CPU  I=IO

Complements the PC-space cluster diagrams (which show *where* snapshots
fall) by showing *when*.
"""

from __future__ import annotations

import numpy as np

from ..core.labels import ALL_CLASSES, SnapshotClass
from ..core.pipeline import ClassificationResult
from ..core.stages import StageAnalysis
from .clustering import CLASS_GLYPHS


def render_timeline(
    result: ClassificationResult,
    timestamps: np.ndarray | None = None,
    width: int = 72,
) -> str:
    """Render a classified run as a class strip.

    Longer runs are downsampled to *width* glyphs by majority within each
    bucket.

    Raises
    ------
    ValueError
        For a non-positive width.
    """
    if width < 1:
        raise ValueError("width must be positive")
    vec = np.asarray(result.class_vector, dtype=np.int64)
    m = vec.size
    if m <= width:
        strip = "".join(CLASS_GLYPHS[SnapshotClass(int(c))] for c in vec)
    else:
        edges = np.linspace(0, m, width + 1).astype(int)
        glyphs = []
        for lo, hi in zip(edges, edges[1:]):
            bucket = vec[lo:max(hi, lo + 1)]
            counts = np.bincount(bucket, minlength=len(ALL_CLASSES))
            glyphs.append(CLASS_GLYPHS[SnapshotClass(int(counts.argmax()))])
        strip = "".join(glyphs)
    present = sorted(set(int(c) for c in vec))
    legend = "  ".join(f"{CLASS_GLYPHS[SnapshotClass(c)]}={SnapshotClass(c).name}" for c in present)
    if timestamps is not None and len(timestamps) == m and m > 0:
        header = f"t={timestamps[0]:.0f}s … t={timestamps[-1]:.0f}s  ({m} snapshots)"
    else:
        header = f"{m} snapshots"
    return f"{header}\n{strip}\n{legend}"


def render_stage_summary(analysis: StageAnalysis, max_stages: int = 20) -> str:
    """One line per stage: index, class, window, length.

    Raises
    ------
    ValueError
        For a non-positive stage limit.
    """
    if max_stages < 1:
        raise ValueError("max_stages must be positive")
    lines = []
    for stage in analysis.stages[:max_stages]:
        lines.append(
            f"  stage {stage.index:3d}  {stage.snapshot_class.name:5s}"
            f"  {stage.start_time:8.0f}–{stage.end_time:<8.0f}s"
            f"  ({stage.num_snapshots} snapshots)"
        )
    if analysis.num_stages > max_stages:
        lines.append(f"  … and {analysis.num_stages - max_stages} more stages")
    head = (
        f"{analysis.num_stages} stages, dominant "
        f"{analysis.dominant_stage_class().name}, multi-stage: "
        f"{analysis.is_multi_stage()}"
    )
    return "\n".join([head, *lines])
