"""Fixed-width text rendering of the paper's tables and figures.

Every benchmark harness prints its results through these helpers, so the
regenerated rows visually match the paper's layout (Table 3's dash for
zero percentages, Figure 4's schedule labels, etc.).
"""

from __future__ import annotations

from typing import Sequence

from ..core.labels import SnapshotClass
from ..core.pipeline import ClassificationResult

#: Table 3 column order (paper): Idle, I/O, CPU, Network, Paging.
TABLE3_COLUMNS: tuple[SnapshotClass, ...] = (
    SnapshotClass.IDLE,
    SnapshotClass.IO,
    SnapshotClass.CPU,
    SnapshotClass.NET,
    SnapshotClass.MEM,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], indent: str = "") -> str:
    """Render rows as an aligned fixed-width table.

    Raises
    ------
    ValueError
        If any row width differs from the header width.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return indent + "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = indent + "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])


def percent_cell(fraction: float, dash_below: float = 0.0005) -> str:
    """Format a composition fraction as the paper does: ``–`` for ~0."""
    if fraction < dash_below:
        return "–"
    return f"{100.0 * fraction:.2f}%"


def table3_row(name: str, result: ClassificationResult) -> list[str]:
    """One Table 3 row: application, sample count, five percentages."""
    return [
        name,
        str(result.num_samples),
        *(percent_cell(result.composition.fraction(c)) for c in TABLE3_COLUMNS),
    ]


def render_table3(named_results: Sequence[tuple[str, ClassificationResult]]) -> str:
    """The full Table 3: application class compositions."""
    headers = ["Test Application", "# of Samples", "Idle", "I/O", "CPU", "Network", "Paging"]
    rows = [table3_row(name, result) for name, result in named_results]
    return format_table(headers, rows)


def render_table4(
    concurrent: dict[str, float], sequential: dict[str, float]
) -> str:
    """Table 4: concurrent vs sequential elapsed times.

    *concurrent* and *sequential* map application name → elapsed seconds.

    Raises
    ------
    ValueError
        If the two mappings cover different applications.
    """
    if set(concurrent) != set(sequential):
        raise ValueError("concurrent and sequential must cover the same applications")
    apps = list(concurrent)
    headers = ["Execution", *apps, "Time Taken to Finish All Jobs"]
    conc_total = max(concurrent.values())
    seq_total = sum(sequential.values())
    rows = [
        ["Concurrent", *(f"{concurrent[a]:.0f}" for a in apps), f"{conc_total:.0f}"],
        ["Sequential", *(f"{sequential[a]:.0f}" for a in apps), f"{seq_total:.0f}"],
    ]
    return format_table(headers, rows)


def render_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 50, unit: str = ""
) -> str:
    """Horizontal text bar chart (used for Figures 4 and 5).

    Raises
    ------
    ValueError
        On mismatched inputs or non-positive width.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if width < 1:
        raise ValueError("width must be positive")
    if not values:
        return "(no data)"
    peak = max(values)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(value / peak * width)) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.0f}{unit}")
    return "\n".join(lines)
