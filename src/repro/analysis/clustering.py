"""Cluster diagrams in principal-component space (paper Figure 3).

The classifier's first output format: snapshots projected onto the two
extracted principal components, grouped by assigned class.  The paper
renders these as 2-D scatter plots; this module provides the diagram
data structure plus an ASCII renderer so experiments can display results
without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.labels import ALL_CLASSES, SnapshotClass
from ..core.pipeline import ApplicationClassifier, ClassificationResult

#: One-character glyph per class for ASCII scatter rendering.
CLASS_GLYPHS: dict[SnapshotClass, str] = {
    SnapshotClass.IDLE: ".",
    SnapshotClass.IO: "I",
    SnapshotClass.CPU: "C",
    SnapshotClass.NET: "N",
    SnapshotClass.MEM: "M",
}


@dataclass
class ClusterDiagram:
    """Projected snapshots plus their class labels."""

    title: str
    points: np.ndarray = field(repr=False)  # (m, 2)
    labels: np.ndarray = field(repr=False)  # (m,) class codes

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.points.ndim != 2 or self.points.shape[1] < 2:
            raise ValueError("diagram needs (m, >=2) projected points")
        if self.labels.shape[0] != self.points.shape[0]:
            raise ValueError("labels must align with points")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_training(cls, classifier: ApplicationClassifier, title: str = "Training data") -> "ClusterDiagram":
        """Figure 3(a): the training pool in PC space.

        Raises
        ------
        RuntimeError
            If the classifier is untrained.
        """
        if classifier.training_scores_ is None or classifier.training_labels_ is None:
            raise RuntimeError("classifier has no training projections")
        return cls(title=title, points=classifier.training_scores_, labels=classifier.training_labels_)

    @classmethod
    def from_result(cls, result: ClassificationResult, title: str | None = None) -> "ClusterDiagram":
        """Figure 3(b–d): a test application's snapshots in PC space."""
        return cls(
            title=title or f"Classification of {result.node}",
            points=result.scores,
            labels=result.class_vector,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def classes_present(self) -> list[SnapshotClass]:
        """Classes with at least one point, in enum order."""
        present = set(int(v) for v in np.unique(self.labels))
        return [c for c in ALL_CLASSES if int(c) in present]

    def points_of(self, c: SnapshotClass) -> np.ndarray:
        """The (k, 2) points assigned class *c*."""
        return self.points[self.labels == int(c), :2]

    def bounds(self) -> tuple[float, float, float, float]:
        """(xmin, xmax, ymin, ymax) of the projected points."""
        x, y = self.points[:, 0], self.points[:, 1]
        return float(x.min()), float(x.max()), float(y.min()), float(y.max())

    def class_centroids(self) -> dict[SnapshotClass, np.ndarray]:
        """Mean PC-space position per present class."""
        return {c: self.points_of(c).mean(axis=0) for c in self.classes_present()}

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 72, height: int = 24) -> str:
        """Scatter plot as text; one glyph per class, later classes on top.

        Raises
        ------
        ValueError
            For degenerate canvas sizes.
        """
        if width < 8 or height < 4:
            raise ValueError("canvas too small")
        xmin, xmax, ymin, ymax = self.bounds()
        xspan = max(xmax - xmin, 1e-9)
        yspan = max(ymax - ymin, 1e-9)
        grid = [[" "] * width for _ in range(height)]
        for c in self.classes_present():
            glyph = CLASS_GLYPHS[c]
            for x, y in self.points_of(c):
                col = int((x - xmin) / xspan * (width - 1))
                row = int((ymax - y) / yspan * (height - 1))
                grid[row][col] = glyph
        legend = "  ".join(f"{CLASS_GLYPHS[c]}={c.name}" for c in self.classes_present())
        border = "+" + "-" * width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        return f"{self.title}\n{border}\n{body}\n{border}\n{legend}"
