"""CSV export of regenerated evaluation artefacts.

Downstream users typically re-plot the paper's figures with their own
tooling; these helpers dump the underlying data series — cluster-diagram
points, schedule throughput bars, composition tables — as plain CSV.
Only the standard library is used (no pandas dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from ..core.labels import TABLE3_ORDER, SnapshotClass
from ..core.pipeline import ClassificationResult
from .clustering import ClusterDiagram


def export_cluster_diagram(diagram: ClusterDiagram, path: str | Path) -> Path:
    """Write a diagram's points as ``class,pc1,pc2`` rows."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["class", "pc1", "pc2"])
        for label, point in zip(diagram.labels, diagram.points):
            writer.writerow([SnapshotClass(int(label)).name, f"{point[0]:.6f}", f"{point[1]:.6f}"])
    return path


def export_compositions(
    named_results: Sequence[tuple[str, ClassificationResult]], path: str | Path
) -> Path:
    """Write Table 3 rows as ``application,num_samples,idle,io,cpu,net,mem``."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["application", "num_samples"] + [c.name.lower() for c in TABLE3_ORDER]
        )
        for name, result in named_results:
            writer.writerow(
                [name, result.num_samples]
                + [f"{result.composition.fraction(c):.6f}" for c in TABLE3_ORDER]
            )
    return path


def export_schedule_throughput(
    labels: Sequence[str], values: Sequence[float], path: str | Path
) -> Path:
    """Write Figure 4 bars as ``schedule,jobs_per_day`` rows.

    Raises
    ------
    ValueError
        If labels and values differ in length.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["schedule", "jobs_per_day"])
        for label, value in zip(labels, values):
            writer.writerow([label, f"{value:.3f}"])
    return path


def export_series_metrics(
    series, metric_names: Sequence[str], path: str | Path
) -> Path:
    """Write selected metric time series as ``timestamp,<metrics...>`` rows.

    Thin wrapper over :func:`repro.metrics.csv_io.series_to_csv`, kept for
    API continuity with the other exporters in this module.
    """
    from ..metrics.csv_io import series_to_csv

    return series_to_csv(series, path, list(metric_names))
