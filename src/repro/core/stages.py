"""Multi-stage application analysis.

The paper motivates classification partly by *multi-stage applications*
(§1): long-running scientific jobs whose stages stress different
resources, so identifying stages "presents opportunities to exploit
better matching of resource availability and application resource
requirement ... for instance, with process migration techniques".  §6
adds that the classifier "can be used to learn the resource consumption
patterns of ... multi-stage application's sub-stage".

This module implements that analysis on top of the classifier's output:
the per-snapshot class vector ``C(1×m)`` is smoothed with a sliding-mode
filter (to suppress single-snapshot flicker) and segmented into maximal
runs of one class — the application's *execution stages*.  Each stage
carries its time window and class; stage statistics feed migration-
opportunity detection: a stage is a migration opportunity when it is
long enough to amortize a migration and stresses a different resource
than its predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.series import SnapshotSeries
from .labels import ALL_CLASSES, ClassComposition, SnapshotClass
from .pipeline import ClassificationResult


def mode_filter(classes: np.ndarray, window: int = 3) -> np.ndarray:
    """Sliding-window majority smoothing of a shape-``(m,)`` class vector.

    Each element is replaced by the most frequent class in the centred
    window (ties keep the original value); returns a vector of the same
    shape.  *window* must be odd.  Class vectors are int64 under both
    numeric modes (``compute_dtype`` shapes the float kernels upstream,
    never the class codes), so smoothing and stage segmentation are
    exact regardless of the pipeline's compute dtype.

    Raises
    ------
    ValueError
        For even or non-positive windows.
    """
    classes = np.asarray(classes, dtype=np.int64)
    if window < 1 or window % 2 == 0:
        raise ValueError("window must be a positive odd number")
    if window == 1 or classes.size <= 2:
        return classes.copy()
    half = window // 2
    m = classes.size
    n_classes = int(classes.max()) + 1
    # Windowed per-class counts via a one-hot prefix sum: row ``i`` of
    # ``counts`` is ``bincount(classes[lo:hi], minlength=n_classes)``
    # exactly as the per-element reference loop computed it, but in a
    # handful of O(m·n_classes) integer vector ops (integer arithmetic
    # is exact, so the result is bit-identical to the loop).
    onehot = np.zeros((m + 1, n_classes), dtype=np.int64)
    onehot[np.arange(1, m + 1), classes] = 1
    prefix = np.cumsum(onehot, axis=0, out=onehot)
    idx = np.arange(m)
    lo = np.maximum(idx - half, 0)
    hi = np.minimum(idx + half + 1, m)
    counts = prefix[hi] - prefix[lo]
    # argmax takes the lowest class on a count tie — the same winner
    # bincount().argmax() produced per window.
    best = counts.argmax(axis=1)
    improve = counts[idx, best] > counts[idx, classes]
    return np.where(improve, best, classes)


@dataclass(frozen=True)
class Stage:
    """One maximal run of snapshots sharing a class."""

    index: int
    snapshot_class: SnapshotClass
    start_snapshot: int
    end_snapshot: int  # inclusive
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.end_snapshot < self.start_snapshot:
            raise ValueError("stage ends before it starts")

    @property
    def num_snapshots(self) -> int:
        """Snapshots covered by this stage (endpoints inclusive)."""
        return self.end_snapshot - self.start_snapshot + 1

    @property
    def duration(self) -> float:
        """Stage length in seconds (first to last snapshot timestamp)."""
        return self.end_time - self.start_time


@dataclass
class StageAnalysis:
    """Segmentation of one run into execution stages."""

    stages: list[Stage]
    smoothed_classes: np.ndarray
    sampling_interval: float

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("analysis needs at least one stage")

    @property
    def num_stages(self) -> int:
        """Number of maximal same-class runs found."""
        return len(self.stages)

    def is_multi_stage(self) -> bool:
        """More than one distinct class appears among the stages."""
        return len({s.snapshot_class for s in self.stages}) > 1

    def dominant_stage_class(self) -> SnapshotClass:
        """Class holding the most total snapshot time across stages."""
        totals = {c: 0 for c in ALL_CLASSES}
        for s in self.stages:
            totals[s.snapshot_class] += s.num_snapshots
        return max(totals, key=lambda c: (totals[c], -int(c)))

    def stage_composition(self) -> ClassComposition:
        """Fraction of snapshots per class, post-smoothing."""
        return ClassComposition.from_class_vector(self.smoothed_classes)

    def stages_of(self, c: SnapshotClass) -> list[Stage]:
        """All stages classified as *c*, in run order."""
        return [s for s in self.stages if s.snapshot_class is c]

    def mean_stage_duration(self) -> float:
        """Average stage length in seconds."""
        return float(np.mean([s.num_snapshots for s in self.stages])) * self.sampling_interval


def segment_stages(
    result: ClassificationResult,
    series: SnapshotSeries,
    smoothing_window: int = 3,
) -> StageAnalysis:
    """Segment a classified run into execution stages.

    Parameters
    ----------
    result:
        Classifier output for the run.
    series:
        The snapshot series that produced *result* (supplies timestamps).
    smoothing_window:
        Mode-filter width; 1 disables smoothing.

    Raises
    ------
    ValueError
        If the series length does not match the class vector.
    """
    if len(series) != result.num_samples:
        raise ValueError(
            f"series has {len(series)} snapshots but the result covers {result.num_samples}"
        )
    smoothed = mode_filter(result.class_vector, window=smoothing_window)
    interval = series.sampling_interval() or 1.0
    boundaries = np.flatnonzero(np.diff(smoothed)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries - 1, [smoothed.size - 1]])
    stages = [
        Stage(
            index=i,
            snapshot_class=SnapshotClass(int(smoothed[s])),
            start_snapshot=int(s),
            end_snapshot=int(e),
            start_time=float(series.timestamps[s]),
            end_time=float(series.timestamps[e]),
        )
        for i, (s, e) in enumerate(zip(starts, ends))
    ]
    return StageAnalysis(stages=stages, smoothed_classes=smoothed, sampling_interval=interval)


@dataclass(frozen=True)
class MigrationOpportunity:
    """A stage transition worth re-placing the application for."""

    from_stage: Stage
    to_stage: Stage

    @property
    def class_change(self) -> tuple[SnapshotClass, SnapshotClass]:
        """The ``(from, to)`` class pair across the transition."""
        return (self.from_stage.snapshot_class, self.to_stage.snapshot_class)


def find_migration_opportunities(
    analysis: StageAnalysis,
    min_stage_duration_s: float = 60.0,
    ignore_idle: bool = True,
) -> list[MigrationOpportunity]:
    """Stage transitions where re-placement could pay off.

    A transition qualifies when both the departing and the arriving stage
    last at least *min_stage_duration_s* (long enough to amortize a
    migration) and the stressed resource actually changes.  Transitions
    into or out of IDLE are skipped by default — idle machines don't need
    re-placing.
    """
    if min_stage_duration_s < 0:
        raise ValueError("min_stage_duration_s must be non-negative")
    out: list[MigrationOpportunity] = []
    for a, b in zip(analysis.stages, analysis.stages[1:]):
        if a.snapshot_class is b.snapshot_class:
            continue
        if ignore_idle and SnapshotClass.IDLE in (a.snapshot_class, b.snapshot_class):
            continue
        if a.duration < min_stage_duration_s or b.duration < min_stage_duration_s:
            continue
        out.append(MigrationOpportunity(from_stage=a, to_stage=b))
    return out
