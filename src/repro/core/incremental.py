"""Incremental (online) PCA.

The paper's §5.3 cost measurements argue the classifier is cheap enough
for *online training*.  This module supplies the missing algorithmic
piece: a PCA whose sufficient statistics (sample count, mean, scatter
matrix) are updated batch-by-batch with Chan et al.'s parallel/merge
formulas, so components can be re-extracted at any time without
revisiting old snapshots.  With ``p = 8`` expert metrics the scatter is
8×8 — a constant-time update per batch regardless of history length.

The result is numerically identical (to floating-point round-off) to a
batch :class:`repro.core.pca.PCA` fit on the concatenation of all
batches, which the test suite verifies.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .preprocessing import _check_matrix


class IncrementalPCA:
    """PCA over a stream of snapshot batches.

    Parameters
    ----------
    n_components:
        Components to extract, or ``None`` with *min_variance_fraction*.
    min_variance_fraction:
        Variance-threshold selection, as in :class:`repro.core.pca.PCA`.
    """

    def __init__(
        self,
        n_components: int | None = None,
        min_variance_fraction: float | None = None,
    ) -> None:
        if (n_components is None) == (min_variance_fraction is None):
            raise ValueError("specify exactly one of n_components / min_variance_fraction")
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        if min_variance_fraction is not None and not 0.0 < min_variance_fraction <= 1.0:
            raise ValueError("min_variance_fraction must be in (0, 1]")
        self.n_components = n_components
        self.min_variance_fraction = min_variance_fraction
        self.count_: int = 0
        self.mean_: np.ndarray | None = None
        self._scatter: np.ndarray | None = None  # Σ (x−μ)(x−μ)ᵀ

    # ------------------------------------------------------------------
    # streaming updates
    # ------------------------------------------------------------------
    def partial_fit(self, x: np.ndarray) -> "IncrementalPCA":
        """Fold a new ``(m, p)`` batch into the sufficient statistics.

        Raises
        ------
        ValueError
            On dimension mismatch with earlier batches.
        """
        x = _check_matrix(x)
        m, p = x.shape
        batch_mean = x.mean(axis=0)
        centered = x - batch_mean
        batch_scatter = centered.T @ centered
        if self.mean_ is None:
            self.count_ = m
            self.mean_ = batch_mean
            self._scatter = batch_scatter
            return self
        if p != self.mean_.shape[0]:
            raise ValueError(f"batch has {p} features, expected {self.mean_.shape[0]}")
        assert self._scatter is not None
        n = self.count_
        total = n + m
        delta = batch_mean - self.mean_
        # Chan/parallel merge: cross-term corrects for the mean shift.
        self._scatter = self._scatter + batch_scatter + np.outer(delta, delta) * (n * m / total)
        self.mean_ = self.mean_ + delta * (m / total)
        self.count_ = total
        return self

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def _eigendecompose(self) -> tuple[np.ndarray, np.ndarray]:
        if self._scatter is None or self.count_ < 2:
            raise RuntimeError("IncrementalPCA needs at least 2 samples before extraction")
        cov = self._scatter / (self.count_ - 1)
        eigenvalues, eigenvectors = scipy.linalg.eigh(cov)
        order = np.argsort(eigenvalues)[::-1]
        return np.clip(eigenvalues[order], 0.0, None), eigenvectors[:, order]

    def _select_count(self, eigenvalues: np.ndarray) -> int:
        if self.n_components is not None:
            if self.n_components > eigenvalues.shape[0]:
                raise ValueError("n_components exceeds feature dimension")
            return self.n_components
        assert self.min_variance_fraction is not None
        total = eigenvalues.sum()
        if total <= 0:
            return 1
        cumulative = np.cumsum(eigenvalues) / total
        return int(np.searchsorted(cumulative, self.min_variance_fraction - 1e-12) + 1)

    @property
    def components_(self) -> np.ndarray:
        """Current ``(q, p)`` principal directions (recomputed on access)."""
        eigenvalues, eigenvectors = self._eigendecompose()
        q = self._select_count(eigenvalues)
        components = eigenvectors[:, :q].T
        signs = np.sign(components[np.arange(q), np.argmax(np.abs(components), axis=1)])
        signs[signs == 0] = 1.0
        return components * signs[:, None]

    @property
    def explained_variance_(self) -> np.ndarray:
        """Eigenvalues of the currently kept components, shape ``(q,)``."""
        eigenvalues, _ = self._eigendecompose()
        return eigenvalues[: self._select_count(eigenvalues)]

    @property
    def explained_variance_ratio_(self) -> np.ndarray:
        """Kept eigenvalues over total variance, shape ``(q,)``."""
        eigenvalues, _ = self._eigendecompose()
        total = eigenvalues.sum()
        q = self._select_count(eigenvalues)
        return eigenvalues[:q] / total if total > 0 else np.zeros(q)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project ``(m, p)`` samples×features data onto the ``(m, q)`` space."""
        if self.mean_ is None:
            raise RuntimeError("IncrementalPCA.transform called before any partial_fit")
        x = _check_matrix(x)
        if x.shape[1] != self.mean_.shape[0]:
            raise ValueError(f"expected {self.mean_.shape[0]} features, got {x.shape[1]}")
        return (x - self.mean_) @ self.components_.T
