"""Principal Component Analysis, implemented from scratch (paper §3, §4.2.2).

PCA finds the best linear directions through the mean of the samples: the
eigenvectors of the scatter (covariance) matrix, whose eigenvalues give
each direction's contribution to the variance.  Keeping the ``q`` largest
reduces the feature space from ``p`` to ``q`` dimensions while preserving
the maximum amount of variance.

The paper selects components by a *minimal fraction of variance*
threshold, set in their experiments so that exactly ``q = 2`` components
are extracted (for cheap classification and 2-D cluster diagrams).  Both
selection modes are supported here: an explicit component count and a
variance-fraction threshold.

Implementation notes (per the HPC guides): the covariance matrix is
``p×p`` with ``p = 8``, so a symmetric eigendecomposition
(``scipy.linalg.eigh`` / LAPACK *syevd*) is both the fastest and the most
numerically stable route — no general SVD of the full data matrix is
needed.  A deterministic sign convention makes results reproducible
across BLAS builds.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .preprocessing import _check_matrix


class PCA:
    """Principal component analysis via scatter-matrix eigendecomposition.

    Parameters
    ----------
    n_components:
        Number of components ``q`` to keep.  Mutually exclusive with
        *min_variance_fraction*.
    min_variance_fraction:
        Keep the smallest number of components whose cumulative explained
        variance ratio reaches this threshold (the paper's selection
        rule).

    Attributes
    ----------
    components_:
        ``(q, p)`` array; rows are orthonormal principal directions,
        ordered by decreasing explained variance.
    explained_variance_:
        Eigenvalues of the kept components.
    explained_variance_ratio_:
        Eigenvalues normalized by the total variance.
    mean_:
        Per-feature training mean subtracted before projection.
    """

    def __init__(
        self,
        n_components: int | None = None,
        min_variance_fraction: float | None = None,
    ) -> None:
        if (n_components is None) == (min_variance_fraction is None):
            raise ValueError("specify exactly one of n_components / min_variance_fraction")
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        if min_variance_fraction is not None and not 0.0 < min_variance_fraction <= 1.0:
            raise ValueError("min_variance_fraction must be in (0, 1]")
        self.n_components = n_components
        self.min_variance_fraction = min_variance_fraction
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None
        self._all_eigenvalues: np.ndarray | None = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray) -> "PCA":
        """Fit on an ``(m, p)`` samples×features matrix.

        dtype: float64

        The fit is dtype-preserving at the interface: the eigensolve
        always runs at float64 (covariance accumulation and LAPACK
        *syevd* stay well-conditioned, and both compute modes therefore
        select identical component counts), while ``mean_`` and
        ``components_`` — the transform-time operands — are stored at
        the input's float dtype.  A float64 input round-trips through
        no-op casts, keeping the reference mode bit-identical.

        Raises
        ------
        ValueError
            If fewer than 2 samples are given, or the requested component
            count exceeds the feature dimension.
        """
        x = _check_matrix(x, dtype=None)
        out_dtype = x.dtype
        x = x.astype(np.float64, copy=False)
        m, p = x.shape
        if m < 2:
            raise ValueError("PCA needs at least 2 samples")
        if self.n_components is not None and self.n_components > p:
            raise ValueError(f"cannot keep {self.n_components} components of {p} features")
        mean = x.mean(axis=0)
        centered = x - mean
        # Scatter matrix normalized in place to the (m-1) covariance
        # estimator (identical values, one fewer p×p temporary).
        cov = centered.T @ centered
        cov /= m - 1
        eigenvalues, eigenvectors = scipy.linalg.eigh(cov)
        # eigh returns ascending order; we want descending.
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        self._all_eigenvalues = eigenvalues

        q = self._select_count(eigenvalues)
        components = eigenvectors[:, :q].T
        # Deterministic sign: largest-magnitude loading of each component
        # is positive.
        signs = np.sign(components[np.arange(q), np.argmax(np.abs(components), axis=1)])
        signs[signs == 0] = 1.0
        self.mean_ = mean.astype(out_dtype, copy=False)
        self.components_ = (components * signs[:, None]).astype(out_dtype, copy=False)
        self.explained_variance_ = eigenvalues[:q]
        total = eigenvalues.sum()
        self.explained_variance_ratio_ = (
            eigenvalues[:q] / total if total > 0 else np.zeros(q)
        )
        return self

    def _select_count(self, eigenvalues: np.ndarray) -> int:
        if self.n_components is not None:
            return self.n_components
        assert self.min_variance_fraction is not None
        total = eigenvalues.sum()
        if total <= 0:
            return 1
        cumulative = np.cumsum(eigenvalues) / total
        return int(np.searchsorted(cumulative, self.min_variance_fraction - 1e-12) + 1)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has extracted components."""
        return self.components_ is not None

    @property
    def n_components_(self) -> int:
        """Number of components actually kept.

        Raises
        ------
        RuntimeError
            Before fitting.
        """
        if self.components_ is None:
            raise RuntimeError("PCA not fitted")
        return self.components_.shape[0]

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project ``(m, p)`` data to the ``(m, q)`` component space.

        Raises
        ------
        RuntimeError
            Before fitting.
        ValueError
            On feature-dimension mismatch.
        """
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA.transform called before fit")
        x = _check_matrix(x, dtype=self.mean_.dtype)
        if x.shape[1] != self.mean_.shape[0]:
            raise ValueError(f"expected {self.mean_.shape[0]} features, got {x.shape[1]}")
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``(m, p)`` data *x* and return its ``(m, q)`` projection."""
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map ``(m, q)`` component-space points back to ``(m, p)`` feature space (lossy)."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA.inverse_transform called before fit")
        z = np.asarray(z, dtype=self.components_.dtype)
        if z.ndim != 2 or z.shape[1] != self.components_.shape[0]:
            raise ValueError(
                f"expected (m, {self.components_.shape[0]}) scores, got {z.shape}"
            )
        return z @ self.components_ + self.mean_

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error of ``(m, p)`` data *x* through the projection.

        dtype: float64
        """
        recon = self.inverse_transform(self.transform(x))
        return float(np.mean((np.asarray(x, dtype=np.float64) - recon) ** 2))

    def total_variance(self) -> float:
        """Sum of all eigenvalues of the fitted covariance."""
        if self._all_eigenvalues is None:
            raise RuntimeError("PCA not fitted")
        return float(self._all_eigenvalues.sum())
