"""The paper's primary contribution: the PCA + k-NN application classifier.

Preprocessing (expert metric selection + normalization), from-scratch PCA
with variance-fraction component selection, a from-scratch vectorized
k-NN classifier, the end-to-end classification pipeline with majority
vote and class composition, the cost model of §4.4, plus two extensions
the paper names as future work: incremental PCA for online training, and
automated relevance/redundancy feature selection.
"""

from .config import ClassifierConfig
from .cost_model import UnitCostModel
from .feature_selection import (
    SelectionResult,
    correlation_ratio,
    pearson_redundancy_matrix,
    select_features,
)
from .incremental import IncrementalPCA
from .knn import DEFAULT_CHUNK_SIZE, KNeighborsClassifier, pairwise_sq_distances
from .labels import (
    ALL_CLASSES,
    TABLE3_ORDER,
    ClassComposition,
    SnapshotClass,
    application_category,
    majority_vote,
)
from .online import NodeClassificationState, OnlineClassifier
from .pca import PCA
from .pipeline import (
    ApplicationClassifier,
    ClassificationResult,
    StageTimings,
)
from .preprocessing import MetricSelector, Normalizer, Preprocessor
from .stages import (
    MigrationOpportunity,
    Stage,
    StageAnalysis,
    find_migration_opportunities,
    mode_filter,
    segment_stages,
)

__all__ = [
    "ClassifierConfig",
    "UnitCostModel",
    "SelectionResult",
    "correlation_ratio",
    "pearson_redundancy_matrix",
    "select_features",
    "IncrementalPCA",
    "DEFAULT_CHUNK_SIZE",
    "KNeighborsClassifier",
    "pairwise_sq_distances",
    "ALL_CLASSES",
    "TABLE3_ORDER",
    "ClassComposition",
    "SnapshotClass",
    "application_category",
    "majority_vote",
    "PCA",
    "NodeClassificationState",
    "OnlineClassifier",
    "MigrationOpportunity",
    "Stage",
    "StageAnalysis",
    "find_migration_opportunities",
    "mode_filter",
    "segment_stages",
    "ApplicationClassifier",
    "ClassificationResult",
    "StageTimings",
    "MetricSelector",
    "Normalizer",
    "Preprocessor",
]
