"""Application and snapshot class labels.

The classifier labels every snapshot with one of five classes (the
training classes of paper Figure 3a): IDLE, IO, CPU, NET, MEM.  At the
application level the paper groups IO and MEM into a single
"I/O and paging-intensive" category; majority vote over snapshot labels
gives the application class, and per-class fractions give the *class
composition* used by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np


class SnapshotClass(IntEnum):
    """The five snapshot-level classes, in training-application order."""

    IDLE = 0
    IO = 1
    CPU = 2
    NET = 3
    MEM = 4

    @classmethod
    def from_label(cls, label: str) -> "SnapshotClass":
        """Parse a class from its string label (case-insensitive).

        Raises
        ------
        KeyError
            For unknown labels.
        """
        try:
            return cls[label.upper()]
        except KeyError:
            raise KeyError(
                f"unknown class label {label!r}; known: {[c.name for c in cls]}"
            ) from None


#: All classes in enum order.
ALL_CLASSES: tuple[SnapshotClass, ...] = tuple(SnapshotClass)

#: Paper Table 3 column order.
TABLE3_ORDER: tuple[SnapshotClass, ...] = (
    SnapshotClass.IDLE,
    SnapshotClass.IO,
    SnapshotClass.CPU,
    SnapshotClass.NET,
    SnapshotClass.MEM,
)


@dataclass(frozen=True)
class ClassComposition:
    """Per-class fractions of an application's snapshots.

    Fractions sum to 1 (within numerical tolerance).  This is the
    classifier's second output format (beyond the single majority-vote
    class) and the direct input to the cost model of paper §4.4.
    """

    fractions: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.fractions) != len(ALL_CLASSES):
            raise ValueError(f"need {len(ALL_CLASSES)} fractions, got {len(self.fractions)}")
        if any(f < 0 for f in self.fractions):
            raise ValueError("fractions must be non-negative")
        total = sum(self.fractions)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"fractions must sum to 1, got {total}")

    @classmethod
    def from_class_vector(cls, classes: np.ndarray) -> "ClassComposition":
        """Build from the class vector ``C``, shape ``(m,)`` — the paper's
        ``C(1×m)`` stage output of :class:`SnapshotClass` codes.

        Raises
        ------
        ValueError
            If the vector is empty or contains unknown class codes.
        """
        classes = np.asarray(classes, dtype=np.int64)
        if classes.size == 0:
            raise ValueError("cannot compute a composition from zero snapshots")
        if classes.min() < 0 or classes.max() >= len(ALL_CLASSES):
            raise ValueError("class vector contains unknown class codes")
        counts = np.bincount(classes, minlength=len(ALL_CLASSES))
        return cls(fractions=tuple((counts / classes.size).tolist()))

    def fraction(self, c: SnapshotClass) -> float:
        """Fraction of snapshots labelled *c*."""
        return self.fractions[int(c)]

    @property
    def idle(self) -> float:
        """Fraction of snapshots classified IDLE."""
        return self.fraction(SnapshotClass.IDLE)

    @property
    def io(self) -> float:
        """Fraction of snapshots classified IO."""
        return self.fraction(SnapshotClass.IO)

    @property
    def cpu(self) -> float:
        """Fraction of snapshots classified CPU."""
        return self.fraction(SnapshotClass.CPU)

    @property
    def net(self) -> float:
        """Fraction of snapshots classified NET."""
        return self.fraction(SnapshotClass.NET)

    @property
    def mem(self) -> float:
        """Fraction of snapshots classified MEM."""
        return self.fraction(SnapshotClass.MEM)

    def dominant(self) -> SnapshotClass:
        """Majority class; ties break toward the lower class code."""
        return SnapshotClass(int(np.argmax(self.fractions)))

    def as_dict(self) -> dict[str, float]:
        """``{class_name: fraction}`` in enum order."""
        return {c.name: self.fractions[int(c)] for c in ALL_CLASSES}

    def as_percentages(self) -> dict[str, float]:
        """``{class_name: percent}`` — the paper's Table 3 format."""
        return {name: 100.0 * frac for name, frac in self.as_dict().items()}


def majority_vote(classes: np.ndarray) -> SnapshotClass:
    """The application class: majority vote over the shape-``(m,)`` class vector."""
    return ClassComposition.from_class_vector(classes).dominant()


def application_category(
    composition: ClassComposition, dominant: SnapshotClass | None = None
) -> str:
    """Map a composition to the paper's application-level category.

    IO and MEM merge into "IO & Paging Intensive"; applications with a
    substantial idle share and a mix of other activity are the paper's
    "Idle + Others" interactive category.  Callers that already computed
    the composition's dominant class (the batched serving kernel does,
    for a whole fleet at once) may pass it to skip the re-derivation; it
    must equal ``composition.dominant()``.
    """
    # Interactive: substantial idle mixed with real activity.
    if composition.idle >= 0.15 and composition.idle < 0.9:
        return "Idle + Others"
    if dominant is None:
        dominant = composition.dominant()
    if dominant is SnapshotClass.CPU:
        return "CPU Intensive"
    if dominant in (SnapshotClass.IO, SnapshotClass.MEM):
        return "IO & Paging Intensive"
    if dominant is SnapshotClass.NET:
        return "Network Intensive"
    return "Idle"
