"""The application classifier pipeline (paper Figure 2).

End-to-end dimension reduction and classification::

    A(n×m) --preprocess--> A'(p×m) --PCA--> B(q×m) --classify--> C(1×m) --vote--> Class

* train on labelled snapshot series from the training applications
  (PostMark→IO, SPECseis96→CPU, Pagebench→MEM, Ettcp→NET, idle→IDLE);
* classify each snapshot of a test run with the 3-NN classifier in the
  2-component PCA space;
* output both the majority-vote application *Class* and the full *class
  composition*, plus per-stage wall-clock timings (the paper's §5.3
  classification-cost accounting).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import EmptySeriesError, NotTrainedError
from ..metrics.series import SnapshotSeries
from ..obs import (
    enabled as obs_enabled,
    get_registry as obs_get_registry,
    span as obs_span,
)
from .config import ClassifierConfig
from .knn import KNeighborsClassifier
from .labels import (
    ClassComposition,
    SnapshotClass,
    application_category,
    majority_vote,
)
from .pca import PCA
from .preprocessing import MetricSelector, Normalizer, Preprocessor


#: A clock is any zero-argument callable returning seconds as a float.
#: ``time.perf_counter`` (held as a reference, never called directly by
#: pipeline code) is the production default; tests inject fake clocks to
#: keep classification output bit-reproducible.
Clock = Callable[[], float]

#: Production clock for :class:`StageTimings` accounting.  This is the
#: single sanctioned wall-clock touchpoint in ``repro.core`` — everything
#: else must receive time through an injected ``Clock``.
DEFAULT_CLOCK: Clock = time.perf_counter


@dataclass
class StageTimings:
    """Wall-clock seconds spent in each classification stage."""

    preprocess_s: float = 0.0
    pca_s: float = 0.0
    classify_s: float = 0.0
    vote_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total seconds across all four stages."""
        return self.preprocess_s + self.pca_s + self.classify_s + self.vote_s

    def per_sample_ms(self, num_samples: int) -> float:
        """Unit classification cost in milliseconds per snapshot."""
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        return 1000.0 * self.total_s / num_samples


@dataclass
class ClassificationResult:
    """Everything the classification center outputs for one run."""

    node: str
    num_samples: int
    class_vector: np.ndarray = field(repr=False)
    composition: ClassComposition
    application_class: SnapshotClass
    category: str
    scores: np.ndarray = field(repr=False)
    timings: StageTimings = field(default_factory=StageTimings)

    def percent(self, c: SnapshotClass) -> float:
        """Composition percentage of class *c* (Table 3 format)."""
        return 100.0 * self.composition.fraction(c)


class ApplicationClassifier:
    """PCA + k-NN application classifier.

    Parameters
    ----------
    selector:
        Metric subset to use (default: the paper's 8 expert metrics).
    n_components:
        PCA components ``q``; the paper's threshold extracts exactly 2.
        Mutually exclusive with *min_variance_fraction*.
    min_variance_fraction:
        Variance-based component selection, if preferred.
    k:
        Neighbors in the vote (default 3, odd required).
    compute_dtype:
        ``"float64"`` (default) — the bit-identical reference mode,
        byte-for-byte reproducible against the pre-tolerance-mode
        pipeline — or ``"float32"`` — the documented tolerance mode:
        every fitted parameter, intermediate buffer, and GEMM on the
        classification path runs at float32, and the per-snapshot
        normalize→center→project stages collapse into one fused GEMM
        (+bias) against the folded projection built at train time.
    clock:
        Injected clock for the §5.3 stage-timing accounting (defaults to
        :data:`DEFAULT_CLOCK`); pass a fake for deterministic timings.

    All tuning parameters are keyword-only; passing them positionally is
    deprecated (one-release shim, see ``docs/API.md``).
    """

    #: Positional-shim order of the pre-1.1 signature.
    _TUNING_PARAMS = ("selector", "n_components", "min_variance_fraction", "k", "clock")

    def __init__(
        self,
        *args: object,
        selector: MetricSelector | None = None,
        n_components: int | None = 2,
        min_variance_fraction: float | None = None,
        k: int = 3,
        compute_dtype: str = "float64",
        clock: Clock | None = None,
    ) -> None:
        if args:
            warnings.warn(
                "passing ApplicationClassifier tuning parameters positionally "
                "is deprecated and will be removed in the next release; use "
                "keyword arguments (selector=..., n_components=..., ...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > len(self._TUNING_PARAMS):
                raise TypeError(
                    f"ApplicationClassifier takes at most "
                    f"{len(self._TUNING_PARAMS)} tuning arguments, got {len(args)}"
                )
            shim = dict(zip(self._TUNING_PARAMS, args))
            selector = shim.get("selector", selector)
            n_components = shim.get("n_components", n_components)
            min_variance_fraction = shim.get("min_variance_fraction", min_variance_fraction)
            k = shim.get("k", k)
            clock = shim.get("clock", clock)
        if compute_dtype not in ("float64", "float32"):
            raise ValueError(
                f"compute_dtype must be 'float64' or 'float32', got {compute_dtype!r}"
            )
        self.compute_dtype = compute_dtype
        self._dtype = np.dtype(compute_dtype)
        self.clock: Clock = clock if clock is not None else DEFAULT_CLOCK
        self.preprocessor = Preprocessor(
            selector=selector or MetricSelector(),
            normalizer=Normalizer(dtype=self._dtype),
        )
        if min_variance_fraction is not None:
            n_components = None
        self.pca = PCA(n_components=n_components, min_variance_fraction=min_variance_fraction)
        self.knn = KNeighborsClassifier(k=k)
        self.training_scores_: np.ndarray | None = None
        self.training_labels_: np.ndarray | None = None
        # Folded normalize→center→project operands, built at train time:
        # scores == raw_selected @ fused_weights_ + fused_bias_ (the
        # tolerance mode's single-GEMM classification kernel).
        self.fused_weights_: np.ndarray | None = None
        self.fused_bias_: np.ndarray | None = None
        # Cached observability instrument handles, keyed by
        # (registry, generation); see _obs_instruments().
        self._obs_cache: tuple | None = None

    @classmethod
    def from_config(cls, config: ClassifierConfig) -> "ApplicationClassifier":
        """Construct a classifier from a :class:`ClassifierConfig`.

        The config is the sanctioned way to carry tuning parameters
        through the serving layer (it doubles as the model-cache key).
        Both numeric modes construct here: ``compute_dtype="float64"``
        is the bit-identical reference pipeline and
        ``compute_dtype="float32"`` the tolerance mode (see
        ``docs/API.md`` § Numeric modes).
        """
        return cls(
            selector=config.selector(),
            n_components=config.n_components,
            min_variance_fraction=config.min_variance_fraction,
            k=config.k,
            compute_dtype=config.compute_dtype,
            clock=config.clock,
        )

    @property
    def config(self) -> ClassifierConfig:
        """The :class:`ClassifierConfig` equivalent to this classifier.

        Reconstructed from the live components, so it is accurate for
        classifiers built with scattered kwargs too; the clock is
        excluded from config equality, making this usable as a cache key.
        """
        return ClassifierConfig(
            metric_names=self.preprocessor.selector.names,
            n_components=self.pca.n_components,
            min_variance_fraction=self.pca.min_variance_fraction,
            k=self.knn.k,
            compute_dtype=self.compute_dtype,
            clock=self.clock,
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, training_data: Sequence[tuple[SnapshotSeries, SnapshotClass]]) -> "ApplicationClassifier":
        """Fit preprocessing, PCA, and the k-NN pool on labelled series.

        Every snapshot of each series is labelled with the series' class
        (the paper trains on whole runs of class-representative
        applications).

        Raises
        ------
        ValueError
            If no training data, or fewer than 2 distinct classes, are
            provided.
        """
        if not training_data:
            raise ValueError("no training data given")
        labels = {label for _, label in training_data}
        if len(labels) < 2:
            raise ValueError("training data must cover at least 2 classes")
        series_list = [series for series, _ in training_data]
        self.preprocessor.fit(series_list)
        features = []
        y = []
        for series, label in training_data:
            f = self.preprocessor.transform_series(series)
            features.append(f)
            y.append(np.full(f.shape[0], int(label), dtype=np.int64))
        x = np.vstack(features)
        y_arr = np.concatenate(y)
        scores = self.pca.fit_transform(x)
        self.knn.fit(scores, y_arr)
        self.training_scores_ = scores
        self.training_labels_ = y_arr
        self._build_fused_projection()
        return self

    def _build_fused_projection(self) -> None:
        """Fold the Normalizer affine and PCA centering into one projection.

        With ``μn, σn`` the normalizer statistics, ``μp`` the PCA mean,
        and ``W`` the ``(q, p)`` component matrix, the staged pipeline
        computes ``((x − μn)/σn − μp) @ Wᵀ``.  Distributing gives the
        affine form ``x @ (Wᵀ/σn) + c`` with
        ``c = −(μn/σn + μp) @ Wᵀ`` — one GEMM plus a bias broadcast per
        classification instead of three elementwise passes and a GEMM.
        Built in both modes (the operands carry the compute dtype); the
        classification paths use it in the float32 tolerance mode, while
        the float64 reference mode keeps the staged kernels so its
        outputs stay bit-identical to the pre-fusion pipeline.
        """
        normalizer = self.preprocessor.normalizer
        components_t = self.pca.components_.T
        self.fused_weights_ = components_t / normalizer.scale_[:, None]
        self.fused_bias_ = -(
            (normalizer.mean_ / normalizer.scale_ + self.pca.mean_) @ components_t
        )

    @property
    def trained(self) -> bool:
        """True once :meth:`train` has fitted the k-NN pool."""
        return self.knn.fitted

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _obs_instruments(self) -> tuple[dict, object, object]:
        """Instrument handles for the hot path, cached per registry epoch.

        ``classify_series`` observes five stage latencies and two
        counters per call; resolving each through the registry's
        get-or-create (label normalization, dict keys) would dominate
        the instrumentation budget.  Handles stay valid until the
        registry is swapped (disable/enable) or reset, both of which
        change the ``(registry, generation)`` cache key.
        """
        registry = obs_get_registry()
        cache = self._obs_cache
        if cache is not None and cache[0] is registry and cache[1] == registry.generation:
            return cache[2], cache[3], cache[4]
        stage_hists = {
            stage: registry.histogram(
                "pipeline.stage.seconds",
                help="Latency of one classification pipeline stage.",
                stage=stage,
            )
            for stage in ("filter", "normalize", "pca", "knn", "postprocess")
        }
        snapshots_c = registry.counter(
            "pipeline.snapshots", help="Snapshots classified by classify_series."
        )
        runs_c = registry.counter("pipeline.runs", help="Series classified end to end.")
        self._obs_cache = (registry, registry.generation, stage_hists, snapshots_c, runs_c)
        return stage_hists, snapshots_c, runs_c

    def classify_series(self, series: SnapshotSeries) -> ClassificationResult:
        """Classify every snapshot of *series* and aggregate.

        Raises
        ------
        NotTrainedError
            If called before training (a ``RuntimeError`` subclass).
        EmptySeriesError
            If the series is empty (a ``ValueError`` subclass).
        """
        if not self.trained:
            raise NotTrainedError("classifier not trained")
        if len(series) == 0:
            raise EmptySeriesError("cannot classify an empty series")
        timings = StageTimings()
        clock = self.clock

        # Observability reuses the §5.3 StageTimings clock reads: one
        # tracing span wraps the whole pipeline and the per-stage
        # latencies go into the ``pipeline.stage.seconds`` histogram
        # family.  (Per-stage *spans* cost too much on this hot path —
        # six span entries/exits per call measurably exceed the 5%
        # overhead budget, five histogram observations do not.)  While
        # obs is disabled (the default) the span is a shared no-op and
        # ``timed`` is False, so the clock-call sequence is exactly the
        # classic four stage pairs.
        # The float32 tolerance mode swaps the staged normalize→center→
        # project stages for the fused single-GEMM projection built at
        # train time: the "normalize" slot becomes the one float32
        # downcast and the "pca" slot the fused GEMM (+bias).  The
        # float64 reference mode keeps the staged kernels bit-identical
        # to the pre-fusion pipeline.
        tolerance = self.compute_dtype != "float64"
        timed = obs_enabled()
        with obs_span("pipeline.classify", clock=clock):
            t0 = t = clock()
            selected = self.preprocessor.selector.transform_series(series)
            t_filter = clock() if timed else 0.0
            if tolerance:
                features = selected.astype(self._dtype)
            else:
                features = self.preprocessor.normalizer.transform(selected)
            t1 = clock()
            timings.preprocess_s = t1 - t

            t_pca = clock()
            if tolerance:
                scores = features @ self.fused_weights_
                scores += self.fused_bias_
            else:
                scores = self.pca.transform(features)
            timings.pca_s = clock() - t_pca

            t_knn = clock()
            class_vector = self.knn.predict(scores)
            timings.classify_s = clock() - t_knn

            t_vote = clock()
            composition = ClassComposition.from_class_vector(class_vector)
            app_class = majority_vote(class_vector)
            category = application_category(composition)
            timings.vote_s = clock() - t_vote

            # Under a request trace (an enclosing span carrying a
            # nonzero trace id) the per-stage latencies become child
            # spans too — synthesized from the clock reads already
            # taken, so tracing adds zero extra clock calls here.
            if timed:
                registry = obs_get_registry()
                if registry.current_trace_id():
                    registry.emit_spans(
                        (
                            ("pipeline.stage.filter", t0, t_filter - t0),
                            ("pipeline.stage.normalize", t_filter, t1 - t_filter),
                            ("pipeline.stage.pca", t_pca, timings.pca_s),
                            ("pipeline.stage.knn", t_knn, timings.classify_s),
                            ("pipeline.stage.postprocess", t_vote, timings.vote_s),
                        )
                    )
        if timed:
            stage_hists, snapshots_c, runs_c = self._obs_instruments()
            for stage, duration in (
                ("filter", t_filter - t0),
                ("normalize", t1 - t_filter),
                ("pca", timings.pca_s),
                ("knn", timings.classify_s),
                ("postprocess", timings.vote_s),
            ):
                stage_hists[stage].observe(duration)
            snapshots_c.inc(len(series))
            runs_c.inc()

        return ClassificationResult(
            node=series.node,
            num_samples=len(series),
            class_vector=class_vector,
            composition=composition,
            application_class=app_class,
            category=category,
            scores=scores,
            timings=timings,
        )

    def classify_snapshot_features(self, features: np.ndarray) -> np.ndarray:
        """Classify pre-selected raw feature rows (utility for streaming).

        *features* is oriented samples×metrics — shape ``(k, p)`` for
        ``k`` snapshots of the ``p`` selected metrics (the transpose of
        the paper's ``p×m`` convention, one row per snapshot); returns
        the length-``k`` class vector.  In the float32 tolerance mode
        the rows go through the fused projection (one GEMM + bias); the
        float64 reference mode keeps the staged path bit-identical.
        """
        if self.compute_dtype != "float64":
            x = np.asarray(features, dtype=self._dtype)
            scores = x @ self.fused_weights_
            scores += self.fused_bias_
            return self.knn.predict(scores)
        normalized = self.preprocessor.transform_features(features)
        return self.knn.predict(self.pca.transform(normalized))

    def classify_rows(self, features: np.ndarray) -> np.ndarray:
        """Batch-size-invariant classification of raw feature rows.

        Same contract as :meth:`classify_snapshot_features` — ``(k, p)``
        pre-selected raw feature rows in, length-``k`` class vector out —
        but with a guarantee the GEMM-based paths cannot make: **row
        *i*'s class is bit-identical for any batch size**, because every
        projection is accumulated feature column by feature column with
        elementwise broadcasts (fixed order, no shape-dependent BLAS
        kernel selection) and the neighbor search runs
        :meth:`~repro.core.knn.KNeighborsClassifier.predict_rows`.

        This is the streaming-ingest kernel: the unified ``classify``
        protocol method and the drained-batch ``pump`` both run it,
        which makes "drain a window, classify a batch" bit-identical
        (per compute dtype) to classifying each announcement alone.
        The float64 mode keeps the staged normalize→center→project
        structure of the reference pipeline; the float32 tolerance mode
        accumulates the fused affine projection.
        """
        x = np.asarray(features, dtype=self._dtype)
        if x.ndim != 2:
            raise ValueError(f"expected (k, p) feature rows, got shape {x.shape}")
        if self.compute_dtype != "float64":
            weights = self.fused_weights_  # (p, q)
            scores = np.empty((x.shape[0], weights.shape[1]), dtype=self._dtype)
            scores[:] = self.fused_bias_
            scratch = np.empty_like(scores)
            for j in range(weights.shape[0]):
                np.multiply(x[:, j][:, None], weights[j][None, :], out=scratch)
                scores += scratch
            return self.knn.predict_rows(scores)
        centered = self.preprocessor.transform_features(x)
        centered -= self.pca.mean_
        components = self.pca.components_  # (q, p)
        scores = np.multiply(centered[:, 0][:, None], components[:, 0][None, :])
        scratch = np.empty_like(scores)
        for j in range(1, centered.shape[1]):
            np.multiply(centered[:, j][:, None], components[:, j][None, :], out=scratch)
            scores += scratch
        return self.knn.predict_rows(scores)
