"""k-Nearest Neighbor classifier, implemented from scratch (paper §3).

The k-NN classifier decides the class of a test point by majority vote of
its *k* geometrically nearest training points (the paper uses ``k = 3``
and requires *k* odd).  Distances are Euclidean in the (PCA-reduced)
feature space.

Implementation follows the HPC guides: the distance matrix is computed
with the vectorized ``‖a−b‖² = ‖a‖² − 2a·b + ‖b‖²`` expansion (one GEMM
instead of Python loops) with the pool-side ``‖b‖²`` term cached once at
fit time, and test sets are processed in chunks to bound peak memory at
a few megabytes regardless of pool size.  The classifier is
dtype-preserving: the pool is stored at the training scores' float dtype
(float64 reference mode or float32 tolerance mode) and queries, distance
buffers, and vote accumulators all follow it.  Tie-breaking is
deterministic: among tied vote counts, the class with the smaller summed
neighbor distance wins, then the smaller class code.
"""

from __future__ import annotations

import numpy as np

from .preprocessing import _check_matrix

#: Rows of the test chunk processed per GEMM (bounds the distance buffer).
DEFAULT_CHUNK_SIZE: int = 2048


def pairwise_sq_distances(
    a: np.ndarray, b: np.ndarray, b_sq_norms: np.ndarray | None = None
) -> np.ndarray:
    """Squared Euclidean distances between rows of *a* and rows of *b*.

    dtype: preserve

    Both inputs are row-per-sample (the transpose of the paper's ``q×m``
    column convention); returns a matrix of shape ``(len(a), len(b))``
    in the inputs' (promoted) float dtype.  The in-place
    ``(−2ab) + aa + bb`` assembly cancels catastrophically when a query
    coincides with a pool point — the result can come out as a tiny
    *negative* squared distance (≈ −ε·‖x‖², far worse in float32),
    which would poison ``1/d`` weighted votes and tie ordering — so the
    matrix is clamped at 0.0 in place before returning.

    *b_sq_norms* optionally supplies precomputed per-row squared norms
    of *b* (``np.einsum("ij,ij->i", b, b)``): the k-NN hot path hands in
    the norms cached at fit time so repeated query batches stop
    recomputing ``‖b‖²`` over the whole training pool.  The cached
    values are exactly the ones this function would compute, so the
    output is bit-identical either way.
    """
    a = _check_matrix(a, dtype=None)
    b = _check_matrix(b, dtype=None)
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    aa = np.einsum("ij,ij->i", a, a)[:, None]
    if b_sq_norms is None:
        bb = np.einsum("ij,ij->i", b, b)[None, :]
    else:
        bb = np.asarray(b_sq_norms)
        if bb.shape != (b.shape[0],):
            raise ValueError(
                f"b_sq_norms shape {bb.shape} does not match {b.shape[0]} pool rows"
            )
        bb = bb[None, :]
    # Assemble in place on the GEMM output — no full-size temporaries.
    # Bit-identical to ``aa - 2.0 * ab + bb``: negation is exact, so
    # ``ab *= -2.0`` equals ``-(2.0 * ab)``, and IEEE addition commutes.
    d2 = a @ b.T
    d2 *= -2.0
    d2 += aa
    d2 += bb
    np.maximum(d2, 0.0, out=d2)
    return d2


def rowwise_sq_distances(
    a: np.ndarray, b: np.ndarray, b_sq_norms: np.ndarray | None = None
) -> np.ndarray:
    """Batch-size-invariant variant of :func:`pairwise_sq_distances`.

    dtype: preserve

    Same ``(len(a), len(b))`` squared-distance matrix and the same
    in-place ``(−2ab) + aa + bb`` assembly and zero clamp, but the
    ``a·bᵀ`` term is accumulated feature column by feature column with
    broadcast multiplies instead of one GEMM.  BLAS selects different
    GEMM kernels by operand shape, so ``pairwise_sq_distances`` on a
    ``(1, q)`` query and on row *i* of an ``(m, q)`` stack may differ in
    the last bits; here every operation is elementwise with a fixed
    accumulation order over the ``q`` feature columns, so row *i*'s
    distances are bit-identical for **any** batch size.  This is the
    streaming-ingest distance kernel: the per-announcement path and the
    drained-batch path both run it, which is what makes their results
    bit-identical by construction.  ``q`` is the PCA dimension (2 for
    the paper's configuration), so the column loop is two fused passes,
    not a scalar loop.
    """
    a = _check_matrix(a, dtype=None)
    b = _check_matrix(b, dtype=None)
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    aa = np.einsum("ij,ij->i", a, a)[:, None]
    if b_sq_norms is None:
        bb = np.einsum("ij,ij->i", b, b)[None, :]
    else:
        bb = np.asarray(b_sq_norms)
        if bb.shape != (b.shape[0],):
            raise ValueError(
                f"b_sq_norms shape {bb.shape} does not match {b.shape[0]} pool rows"
            )
        bb = bb[None, :]
    q = a.shape[1]
    # ab[i, t] = Σ_j a[i, j]·b[t, j], accumulated j = 0, 1, … with one
    # preallocated scratch — fixed order, no GEMM, no per-column buffer.
    d2 = np.multiply(a[:, 0][:, None], b[:, 0][None, :])
    scratch = np.empty_like(d2)
    for j in range(1, q):
        np.multiply(a[:, j][:, None], b[:, j][None, :], out=scratch)
        d2 += scratch
    d2 *= -2.0
    d2 += aa
    d2 += bb
    np.maximum(d2, 0.0, out=d2)
    return d2


class KNeighborsClassifier:
    """Vote-of-k-nearest-neighbors classifier.

    Parameters
    ----------
    k:
        Number of neighbors; must be a positive odd number (paper §3:
        "the votes of k (an odd number) nearest neighbors").
    chunk_size:
        Test rows per distance-matrix block.
    weighted:
        With ``True``, votes are weighted by inverse distance (closer
        neighbors count more) instead of the paper's plain majority —
        an ablation knob, off by default for paper fidelity.
    """

    def __init__(
        self, k: int = 3, chunk_size: int = DEFAULT_CHUNK_SIZE, weighted: bool = False
    ) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        if k % 2 == 0:
            raise ValueError("k must be odd (majority vote)")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.k = k
        self.chunk_size = chunk_size
        self.weighted = bool(weighted)
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Store the training pool.

        *x* has shape ``(n, q)`` — one row per training snapshot in the
        ``q``-dimensional PCA space — and *y* is the matching length-``n``
        class-code vector.  The pool is stored at *x*'s float dtype
        (float64 reference mode or float32 tolerance mode), and every
        inference buffer follows the fitted dtype from then on.  The
        per-row squared norms ``‖b‖²`` of the pool — the constant term
        of the distance expansion — are computed once here, so
        :meth:`kneighbors` stops recomputing them per query batch.

        Raises
        ------
        ValueError
            If labels don't match samples, or fewer than *k* samples are
            given.
        """
        x = _check_matrix(x, dtype=None)
        y = np.asarray(y, dtype=np.int64)
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError(f"labels shape {y.shape} does not match {x.shape[0]} samples")
        if x.shape[0] < self.k:
            raise ValueError(f"need at least k={self.k} training samples, got {x.shape[0]}")
        self._x = x.copy()
        self._y = y.copy()
        self._classes = np.unique(y)
        self._sq_norms = np.einsum("ij,ij->i", self._x, self._x)
        return self

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has stored a training pool."""
        return self._x is not None

    @property
    def n_training_samples(self) -> int:
        """Size of the stored training pool.

        Raises
        ------
        RuntimeError
            Before fitting.
        """
        if self._x is None:
            raise RuntimeError("classifier not fitted")
        return self._x.shape[0]

    @property
    def training_points(self) -> np.ndarray:
        """The fitted ``(n, q)`` training pool (the serving kernel's read view).

        Raises
        ------
        RuntimeError
            Before fitting.
        """
        if self._x is None:
            raise RuntimeError("classifier not fitted")
        return self._x

    @property
    def training_labels(self) -> np.ndarray:
        """The fitted class-code vector, shape ``(n,)``.

        Raises
        ------
        RuntimeError
            Before fitting.
        """
        if self._y is None:
            raise RuntimeError("classifier not fitted")
        return self._y

    @property
    def training_sq_norms(self) -> np.ndarray:
        """Per-fit cached ``‖b‖²`` of the training pool, shape ``(n,)``.

        The constant term of the ``‖a‖² + ‖b‖² − 2a·bᵀ`` distance
        expansion, computed once in :meth:`fit`; the batched serving
        kernel reads it here instead of re-reducing the pool per call.

        Raises
        ------
        RuntimeError
            Before fitting.
        """
        if self._sq_norms is None:
            raise RuntimeError("classifier not fitted")
        return self._sq_norms

    @property
    def dtype(self) -> np.dtype:
        """Float dtype of the fitted training pool.

        Raises
        ------
        RuntimeError
            Before fitting.
        """
        if self._x is None:
            raise RuntimeError("classifier not fitted")
        return self._x.dtype

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def kneighbors(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Indices and distances of the k nearest training points.

        *x* is row-per-sample, shape ``(m, q)``.  Returns
        ``(indices, distances)``, both of shape ``(m, k)``, neighbors
        sorted by increasing distance.  Queries are routed through the
        fitted pool's dtype (a float32 model computes float32 distances
        instead of silently upcasting), and the ``‖b‖²`` term comes
        from the per-fit cache rather than a per-batch reduction.
        """
        if self._x is None:
            raise RuntimeError("classifier not fitted")
        x = _check_matrix(x, dtype=self._x.dtype)
        m = x.shape[0]
        indices = np.empty((m, self.k), dtype=np.int64)
        distances = np.empty((m, self.k), dtype=self._x.dtype)
        for start in range(0, m, self.chunk_size):
            stop = min(start + self.chunk_size, m)
            d2 = pairwise_sq_distances(x[start:stop], self._x, b_sq_norms=self._sq_norms)
            self._topk_into(d2, indices[start:stop], distances[start:stop])
        return indices, distances

    def _topk_into(self, d2: np.ndarray, idx_out: np.ndarray, dist_out: np.ndarray) -> None:
        """Select the k nearest per row of a squared-distance chunk.

        *d2* has shape ``(c, n)``; writes the sorted neighbor indices
        and (square-rooted) distances into the ``(c, k)`` output slices.
        argpartition for the k smallest, then sort just those — every
        step is row-wise, so selection is batch-size-invariant.
        """
        part = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
        part_d = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        idx_out[:] = np.take_along_axis(part, order, axis=1)
        dist_out[:] = np.sqrt(np.take_along_axis(part_d, order, axis=1))

    def kneighbors_rows(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch-size-invariant neighbor search (streaming-ingest kernel).

        Same contract as :meth:`kneighbors` — ``(m, q)`` queries in,
        sorted ``(m, k)`` ``(indices, distances)`` out — but distances
        come from :func:`rowwise_sq_distances`, whose bits for row *i*
        do not depend on how many rows share the batch.  The top-k
        selection and the vote are row-wise already, so a drained batch
        of announcements classifies bit-identically to the same
        announcements one at a time.
        """
        if self._x is None:
            raise RuntimeError("classifier not fitted")
        x = _check_matrix(x, dtype=self._x.dtype)
        m = x.shape[0]
        indices = np.empty((m, self.k), dtype=np.int64)
        distances = np.empty((m, self.k), dtype=self._x.dtype)
        for start in range(0, m, self.chunk_size):
            stop = min(start + self.chunk_size, m)
            d2 = rowwise_sq_distances(x[start:stop], self._x, b_sq_norms=self._sq_norms)
            self._topk_into(d2, indices[start:stop], distances[start:stop])
        return indices, distances

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class codes for each test row (majority vote, deterministic ties).

        *x* is row-per-sample, shape ``(m, q)``; returns the length-``m``
        class vector ``C`` (the paper's ``C(1×m)`` stage output).
        """
        indices, distances = self.kneighbors(x)
        return self.vote(indices, distances)

    def predict_rows(self, x: np.ndarray) -> np.ndarray:
        """Batch-size-invariant :meth:`predict` (streaming-ingest kernel).

        *x* is row-per-sample, shape ``(m, q)``; returns the length-``m``
        class vector.  Routes through :meth:`kneighbors_rows` and the
        shared :meth:`vote`, so row *i*'s class is bit-identical whether
        it arrives alone or inside a drained batch of any size.
        """
        indices, distances = self.kneighbors_rows(x)
        return self.vote(indices, distances)

    def vote(self, indices: np.ndarray, distances: np.ndarray) -> np.ndarray:
        """Class codes from precomputed ``(m, k)`` neighbor indices/distances.

        This is the voting half of :meth:`predict`, split out so callers
        that compute neighbors differently (notably the batched serving
        kernel, which stacks many runs into one neighbor search) vote
        through exactly the same code path.  Every voting rule —
        unweighted majority, the weighted ablation, and the
        deterministic tie-breaks — operates row-independently, so
        voting on stacked rows is bit-identical to voting per run.
        """
        if self._y is None:
            raise RuntimeError("classifier not fitted")
        neighbor_labels = self._y[indices]  # (m, k)
        m = neighbor_labels.shape[0]
        n_classes = int(self._y.max()) + 1
        if self.weighted:
            return self._predict_weighted(neighbor_labels, distances, n_classes)
        # Vote counts per class, vectorized with a bincount over flattened
        # (row, class) keys.
        keys = (np.arange(m)[:, None] * n_classes + neighbor_labels).ravel()
        votes = np.bincount(keys, minlength=m * n_classes).reshape(m, n_classes)
        # Distance sums per class (tie-break 1: smaller total distance),
        # accumulated at the model's compute dtype (float64 path unchanged).
        dist_sums = np.zeros((m, n_classes), dtype=distances.dtype)
        np.add.at(
            dist_sums,
            (np.repeat(np.arange(m), self.k), neighbor_labels.ravel()),
            distances.ravel(),
        )
        # Rank: most votes, then smallest distance sum, then smallest code.
        # Compose a sortable score; votes dominate, then negative distance.
        best = np.full(m, -1, dtype=np.int64)
        best_votes = np.full(m, -1, dtype=np.int64)
        best_dist = np.full(m, np.inf, dtype=distances.dtype)
        for c in range(n_classes):
            v = votes[:, c]
            d = np.where(v > 0, dist_sums[:, c], np.inf)
            better = (v > best_votes) | ((v == best_votes) & (d < best_dist))
            best = np.where(better, c, best)
            best_votes = np.where(better, v, best_votes)
            best_dist = np.where(better, d, best_dist)
        return best

    def _predict_weighted(
        self, neighbor_labels: np.ndarray, distances: np.ndarray, n_classes: int
    ) -> np.ndarray:
        """Inverse-distance-weighted voting (ablation variant).

        *neighbor_labels* and *distances* both have shape ``(m, k)``.
        Exact matches dominate: in any row containing zero-distance
        neighbors, only those neighbors vote (each with unit weight), so
        an exact training-pool hit can never be outvoted by a cloud of
        merely-near neighbors.  Ties break exactly like the unweighted
        path: higher score, then smaller summed neighbor distance, then
        smaller class code.
        """
        m = neighbor_labels.shape[0]
        dtype = distances.dtype
        rows = np.repeat(np.arange(m), self.k)
        # Distances come out of kneighbors clipped at zero, so <= 0 is
        # the exact-match condition.
        exact = distances <= 0.0
        has_exact = exact.any(axis=1)
        safe = np.where(exact, dtype.type(1.0), distances)  # avoid 0-division; masked below
        weights = np.where(has_exact[:, None], exact.astype(dtype), dtype.type(1.0) / safe)
        scores = np.zeros((m, n_classes), dtype=dtype)
        np.add.at(scores, (rows, neighbor_labels.ravel()), weights.ravel())
        # Distance sums over *contributing* neighbors only (tie-break 1).
        dist_sums = np.zeros((m, n_classes), dtype=dtype)
        np.add.at(
            dist_sums,
            (rows, neighbor_labels.ravel()),
            np.where(weights > 0.0, distances, dtype.type(0.0)).ravel(),
        )
        best = np.full(m, -1, dtype=np.int64)
        best_score = np.full(m, -np.inf, dtype=dtype)
        best_dist = np.full(m, np.inf, dtype=dtype)
        for c in range(n_classes):
            s = scores[:, c]
            d = np.where(s > 0.0, dist_sums[:, c], np.inf)
            better = (s > best_score) | ((s == best_score) & (d < best_dist))
            best = np.where(better, c, best)
            best_score = np.where(better, s, best_score)
            best_dist = np.where(better, d, best_dist)
        return best

    def predict_one(self, point: np.ndarray) -> int:
        """Convenience: classify a single feature vector of shape ``(q,)``."""
        dtype = self._x.dtype if self._x is not None else np.dtype(np.float64)
        point = np.asarray(point, dtype=dtype)
        if point.ndim != 1:
            raise ValueError("predict_one expects a 1-D feature vector")
        return int(self.predict(point[None, :])[0])

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on labelled data.

        dtype: float64

        *x* is row-per-sample, shape ``(m, q)``; *y* the length-``m``
        ground-truth class vector.  Accuracy is a scalar diagnostic,
        always accumulated at float64 regardless of the model dtype.
        """
        y = np.asarray(y, dtype=np.int64)
        pred = self.predict(x)
        if pred.shape != y.shape:
            raise ValueError("label shape mismatch")
        return float(np.mean(pred == y))
