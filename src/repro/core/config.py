"""Classifier configuration — one frozen, hashable object for all knobs.

The classifier's tuning surface (metric subset, PCA component selection,
``k``, clock) used to travel as scattered kwargs through
``ApplicationClassifier``, ``build_trained_classifier``, and
``ResourceManager``.  :class:`ClassifierConfig` packages it:

* **frozen + hashable** — it doubles as the model-cache key in
  :mod:`repro.serve`, so two callers asking for the same configuration
  share one fitted classifier;
* **validated at construction** — the component-selection exclusivity
  and odd-``k`` rules fail fast, before any training run is spent.

The selector is stored as the plain tuple of metric *names* (a
:class:`~repro.core.preprocessing.MetricSelector` is reconstructed on
demand) because the config must stay hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..metrics.catalog import EXPERT_METRIC_NAMES, validate_metric_names
from .preprocessing import MetricSelector

#: A clock is any zero-argument callable returning seconds as a float
#: (same contract as :data:`repro.core.pipeline.Clock`).
Clock = Callable[[], float]


@dataclass(frozen=True)
class ClassifierConfig:
    """Immutable tuning configuration of the application classifier.

    Parameters
    ----------
    metric_names:
        Metric subset, in feature-column order (default: the paper's 8
        expert metrics of Table 1).
    n_components:
        PCA components ``q`` to keep (the paper extracts exactly 2).
        Mutually exclusive with *min_variance_fraction*.
    min_variance_fraction:
        Variance-based component selection, if preferred.
    k:
        Neighbors in the k-NN vote (positive and odd).
    compute_dtype:
        Dtype of the numeric pipeline, ``"float64"`` (default) or
        ``"float32"``.  Float64 is the bit-identical reference mode;
        float32 is the documented tolerance mode (fused single-GEMM
        projection, all-float32 buffers, ≥99% label agreement on the
        Table-2 corpus — see ``docs/API.md`` § Numeric modes).  Also
        the declared policy the ``repro-qa numerics`` analysis holds
        the kernels to.  Participates in equality/hashing: models
        fitted at different precisions must not share a cache slot.
    clock:
        Injected clock for §5.3 stage timings.  Excluded from
        equality/hashing: two configs that differ only in clock fit the
        same model, so they must share one cache slot.
    """

    metric_names: tuple[str, ...] = EXPERT_METRIC_NAMES
    n_components: int | None = 2
    min_variance_fraction: float | None = None
    k: int = 3
    compute_dtype: str = "float64"
    clock: Clock | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        validate_metric_names(self.metric_names)
        if not self.metric_names:
            raise ValueError("config needs at least one metric name")
        if (self.n_components is None) == (self.min_variance_fraction is None):
            raise ValueError(
                "specify exactly one of n_components / min_variance_fraction"
            )
        if self.n_components is not None and self.n_components < 1:
            raise ValueError("n_components must be >= 1")
        if self.min_variance_fraction is not None and not (
            0.0 < self.min_variance_fraction <= 1.0
        ):
            raise ValueError("min_variance_fraction must be in (0, 1]")
        if self.k < 1 or self.k % 2 == 0:
            raise ValueError("k must be a positive odd number (majority vote)")
        if self.compute_dtype not in ("float64", "float32"):
            raise ValueError(
                f"compute_dtype must be 'float64' or 'float32', got {self.compute_dtype!r}"
            )

    def selector(self) -> MetricSelector:
        """A fresh :class:`MetricSelector` over :attr:`metric_names`."""
        return MetricSelector(names=self.metric_names)

    def with_clock(self, clock: Clock | None) -> "ClassifierConfig":
        """Copy of this config with *clock* swapped in (same cache key)."""
        return replace(self, clock=clock)
