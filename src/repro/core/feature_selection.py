"""Automated relevance/redundancy feature selection.

The paper selects its 8 input metrics *manually*, "based on expert
knowledge and the principle of increasing relevance and reducing
redundancy [Yu & Liu]", and names automating this step as future work
(§7).  This module implements that future work:

* **relevance** of a metric to the class labels is measured by the
  correlation ratio η² (between-class variance over total variance —
  the natural analogue of symmetrical uncertainty for continuous
  features and categorical classes);
* **redundancy** between metrics is measured by absolute Pearson
  correlation;
* selection greedily takes metrics in decreasing relevance order,
  skipping any metric too correlated with an already-selected one —
  the fast filter structure of Yu & Liu's FCBF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .preprocessing import _check_matrix


def correlation_ratio(feature: np.ndarray, labels: np.ndarray) -> float:
    """η²: fraction of a feature's variance explained by class membership.

    *feature* and *labels* are aligned 1-D vectors of shape ``(m,)`` —
    one value per snapshot.  Returns 0 for constant features.
    """
    feature = np.asarray(feature, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if feature.ndim != 1 or feature.shape != labels.shape:
        raise ValueError("feature and labels must be 1-D and aligned")
    total_var = feature.var()
    if total_var < 1e-18:
        return 0.0
    grand_mean = feature.mean()
    between = 0.0
    for c in np.unique(labels):
        members = feature[labels == c]
        between += members.size * (members.mean() - grand_mean) ** 2
    return float(between / (feature.size * total_var))


def pearson_redundancy_matrix(x: np.ndarray) -> np.ndarray:
    """Absolute Pearson correlation between all feature pairs.

    *x* is samples×features, shape ``(m, p)``; returns the symmetric
    ``(p, p)`` correlation matrix.  Constant features get zero
    correlation with everything.
    """
    x = _check_matrix(x)
    centered = x - x.mean(axis=0)
    std = centered.std(axis=0)
    safe = std.copy()
    safe[safe < 1e-12] = 1.0
    z = centered / safe
    corr = np.abs(z.T @ z) / x.shape[0]
    corr[std < 1e-12, :] = 0.0
    corr[:, std < 1e-12] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of automated feature selection."""

    selected: tuple[str, ...]
    relevance: dict[str, float]
    rejected_redundant: tuple[str, ...]


def select_features(
    x: np.ndarray,
    labels: np.ndarray,
    names: list[str] | tuple[str, ...],
    max_features: int = 8,
    redundancy_threshold: float = 0.9,
    min_relevance: float = 0.01,
) -> SelectionResult:
    """Pick up to *max_features* relevant, non-redundant metrics.

    Parameters
    ----------
    x:
        ``(m, p)`` labelled training features (raw scale is fine — both
        measures are scale-invariant).
    labels:
        Length-m class codes.
    names:
        Metric name per column of *x*.
    max_features:
        Upper bound on the selected subset size.
    redundancy_threshold:
        A candidate more correlated than this with any already-selected
        metric is rejected as redundant.
    min_relevance:
        Candidates below this η² are ignored outright.

    Raises
    ------
    ValueError
        On shape mismatches or a degenerate configuration.
    """
    x = _check_matrix(x)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != x.shape[0]:
        raise ValueError("labels must align with samples")
    if len(names) != x.shape[1]:
        raise ValueError(f"{len(names)} names for {x.shape[1]} columns")
    if max_features < 1:
        raise ValueError("max_features must be >= 1")
    if not 0.0 < redundancy_threshold <= 1.0:
        raise ValueError("redundancy_threshold must be in (0, 1]")

    relevance = {
        name: correlation_ratio(x[:, j], labels) for j, name in enumerate(names)
    }
    corr = pearson_redundancy_matrix(x)
    index = {name: j for j, name in enumerate(names)}
    ranked = sorted(
        (n for n in names if relevance[n] >= min_relevance),
        key=lambda n: (-relevance[n], n),
    )
    selected: list[str] = []
    rejected: list[str] = []
    for name in ranked:
        if len(selected) >= max_features:
            break
        j = index[name]
        if any(corr[j, index[s]] > redundancy_threshold for s in selected):
            rejected.append(name)
            continue
        selected.append(name)
    if not selected:
        raise ValueError("no feature passed the relevance threshold")
    return SelectionResult(
        selected=tuple(selected),
        relevance=relevance,
        rejected_redundant=tuple(rejected),
    )
