"""Online (streaming) classification service.

The paper's §5.3 cost analysis concludes the classifier is cheap enough
"to consider the classifier for online training".  This module supplies
the runtime piece: an :class:`OnlineClassifier` consumes the monitoring
substrate's announcements and classifies them, maintaining per-node
rolling state — current class, class streak, and running composition —
that a scheduler can query mid-run instead of waiting for the
application to finish.

Two consumption modes share one kernel:

* **push** — attached to a raw multicast channel, every announcement is
  classified on delivery (the paper's §4 shape);
* **pull** — attached to an ingest plane (:mod:`repro.ingest`), batches
  of ring-buffered announcements are drained, classified in one
  vectorized call, and fanned back into the same per-node state
  (:meth:`OnlineClassifier.pump`).

Both modes run the batch-size-invariant
:meth:`~repro.core.pipeline.ApplicationClassifier.classify_rows`
kernel, so the drained-batch results are bit-identical (per compute
dtype) to classifying each announcement alone, and the fan-back
arithmetic reproduces the sequential :meth:`NodeClassificationState.record`
fold exactly.

The 1.2.0 unified entry points are the ``Classifier`` protocol methods
``classify`` / ``classify_batch`` / ``classify_stream`` (see
``repro.serve.protocol``); ``classify_announcement`` remains as a
one-release deprecated shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..errors import NotTrainedError
from ..metrics.catalog import metric_indices
from ..monitoring.multicast import MetricAnnouncement, MulticastChannel
from ..obs import (
    counter as obs_counter,
    enabled as obs_enabled,
    event as obs_event,
    histogram as obs_histogram,
)
from .labels import ALL_CLASSES, ClassComposition, SnapshotClass
from .pipeline import ApplicationClassifier


@dataclass
class NodeClassificationState:
    """Rolling classification state of one monitored node."""

    node: str
    class_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(len(ALL_CLASSES), dtype=np.int64)
    )
    current_class: SnapshotClass | None = None
    streak: int = 0
    snapshots_seen: int = 0
    last_timestamp: float | None = None

    def record(self, cls: SnapshotClass, timestamp: float) -> None:
        """Fold one classified snapshot into the rolling state."""
        self.class_counts[int(cls)] += 1
        self.snapshots_seen += 1
        self.last_timestamp = timestamp
        if cls is self.current_class:
            self.streak += 1
        else:
            self.current_class = cls
            self.streak = 1

    def composition(self) -> ClassComposition:
        """Running class composition over everything seen so far.

        Raises
        ------
        ValueError
            Before any snapshot arrives.
        """
        if self.snapshots_seen == 0:
            raise ValueError(f"no snapshots seen for node {self.node!r}")
        return ClassComposition(
            fractions=tuple((self.class_counts / self.snapshots_seen).tolist())
        )

    def majority_class(self) -> SnapshotClass:
        """Majority vote over everything seen so far."""
        if self.snapshots_seen == 0:
            raise ValueError(f"no snapshots seen for node {self.node!r}")
        return SnapshotClass(int(self.class_counts.argmax()))


@dataclass(frozen=True)
class DrainClassification:
    """Classified results of one drained announcement batch.

    Parallel arrays in the drain's merged chronological order:
    ``codes[i]`` is the class of the announcement at ``timestamps[i]``
    from node ``nodes[node_ids[i]]``.  Unlike a ``DrainBatch``, the
    arrays here are owned copies — safe to keep across drains.
    """

    nodes: tuple[str, ...]
    node_ids: np.ndarray
    timestamps: np.ndarray
    codes: np.ndarray
    watermark: float

    def __len__(self) -> int:
        """Number of classified announcements."""
        return int(self.codes.shape[0])

    def codes_for(self, node: str) -> np.ndarray:
        """Class codes of *node*'s announcements, in timestamp order.

        Returns a 1-D integer vector of shape ``(rows_for_node,)`` — a
        view selected from the drain-wide :attr:`codes` vector.

        Raises
        ------
        KeyError
            If *node* is not in :attr:`nodes`.
        """
        try:
            node_id = self.nodes.index(node)
        except ValueError:
            raise KeyError(f"node {node!r} not in this drain") from None
        return self.codes[self.node_ids == node_id]


class OnlineClassifier:
    """Classify monitoring announcements as they arrive.

    Parameters
    ----------
    classifier:
        A *trained* :class:`~repro.core.pipeline.ApplicationClassifier`.
    channel:
        Announcement source: either a multicast channel to subscribe to
        (push mode) or an ingest plane to :meth:`pump` drained batches
        from (pull mode).  Duck-typed — a source with ``subscribe`` is
        a channel, one with ``drain`` is a plane.
    nodes:
        Optional allow-list; announcements from other nodes are ignored
        (e.g. track only the application VM, not the server VM).

    Raises
    ------
    NotTrainedError
        If the classifier is untrained (a ``RuntimeError`` subclass).
    """

    def __init__(
        self,
        classifier: ApplicationClassifier,
        channel: MulticastChannel | object,
        nodes: list[str] | None = None,
    ) -> None:
        if not classifier.trained:
            raise NotTrainedError("online classification requires a trained classifier")
        self.classifier = classifier
        self.channel = channel
        self._allow = set(nodes) if nodes is not None else None
        self._states: dict[str, NodeClassificationState] = {}
        self._selector_names = classifier.preprocessor.selector.names
        # Bound-method access creates a fresh object each time; keep one
        # reference so unsubscribe can match it by identity.
        self._callback = self._on_announcement
        self._metric_idx: np.ndarray | None = None
        self._attached = False
        self.attach()

    @classmethod
    def from_config(
        cls,
        config,
        channel: MulticastChannel | object,
        *,
        model_source,
        seed: int = 0,
        nodes: list[str] | None = None,
    ) -> "OnlineClassifier":
        """Build an attached online classifier from a ``ClassifierConfig``.

        *model_source* is anything with ``get(config, seed=...)``
        returning a trained classifier — in practice a
        ``repro.serve.cache.ModelCache`` such as
        ``repro.manager.service.shared_model_cache()``.  It is injected
        rather than defaulted because training recipes live above core
        in the layering DAG.  *channel* may be a multicast channel or an
        ingest plane, exactly as in the constructor.
        """
        return cls(model_source.get(config, seed=seed), channel, nodes=nodes)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while bound to an announcement source."""
        return self._attached

    @property
    def pull_mode(self) -> bool:
        """True when the bound source is an ingest plane (pumped, not pushed)."""
        return hasattr(self.channel, "drain")

    def attach(self, source: MulticastChannel | object | None = None) -> None:
        """(Re)bind to an announcement source and start consuming; idempotent.

        With no argument, resumes consuming from the current source —
        the pre-1.2 signature, still idempotent.  With *source*, rebinds
        to it first (detaching from the old source if needed): a source
        with ``subscribe`` is a raw multicast channel and every
        announcement is classified on delivery; a source with ``drain``
        is an ingest plane and announcements are consumed in drained
        batches via :meth:`pump`.

        The selector's metric-index array is (re)computed here, once per
        attachment, so the per-announcement path never touches the
        catalog.  Node state accumulated before a detach is kept — a
        re-attached classifier resumes its rolling compositions.

        Raises
        ------
        TypeError
            If the source is neither a channel nor an ingest plane.
        """
        if source is not None and source is not self.channel:
            if self._attached:
                self.detach()
            self.channel = source
        if self._attached:
            return
        push_source = hasattr(self.channel, "subscribe")
        if not push_source and not hasattr(self.channel, "drain"):
            raise TypeError(
                "announcement source must be a multicast channel (subscribe) "
                "or an ingest plane (drain), got "
                f"{type(self.channel).__name__}"
            )
        self._metric_idx = np.asarray(metric_indices(self._selector_names), dtype=np.intp)
        if push_source:
            self.channel.subscribe(self._callback)
        self._attached = True
        obs_event("online.attach", nodes=str(len(self._states)))

    def detach(self) -> None:
        """Unbind from the announcement source (stop consuming).

        Idempotent: a second ``detach()`` is a no-op, and a channel that
        already dropped the subscription (torn down or replaced) is
        tolerated.  Accumulated node state stays queryable; call
        :meth:`attach` to resume consuming.
        """
        if not self._attached:
            return
        self._attached = False
        obs_event("online.detach", nodes=str(len(self._states)))
        if hasattr(self.channel, "subscribe"):
            try:
                self.channel.unsubscribe(self._callback)
            except ValueError:
                # The channel no longer knows this listener (it was torn
                # down or recreated underneath us); detaching twice through
                # different paths must not blow up the shutdown sequence.
                pass

    # ------------------------------------------------------------------
    # streaming path
    # ------------------------------------------------------------------
    def _on_announcement(self, announcement: MetricAnnouncement) -> None:
        if not self._attached:
            # Late delivery after detach (e.g. detach from inside another
            # listener during the same fan-out) — drop, never classify.
            obs_counter("online.announcements.dropped", help="Announcements ignored.").inc()
            return
        if self._allow is not None and announcement.node not in self._allow:
            obs_counter("online.announcements.dropped", help="Announcements ignored.").inc()
            return
        timed = obs_enabled()
        clock = self.classifier.clock
        t = clock() if timed else 0.0
        cls = self.classify(announcement)
        state = self._states.get(announcement.node)
        if state is None:
            state = NodeClassificationState(node=announcement.node)
            self._states[announcement.node] = state
        state.record(cls, announcement.timestamp)
        if timed:
            obs_histogram(
                "online.announcement.seconds",
                help="Per-announcement online classification latency.",
            ).observe(clock() - t)
            obs_counter("online.announcements.classified", help="Announcements classified.").inc()

    def _require_attached(self) -> None:
        """Guard for the classify paths (hoisted state is attach-scoped).

        Raises
        ------
        RuntimeError
            If called while detached (the hoisted selector index array
            is only guaranteed fresh between ``attach()`` and
            ``detach()``).
        """
        if not self._attached or self._metric_idx is None:
            raise RuntimeError(
                "OnlineClassifier is detached; call attach() before classifying announcements"
            )

    def classify(self, snapshot: MetricAnnouncement) -> SnapshotClass:
        """Classify one 33-metric announcement (protocol entry point).

        Pure — no per-node state is recorded (delivery through the
        attached source records state; see :meth:`state`).  Runs the
        batch-size-invariant ``classify_rows`` kernel on a single row,
        so the result is bit-identical to the same announcement inside
        any drained batch.  Uses the selector index array hoisted at
        :meth:`attach` time — nothing on this path recomputes catalog
        lookups.

        Raises
        ------
        RuntimeError
            If called while detached.
        """
        self._require_attached()
        raw = snapshot.values[self._metric_idx][None, :]
        code = self.classifier.classify_rows(raw)[0]
        return SnapshotClass(int(code))

    def classify_batch(self, snapshots: Iterable[MetricAnnouncement]) -> list[SnapshotClass]:
        """Classify many announcements in one vectorized call (protocol entry point).

        Pure, like :meth:`classify`, and bit-identical to it per
        announcement: the rows are stacked and run through the same
        batch-size-invariant kernel.  Returns one class per
        announcement, in input order.

        Raises
        ------
        RuntimeError
            If called while detached.
        """
        self._require_attached()
        announcements = list(snapshots)
        if not announcements:
            return []
        raw = np.stack([a.values for a in announcements])[:, self._metric_idx]
        codes = self.classifier.classify_rows(raw)
        return [SnapshotClass(int(code)) for code in codes]

    def classify_stream(self, drains: Iterable) -> Iterator[DrainClassification]:
        """Classify a stream of drained batches (protocol entry point).

        *drains* yields ``DrainBatch``-shaped windows (``nodes``,
        ``node_ids``, ``timestamps``, ``values``, ``watermark``); each
        is classified in one vectorized call and **fanned back into the
        per-node rolling state** exactly as per-announcement delivery
        would have, then yielded as a :class:`DrainClassification`.
        Lazy: state mutates as the caller iterates.

        Raises
        ------
        RuntimeError
            If a batch is consumed while detached.
        """
        for batch in drains:
            yield self._classify_drain(batch)

    def pump(self, max_rows: int | None = None, *, flush: bool = False) -> DrainClassification:
        """Drain the attached ingest plane once and classify the batch.

        The pull-mode consumption step: drain every announcement behind
        the plane's watermark (all of them with *flush*), classify the
        merged batch in one vectorized call, and fan the results back
        into per-node state.  Returns the classified batch (empty when
        nothing was drainable).

        Raises
        ------
        RuntimeError
            If detached, or if the attached source is not an ingest
            plane.
        """
        self._require_attached()
        if not self.pull_mode:
            raise RuntimeError(
                "attached source is not an ingest plane; pump() requires attach(plane)"
            )
        batch = self.channel.drain(max_rows, flush=flush)
        return self._classify_drain(batch)

    def classify_announcement(self, announcement: MetricAnnouncement) -> SnapshotClass:
        """Deprecated alias of :meth:`classify` (gone in the release after 1.2).

        Raises
        ------
        RuntimeError
            If called while detached.
        """
        warnings.warn(
            "OnlineClassifier.classify_announcement(...) is deprecated and will "
            "be removed in the next release; use the Classifier protocol method "
            "classify(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.classify(announcement)

    # ------------------------------------------------------------------
    # drained-batch fan-back
    # ------------------------------------------------------------------
    def _classify_drain(self, batch) -> DrainClassification:
        """Classify one drained batch and fold it into per-node state."""
        self._require_attached()
        node_ids = np.asarray(batch.node_ids)
        timestamps = np.asarray(batch.timestamps)
        values = batch.values
        if self._allow is not None and node_ids.shape[0]:
            allowed = np.asarray([name in self._allow for name in batch.nodes], dtype=bool)
            keep = allowed[node_ids]
            dropped = node_ids.shape[0] - int(np.count_nonzero(keep))
            if dropped:
                obs_counter("online.announcements.dropped", help="Announcements ignored.").inc(
                    float(dropped)
                )
                node_ids = node_ids[keep]
                timestamps = timestamps[keep]
                values = values[keep]
        if node_ids.shape[0] == 0:
            return DrainClassification(
                nodes=batch.nodes,
                node_ids=node_ids.copy(),
                timestamps=timestamps.copy(),
                codes=np.empty(0, dtype=np.int64),
                watermark=float(batch.watermark),
            )
        timed = obs_enabled()
        clock = self.classifier.clock
        t = clock() if timed else 0.0
        codes = self.classifier.classify_rows(values[:, self._metric_idx])
        self._record_codes(batch.nodes, node_ids, timestamps, codes)
        if timed:
            obs_histogram(
                "online.batch.seconds",
                help="Drained-batch online classification latency.",
            ).observe(clock() - t)
            obs_counter("online.announcements.classified", help="Announcements classified.").inc(
                float(codes.shape[0])
            )
        return DrainClassification(
            nodes=batch.nodes,
            node_ids=node_ids.copy(),
            timestamps=timestamps.copy(),
            codes=codes,
            watermark=float(batch.watermark),
        )

    def _record_codes(
        self,
        nodes: tuple[str, ...],
        node_ids: np.ndarray,
        timestamps: np.ndarray,
        codes: np.ndarray,
    ) -> None:
        """Fold a classified batch into per-node state, record-for-record.

        Vectorized equivalent of calling
        :meth:`NodeClassificationState.record` on each row in timeline
        order: class counts via one bincount per node, and the streak as
        the trailing constant run — extended by the previous streak when
        the whole slice is one class and it matches the node's current
        class (exactly what the sequential fold would have done).
        """
        for node_id in np.unique(node_ids):
            sel = node_ids == node_id
            node_codes = codes[sel]
            node_ts = timestamps[sel]
            node = nodes[int(node_id)]
            state = self._states.get(node)
            if state is None:
                state = NodeClassificationState(node=node)
                self._states[node] = state
            state.class_counts += np.bincount(node_codes, minlength=len(ALL_CLASSES))
            count = int(node_codes.shape[0])
            state.snapshots_seen += count
            state.last_timestamp = float(node_ts[-1])
            last = SnapshotClass(int(node_codes[-1]))
            changes = np.flatnonzero(node_codes[:-1] != node_codes[1:])
            if changes.size:
                streak = count - 1 - int(changes[-1])
            elif state.current_class is last:
                streak = state.streak + count
            else:
                streak = count
            state.current_class = last
            state.streak = streak

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """Nodes with at least one classified snapshot, sorted."""
        return sorted(self._states)

    def state(self, node: str) -> NodeClassificationState:
        """Rolling state of *node*.

        Raises
        ------
        KeyError
            If the node has produced no classified snapshots.
        """
        try:
            return self._states[node]
        except KeyError:
            raise KeyError(f"no classified snapshots from node {node!r}") from None

    def stable_class(self, node: str, min_streak: int = 3) -> SnapshotClass | None:
        """The node's current class, if it has persisted *min_streak* snapshots.

        Returns ``None`` during transients — the online analogue of the
        batch majority vote's noise suppression.
        """
        if min_streak < 1:
            raise ValueError("min_streak must be positive")
        state = self.state(node)
        if state.current_class is not None and state.streak >= min_streak:
            return state.current_class
        return None
