"""Online (streaming) classification service.

The paper's §5.3 cost analysis concludes the classifier is cheap enough
"to consider the classifier for online training".  This module supplies
the runtime piece: an :class:`OnlineClassifier` subscribes to the
monitoring substrate's multicast channel and classifies every node's
announcements *as they arrive*, maintaining per-node rolling state —
current class, class streak, and running composition — that a scheduler
can query mid-run instead of waiting for the application to finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import NotTrainedError
from ..metrics.catalog import metric_indices
from ..monitoring.multicast import MetricAnnouncement, MulticastChannel
from ..obs import (
    counter as obs_counter,
    enabled as obs_enabled,
    event as obs_event,
    histogram as obs_histogram,
)
from .labels import ALL_CLASSES, ClassComposition, SnapshotClass
from .pipeline import ApplicationClassifier


@dataclass
class NodeClassificationState:
    """Rolling classification state of one monitored node."""

    node: str
    class_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(len(ALL_CLASSES), dtype=np.int64)
    )
    current_class: SnapshotClass | None = None
    streak: int = 0
    snapshots_seen: int = 0
    last_timestamp: float | None = None

    def record(self, cls: SnapshotClass, timestamp: float) -> None:
        """Fold one classified snapshot into the rolling state."""
        self.class_counts[int(cls)] += 1
        self.snapshots_seen += 1
        self.last_timestamp = timestamp
        if cls is self.current_class:
            self.streak += 1
        else:
            self.current_class = cls
            self.streak = 1

    def composition(self) -> ClassComposition:
        """Running class composition over everything seen so far.

        Raises
        ------
        ValueError
            Before any snapshot arrives.
        """
        if self.snapshots_seen == 0:
            raise ValueError(f"no snapshots seen for node {self.node!r}")
        return ClassComposition(
            fractions=tuple((self.class_counts / self.snapshots_seen).tolist())
        )

    def majority_class(self) -> SnapshotClass:
        """Majority vote over everything seen so far."""
        if self.snapshots_seen == 0:
            raise ValueError(f"no snapshots seen for node {self.node!r}")
        return SnapshotClass(int(self.class_counts.argmax()))


class OnlineClassifier:
    """Classify monitoring announcements as they arrive.

    Parameters
    ----------
    classifier:
        A *trained* :class:`~repro.core.pipeline.ApplicationClassifier`.
    channel:
        Multicast channel to subscribe to.
    nodes:
        Optional allow-list; announcements from other nodes are ignored
        (e.g. track only the application VM, not the server VM).

    Raises
    ------
    NotTrainedError
        If the classifier is untrained (a ``RuntimeError`` subclass).
    """

    def __init__(
        self,
        classifier: ApplicationClassifier,
        channel: MulticastChannel,
        nodes: list[str] | None = None,
    ) -> None:
        if not classifier.trained:
            raise NotTrainedError("online classification requires a trained classifier")
        self.classifier = classifier
        self.channel = channel
        self._allow = set(nodes) if nodes is not None else None
        self._states: dict[str, NodeClassificationState] = {}
        self._selector_names = classifier.preprocessor.selector.names
        # Bound-method access creates a fresh object each time; keep one
        # reference so unsubscribe can match it by identity.
        self._callback = self._on_announcement
        self._metric_idx: np.ndarray | None = None
        # Hoisted compute dtype: announcements are cast once at gather
        # time (a no-copy view in float64 mode), so the per-announcement
        # path never upcasts a float32 model's buffers.
        self._dtype = np.dtype(classifier.compute_dtype)
        self._attached = False
        self.attach()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while subscribed to the channel."""
        return self._attached

    def attach(self) -> None:
        """(Re)subscribe to the channel; idempotent.

        The selector's metric-index array is (re)computed here, once per
        attachment, so the per-announcement path never touches the
        catalog.  Node state accumulated before a detach is kept — a
        re-attached classifier resumes its rolling compositions.
        """
        if self._attached:
            return
        self._metric_idx = np.asarray(metric_indices(self._selector_names), dtype=np.intp)
        self.channel.subscribe(self._callback)
        self._attached = True
        obs_event("online.attach", nodes=str(len(self._states)))

    def detach(self) -> None:
        """Unsubscribe from the channel (stop consuming announcements).

        Idempotent: a second ``detach()`` is a no-op, and a channel that
        already dropped the subscription (torn down or replaced) is
        tolerated.  Accumulated node state stays queryable; call
        :meth:`attach` to resume consuming.
        """
        if not self._attached:
            return
        self._attached = False
        obs_event("online.detach", nodes=str(len(self._states)))
        try:
            self.channel.unsubscribe(self._callback)
        except ValueError:
            # The channel no longer knows this listener (it was torn
            # down or recreated underneath us); detaching twice through
            # different paths must not blow up the shutdown sequence.
            pass

    # ------------------------------------------------------------------
    # streaming path
    # ------------------------------------------------------------------
    def _on_announcement(self, announcement: MetricAnnouncement) -> None:
        if not self._attached:
            # Late delivery after detach (e.g. detach from inside another
            # listener during the same fan-out) — drop, never classify.
            obs_counter("online.announcements.dropped", help="Announcements ignored.").inc()
            return
        if self._allow is not None and announcement.node not in self._allow:
            obs_counter("online.announcements.dropped", help="Announcements ignored.").inc()
            return
        timed = obs_enabled()
        clock = self.classifier.clock
        t = clock() if timed else 0.0
        cls = self.classify_announcement(announcement)
        state = self._states.get(announcement.node)
        if state is None:
            state = NodeClassificationState(node=announcement.node)
            self._states[announcement.node] = state
        state.record(cls, announcement.timestamp)
        if timed:
            obs_histogram(
                "online.announcement.seconds",
                help="Per-announcement online classification latency.",
            ).observe(clock() - t)
            obs_counter("online.announcements.classified", help="Announcements classified.").inc()

    def classify_announcement(self, announcement: MetricAnnouncement) -> SnapshotClass:
        """Classify a single 33-metric announcement vector.

        Uses the selector index array hoisted at :meth:`attach` time —
        nothing on this path recomputes catalog lookups.

        Raises
        ------
        RuntimeError
            If called while detached (the hoisted state is only
            guaranteed fresh between ``attach()`` and ``detach()``).
        """
        if not self._attached or self._metric_idx is None:
            raise RuntimeError(
                "OnlineClassifier is detached; call attach() before classifying announcements"
            )
        raw = announcement.values[self._metric_idx].astype(self._dtype, copy=False)[None, :]
        code = self.classifier.classify_snapshot_features(raw)[0]
        return SnapshotClass(int(code))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """Nodes with at least one classified snapshot, sorted."""
        return sorted(self._states)

    def state(self, node: str) -> NodeClassificationState:
        """Rolling state of *node*.

        Raises
        ------
        KeyError
            If the node has produced no classified snapshots.
        """
        try:
            return self._states[node]
        except KeyError:
            raise KeyError(f"no classified snapshots from node {node!r}") from None

    def stable_class(self, node: str, min_streak: int = 3) -> SnapshotClass | None:
        """The node's current class, if it has persisted *min_streak* snapshots.

        Returns ``None`` during transients — the online analogue of the
        batch majority vote's noise suppression.
        """
        if min_streak < 1:
            raise ValueError("min_streak must be positive")
        state = self.state(node)
        if state.current_class is not None and state.streak >= min_streak:
            return state.current_class
        return None
