"""Data preprocessing (paper §4.2.1 and Figure 2, step ``A(n×m) → A'(p×m)``).

Two stages, both fitted on training data and then applied unchanged to
test data:

1. **Expert metric selection** — keep the 8 metrics of Table 1 (four
   pairs, each correlated with one application class, chosen for
   increasing relevance and reducing redundancy).
2. **Normalization** — zero mean, unit variance per metric, so that
   metrics with large natural scales (bytes/s ~ 10⁷) do not dominate the
   PCA scatter or the k-NN distances.

Everything operates on the samples-as-rows layout: ``(m, p)`` matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..metrics.catalog import EXPERT_METRIC_NAMES, validate_metric_names
from ..metrics.series import SnapshotSeries


@dataclass
class MetricSelector:
    """Selects a fixed metric subset from snapshot series.

    Parameters
    ----------
    names:
        Metric names to keep, in output-column order.  Defaults to the
        paper's 8 expert metrics.
    """

    names: tuple[str, ...] = EXPERT_METRIC_NAMES

    def __post_init__(self) -> None:
        validate_metric_names(self.names)
        if not self.names:
            raise ValueError("selector needs at least one metric")

    @property
    def dimension(self) -> int:
        """Output feature dimension ``p``."""
        return len(self.names)

    def transform_series(self, series: SnapshotSeries) -> np.ndarray:
        """Return the ``(m, p)`` feature matrix of the selected metrics."""
        return series.feature_matrix(self.names)


class Normalizer:
    """Zero-mean unit-variance normalization, fit on training data.

    Constant metrics (zero variance in the training pool) are scaled by
    1 instead of 0⁻¹ so they contribute nothing to distances rather than
    producing NaNs.

    Parameters
    ----------
    dtype:
        Compute dtype of the fitted statistics and every transform
        buffer — ``float64`` (default, bit-identical reference mode) or
        ``float32`` (the tolerance mode).  Statistics are *accumulated*
        in float64 regardless (mean/std of raw metrics spanning ~10⁷
        need the headroom) and stored at the compute dtype, so both
        modes normalize against the same underlying estimates.
    """

    def __init__(self, dtype: str | np.dtype = np.float64) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float64 or float32, got {self.dtype}")
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has learned mean and scale."""
        return self.mean_ is not None

    def fit(self, x: np.ndarray) -> "Normalizer":
        """Learn per-column mean and standard deviation from ``(m, p)`` data.

        dtype: float64

        Statistics are accumulated at float64 and stored at the
        configured compute dtype (a no-op cast in float64 mode).

        Raises
        ------
        ValueError
            On empty or non-2D input.
        """
        x = _check_matrix(x)
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant-column guard: relative threshold, so a column of equal
        # large values whose mean subtraction leaves float-rounding residue
        # is treated as constant rather than normalized to ±1.
        constant = std < 1e-9 * np.maximum(1.0, np.abs(mean))
        std[constant] = 1.0
        self.mean_ = mean.astype(self.dtype, copy=False)
        self.scale_ = std.astype(self.dtype, copy=False)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the fitted normalization to ``(m, p)`` samples×features data.

        Raises
        ------
        RuntimeError
            If called before :meth:`fit`.
        ValueError
            On dimension mismatch.
        """
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Normalizer.transform called before fit")
        x = _check_matrix(x, dtype=self.dtype)
        if x.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {x.shape[1]}"
            )
        # One temporary, divided in place (same values as ``(x - μ) / σ``).
        out = x - self.mean_
        out /= self.scale_
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``(m, p)`` data *x* and return its normalized form."""
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Undo the normalization of ``(m, p)`` data (reconstruction diagnostics)."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Normalizer.inverse_transform called before fit")
        z = _check_matrix(z, dtype=self.dtype)
        # One temporary, shifted in place (same values as ``z·σ + μ``).
        out = z * self.scale_
        out += self.mean_
        return out


@dataclass
class Preprocessor:
    """Expert selection + normalization, as one fitted unit."""

    selector: MetricSelector = field(default_factory=MetricSelector)
    normalizer: Normalizer = field(default_factory=Normalizer)

    def fit(self, training_series: Sequence[SnapshotSeries]) -> "Preprocessor":
        """Fit the normalizer on the pooled training series.

        Raises
        ------
        ValueError
            If no training series are given.
        """
        if not training_series:
            raise ValueError("need at least one training series")
        pooled = np.vstack([self.selector.transform_series(s) for s in training_series])
        self.normalizer.fit(pooled)
        return self

    def transform_series(self, series: SnapshotSeries) -> np.ndarray:
        """Series → normalized ``(m, p)`` feature matrix."""
        return self.normalizer.transform(self.selector.transform_series(series))

    def transform_features(self, x: np.ndarray) -> np.ndarray:
        """Pre-selected raw ``(m, p)`` features → normalized ``(m, p)`` features."""
        return self.normalizer.transform(x)


def _check_matrix(x: np.ndarray, dtype: np.dtype | None = np.float64) -> np.ndarray:
    """Coerce *x* to a finite 2-D float matrix.

    dtype: preserve

    *dtype* selects the compute dtype; the float64 default keeps every
    pre-tolerance-mode caller bit-identical.  ``None`` preserves a
    float32/float64 input dtype (anything else is promoted to float64),
    which is how the dtype-preserving kernels (PCA, k-NN) follow the
    dtype of whatever the Normalizer handed them.
    """
    if dtype is None:
        got = np.asarray(x).dtype
        dtype = got if got in (np.dtype(np.float64), np.dtype(np.float32)) else np.float64
    x = np.asarray(x, dtype=dtype)
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D samples×features matrix, got shape {x.shape}")
    if x.shape[0] == 0:
        raise ValueError("matrix has no samples")
    if not np.all(np.isfinite(x)):
        raise ValueError("matrix contains non-finite values")
    return x
