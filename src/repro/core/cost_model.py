"""Cost-based scheduling model (paper §4.4).

Resource providers define unit costs for each resource; the unit cost of
executing an application is the class-composition-weighted average::

    UnitApplicationCost = α·cpu% + β·mem% + γ·io% + δ·net% + ε·idle%

where the percentages are the application classifier's composition
output.  Multiplying by the recorded execution time prices a whole run,
giving providers individualized pricing schemes grounded in what the
application actually consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from .labels import ClassComposition


@dataclass(frozen=True)
class UnitCostModel:
    """Per-resource unit costs (currency units per class-second).

    Parameters
    ----------
    alpha:
        CPU capacity unit cost.
    beta:
        Memory capacity unit cost.
    gamma:
        I/O capacity unit cost.
    delta:
        Network capacity unit cost.
    epsilon:
        Idle (reservation-only) unit cost.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 1.0
    delta: float = 1.0
    epsilon: float = 0.1

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "delta", "epsilon"):
            if getattr(self, name) < 0:
                raise ValueError(f"unit cost {name} must be non-negative")

    def unit_application_cost(self, composition: ClassComposition) -> float:
        """The weighted-average unit cost of one application-second."""
        return (
            self.alpha * composition.cpu
            + self.beta * composition.mem
            + self.gamma * composition.io
            + self.delta * composition.net
            + self.epsilon * composition.idle
        )

    def run_cost(self, composition: ClassComposition, execution_time_s: float) -> float:
        """Total price of a run of *execution_time_s* seconds.

        Raises
        ------
        ValueError
            For negative execution times.
        """
        if execution_time_s < 0:
            raise ValueError("execution time must be non-negative")
        return self.unit_application_cost(composition) * execution_time_s
