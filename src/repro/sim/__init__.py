"""Discrete-time execution simulator.

Tick-based engine driving workload instances over a cluster, with a
proportional-share multi-resource contention model, virtualization
interference, and high-level experiment orchestration helpers.
"""

from .contention import (
    KAPPA_HOST,
    KAPPA_VM,
    AllocationReport,
    InstanceDemand,
    allocate,
    interference_efficiency,
    max_min_factors,
)
from .engine import (
    DEFAULT_MAX_TICKS,
    DEFAULT_MIGRATION_DOWNTIME_S,
    CompletionEvent,
    DaemonNoiseModel,
    MigrationEvent,
    SimulationEngine,
)
from .execution import (
    ConcurrentResult,
    RunResult,
    ThroughputResult,
    classification_testbed,
    profiled_run,
    run_concurrent,
    run_solo,
    run_throughput_schedule,
)
from .trace import InstanceTrace, TraceRecorder

__all__ = [
    "KAPPA_HOST",
    "KAPPA_VM",
    "AllocationReport",
    "InstanceDemand",
    "allocate",
    "interference_efficiency",
    "max_min_factors",
    "DEFAULT_MAX_TICKS",
    "DEFAULT_MIGRATION_DOWNTIME_S",
    "CompletionEvent",
    "MigrationEvent",
    "DaemonNoiseModel",
    "SimulationEngine",
    "ConcurrentResult",
    "RunResult",
    "ThroughputResult",
    "classification_testbed",
    "profiled_run",
    "run_concurrent",
    "run_solo",
    "run_throughput_schedule",
    "InstanceTrace",
    "TraceRecorder",
]
