"""Per-tick execution traces for debugging and analysis.

A :class:`TraceRecorder` subscribes to an engine (as a tick listener) and
records, each tick, the progress fraction of every instance.  It is not
part of the classification data path — the classifier only sees what the
monitoring substrate publishes — but tests and ablation studies use it to
verify the contention model directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .engine import SimulationEngine


@dataclass
class InstanceTrace:
    """Progress-fraction time series of one instance."""

    instance_key: int
    workload_name: str
    vm_name: str
    times: list[float] = field(default_factory=list)
    fractions: list[float] = field(default_factory=list)

    def mean_fraction(self) -> float:
        """Average achieved speed while the instance was active."""
        if not self.fractions:
            return 0.0
        return float(np.mean(self.fractions))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, fractions) as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.fractions)


class TraceRecorder:
    """Record instance progress by polling the engine every tick.

    The recorder infers each instance's achieved fraction from the change
    in :meth:`~repro.workloads.base.WorkloadInstance.total_jobs` between
    ticks (progress is expressed in solo-seconds of work, so the fraction
    is ``Δwork / dt``).
    """

    def __init__(self, engine: SimulationEngine, keys: list[int] | None = None) -> None:
        self.engine = engine
        self._keys = keys
        self._last_work: dict[int, float] = {}
        self.traces: dict[int, InstanceTrace] = {}
        engine.add_tick_listener(self._on_tick)

    def _tracked_keys(self) -> list[int]:
        if self._keys is not None:
            return self._keys
        return list(self.engine._instances.keys())

    def _on_tick(self, now: float) -> None:
        for key in self._tracked_keys():
            inst = self.engine.instance(key)
            total_work = inst.total_jobs() * inst.workload.solo_duration \
                + inst.completions * 0.0  # completions already folded into total_jobs
            last = self._last_work.get(key)
            self._last_work[key] = total_work
            if last is None:
                continue
            trace = self.traces.get(key)
            if trace is None:
                trace = InstanceTrace(
                    instance_key=key,
                    workload_name=inst.workload.name,
                    vm_name=inst.vm_name,
                )
                self.traces[key] = trace
            if inst.has_started(now - self.engine.dt) or total_work > last:
                trace.times.append(now)
                trace.fractions.append(max(total_work - last, 0.0) / self.engine.dt)

    def trace(self, key: int) -> InstanceTrace:
        """Return the trace of instance *key*.

        Raises
        ------
        KeyError
            If the instance produced no trace yet.
        """
        return self.traces[key]
