"""High-level experiment orchestration.

Wraps cluster construction, engine setup, monitoring wiring, and
profiling into the runs the paper's evaluation needs:

* :func:`profiled_run` — one application in a dedicated VM, profiled from
  t0 to t1 (the Table 3 / Figure 3 experiments);
* :func:`run_solo` / :func:`run_concurrent` — elapsed-time comparisons
  (the Table 4 experiment);
* :func:`run_throughput_schedule` — looping jobs on multiple VMs for a
  fixed horizon, yielding jobs/day (the Figure 4 / Figure 5 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.series import SnapshotSeries
from ..monitoring.stack import MonitoringStack
from ..vm.cluster import Cluster
from ..vm.resources import ResourceCapacity
from ..workloads.base import Workload, WorkloadInstance
from ..workloads.network import DEFAULT_SERVER_VM
from .engine import SimulationEngine


def classification_testbed(vm_mem_mb: float = 256.0, target_vm: str = "VM1") -> Cluster:
    """The paper's §5.1 profiling setup.

    The target application runs in a dedicated VM on one host; a second,
    identically configured VM on another host runs the server side of the
    network benchmarks.
    """
    cluster = Cluster(name="classification-testbed")
    cluster.add_host("host1", ResourceCapacity(cpu_cores=2.0, cpu_mhz=1800.0, mem_mb=1024.0))
    cluster.add_host("host2", ResourceCapacity(cpu_cores=2.0, cpu_mhz=1800.0, mem_mb=1024.0))
    cluster.create_vm("host1", target_vm, mem_mb=vm_mem_mb)
    cluster.create_vm("host2", DEFAULT_SERVER_VM, mem_mb=256.0)
    return cluster


@dataclass
class RunResult:
    """Outcome of one profiled application run."""

    workload_name: str
    node: str
    t0: float
    t1: float
    series: SnapshotSeries
    sample_interval: float

    @property
    def duration(self) -> float:
        """Wall-clock execution time ``t1 − t0``."""
        return self.t1 - self.t0

    @property
    def num_samples(self) -> int:
        """Number of snapshots ``m`` collected."""
        return len(self.series)


def profiled_run(
    workload: Workload,
    vm_mem_mb: float = 256.0,
    seed: int = 0,
    heartbeat: float = 5.0,
    target_vm: str = "VM1",
) -> RunResult:
    """Execute *workload* solo in a dedicated VM and profile it.

    Builds the classification testbed, starts a profiling session at t0=0,
    runs the application to completion, stops profiling at t1, and filters
    the multicast data pool down to the target node's series.
    """
    cluster = classification_testbed(vm_mem_mb=vm_mem_mb, target_vm=target_vm)
    engine = SimulationEngine(cluster, seed=seed)
    stack = MonitoringStack(engine, seed=seed + 1, heartbeat=heartbeat)
    instance = WorkloadInstance(workload, vm_name=target_vm)
    engine.add_instance(instance)
    stack.profiler.start(target_node=target_vm, now=0.0)
    engine.run()
    session = stack.profiler.stop(now=engine.now)
    series = stack.filter.extract(stack.profiler.data_pool(), session.target_node)
    return RunResult(
        workload_name=workload.name,
        node=target_vm,
        t0=session.t0,
        t1=engine.now,
        series=series,
        sample_interval=heartbeat,
    )


def run_solo(workload: Workload, vm_mem_mb: float = 256.0, seed: int = 0) -> float:
    """Elapsed wall-clock seconds of a solo run (no profiling overhead)."""
    cluster = classification_testbed(vm_mem_mb=vm_mem_mb)
    engine = SimulationEngine(cluster, seed=seed)
    engine.add_instance(WorkloadInstance(workload, vm_name="VM1"))
    engine.run()
    assert engine.completions, "solo run finished without a completion event"
    return engine.completions[0].elapsed


@dataclass
class ConcurrentResult:
    """Outcome of running several workloads concurrently on one VM."""

    elapsed: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Time until the last job finishes."""
        return max(self.elapsed.values())


def run_concurrent(workloads: list[Workload], vm_mem_mb: float = 256.0, seed: int = 0) -> ConcurrentResult:
    """Run *workloads* concurrently on a single VM; return per-job elapsed.

    This is the paper's Table 4 setup (CH3D + PostMark sharing one
    machine).
    """
    if not workloads:
        raise ValueError("need at least one workload")
    cluster = classification_testbed(vm_mem_mb=vm_mem_mb)
    engine = SimulationEngine(cluster, seed=seed)
    keys = {engine.add_instance(WorkloadInstance(w, vm_name="VM1")): w for w in workloads}
    engine.run()
    result = ConcurrentResult()
    for event in engine.completions:
        w = keys[event.instance_key]
        result.elapsed[w.name] = event.elapsed
    missing = {w.name for w in workloads} - set(result.elapsed)
    if missing:
        raise RuntimeError(f"concurrent run ended without completing {sorted(missing)}")
    return result


@dataclass
class ThroughputResult:
    """Outcome of a fixed-horizon looping-jobs run."""

    horizon: float
    jobs_by_instance: dict[int, float] = field(default_factory=dict)
    workload_by_instance: dict[int, str] = field(default_factory=dict)
    vm_by_instance: dict[int, str] = field(default_factory=dict)

    def jobs_per_day(self, instance_key: int) -> float:
        """Steady-state throughput of one job slot."""
        return self.jobs_by_instance[instance_key] / self.horizon * 86_400.0

    def total_jobs_per_day(self) -> float:
        """System throughput: sum over all job slots."""
        return sum(self.jobs_per_day(k) for k in self.jobs_by_instance)

    def jobs_per_day_by_workload(self) -> dict[str, float]:
        """Per-application throughput, summed over that application's slots."""
        out: dict[str, float] = {}
        for key in self.jobs_by_instance:
            name = self.workload_by_instance[key]
            out[name] = out.get(name, 0.0) + self.jobs_per_day(key)
        return out


def run_throughput_schedule(
    cluster: Cluster,
    assignment: dict[str, list[Workload]],
    horizon: float = 3600.0,
    seed: int = 0,
) -> ThroughputResult:
    """Run looping job slots per the VM→workloads *assignment* for *horizon* seconds.

    Each workload in a VM's list occupies one continuously re-running job
    slot on that VM.  Throughput counts completed passes plus the
    fractional progress of the pass in flight (reduces horizon
    quantization noise).

    Raises
    ------
    KeyError
        If an assignment names a VM not in the cluster.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    engine = SimulationEngine(cluster, seed=seed)
    result = ThroughputResult(horizon=horizon)
    for vm_name, workloads in assignment.items():
        cluster.vm(vm_name)  # KeyError if unknown
        for w in workloads:
            key = engine.add_instance(WorkloadInstance(w, vm_name=vm_name, loop=True))
            result.workload_by_instance[key] = w.name
            result.vm_by_instance[key] = vm_name
    engine.run(until=horizon)
    for key in result.workload_by_instance:
        result.jobs_by_instance[key] = engine.instance(key).total_jobs()
    return result
