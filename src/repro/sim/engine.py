"""Discrete-time execution engine.

Advances a :class:`~repro.vm.cluster.Cluster` in 1-second ticks.  Each
tick it:

1. collects the full-speed demands of all active workload instances,
   passes them through their VM's memory model (paging injection), and
   resolves contention via :mod:`repro.sim.contention`;
2. advances each instance's progress by its granted fraction (times the
   memory-pressure efficiency);
3. updates every VM's kernel-style counters from granted consumption,
   plus background daemon noise (so idle machines look like real idle
   machines);
4. fires tick listeners — the monitoring substrate hooks in here to take
   its 5-second Ganglia heartbeats.

The engine is fully deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import counter as obs_counter, gauge as obs_gauge
from ..vm.cluster import Cluster
from ..vm.machine import VirtualMachine
from ..vm.resources import BLOCKS_PER_SWAP_KB, ResourceGrant
from ..workloads.base import WorkloadInstance
from .contention import InstanceDemand, allocate

#: Hard cap on simulation length, to catch runaway loops in tests.
DEFAULT_MAX_TICKS: int = 500_000

#: System-time cost charged to a VM running the server side of one
#: network stream, per unit of client progress fraction (cores).
SERVER_CPU_SYSTEM_PER_STREAM: float = 0.08


@dataclass
class DaemonNoiseModel:
    """Background daemon activity injected into every VM each tick.

    Idle machines are not silent: cron, syslog, gmond itself, and kernel
    threads produce small CPU blips, occasional disk flushes, and a
    trickle of network chatter.  The IDLE training class is learned from
    exactly this residual activity.
    """

    cpu_user_range: tuple[float, float] = (0.001, 0.015)
    cpu_system_range: tuple[float, float] = (0.001, 0.010)
    io_burst_probability: float = 1.0 / 30.0
    io_burst_blocks: tuple[float, float] = (8.0, 50.0)
    net_bytes_range: tuple[float, float] = (200.0, 2500.0)

    def sample(self, rng: np.random.Generator) -> tuple[float, float, float, float]:
        """Return (cpu_user, cpu_system, io_blocks, net_bytes) for one tick."""
        cpu_u = rng.uniform(*self.cpu_user_range)
        cpu_s = rng.uniform(*self.cpu_system_range)
        io = rng.uniform(*self.io_burst_blocks) if rng.random() < self.io_burst_probability else 0.0
        net = rng.uniform(*self.net_bytes_range)
        return cpu_u, cpu_s, io, net


@dataclass
class CompletionEvent:
    """Records one finished workload pass."""

    time: float
    instance_key: int
    workload_name: str
    vm_name: str
    elapsed: float


@dataclass
class MigrationEvent:
    """Records one live migration of an instance between VMs."""

    time: float
    instance_key: int
    workload_name: str
    from_vm: str
    to_vm: str
    downtime_s: float


#: Default checkpoint/restart downtime for a migration (seconds).  Condor
#: -style checkpointing transfers the process image over the network; a
#: few seconds models a modest image on Gigabit Ethernet.
DEFAULT_MIGRATION_DOWNTIME_S: float = 5.0


TickListener = Callable[[float], None]


class SimulationEngine:
    """Drives workload instances over a cluster.

    Parameters
    ----------
    cluster:
        Topology to simulate.
    seed:
        Seed for the daemon-noise RNG (per-VM streams derived from it).
    dt:
        Tick length in seconds (1.0 reproduces the paper's setup; the
        monitoring interval of 5 s must be a multiple).
    """

    def __init__(self, cluster: Cluster, seed: int = 0, dt: float = 1.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.cluster = cluster
        self.dt = float(dt)
        self.now = 0.0
        self.tick_index = 0
        self.noise = DaemonNoiseModel()
        self._instances: dict[int, WorkloadInstance] = {}
        self._next_key = 0
        self._listeners: list[TickListener] = []
        self.completions: list[CompletionEvent] = []
        self.migrations: list[MigrationEvent] = []
        self._completed_keys: set[int] = set()
        self._killed_keys: set[int] = set()
        root = np.random.default_rng(seed)
        self._vm_rngs: dict[str, np.random.Generator] = {
            vm.name: np.random.default_rng(root.integers(0, 2**63 - 1))
            for vm in cluster.iter_vms()
        }

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def add_instance(self, instance: WorkloadInstance) -> int:
        """Register a workload instance; returns its engine key.

        Raises
        ------
        KeyError
            If the instance's VM is not in the cluster.
        """
        self.cluster.vm(instance.vm_name)  # raises KeyError if missing
        key = self._next_key
        self._next_key += 1
        self._instances[key] = instance
        return key

    def add_tick_listener(self, listener: TickListener) -> None:
        """Register a callable invoked with the new time after every tick."""
        self._listeners.append(listener)

    def instance(self, key: int) -> WorkloadInstance:
        """Return the instance registered under *key*."""
        return self._instances[key]

    def migrate(
        self,
        key: int,
        target_vm: str,
        downtime_s: float = DEFAULT_MIGRATION_DOWNTIME_S,
    ) -> MigrationEvent:
        """Live-migrate an instance to another VM (paper §1's motivation).

        The instance checkpoints, pauses for *downtime_s* (image transfer
        and restart), and resumes on the target VM from exactly where it
        left off — progress is preserved, as with Condor-style process
        checkpointing.

        Raises
        ------
        KeyError
            If the instance or the target VM is unknown.
        RuntimeError
            If the instance already completed.
        ValueError
            For a negative downtime or a self-migration.
        """
        inst = self._instances[key]
        if inst.done:
            raise RuntimeError("cannot migrate a completed instance")
        if downtime_s < 0:
            raise ValueError("downtime must be non-negative")
        self.cluster.vm(target_vm)  # KeyError if missing
        if target_vm == inst.vm_name:
            raise ValueError(f"instance already runs on {target_vm!r}")
        event = MigrationEvent(
            time=self.now,
            instance_key=key,
            workload_name=inst.workload.name,
            from_vm=inst.vm_name,
            to_vm=target_vm,
            downtime_s=downtime_s,
        )
        inst.vm_name = target_vm
        inst.paused_until = self.now + downtime_s
        self.migrations.append(event)
        obs_counter("sim.migrations", help="Live migrations performed.").inc()
        return event

    def kill_instance(self, key: int) -> None:
        """Fault injection: terminate an instance immediately.

        The instance is removed from the run — no completion event is
        ever emitted for it, and its VM's counters simply stop advancing
        from its work (daemon noise continues).

        Raises
        ------
        KeyError
            If the instance is unknown.
        RuntimeError
            If it already completed (nothing left to kill).
        """
        inst = self._instances[key]
        if inst.done:
            raise RuntimeError("instance already completed")
        del self._instances[key]
        self._killed_keys.add(key)

    def was_killed(self, key: int) -> bool:
        """True if *key* was removed by :meth:`kill_instance`."""
        return key in self._killed_keys

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def all_done(self) -> bool:
        """True when every non-looping instance has finished."""
        return all(inst.done or inst.loop for inst in self._instances.values())

    def run(self, until: float | None = None, max_ticks: int = DEFAULT_MAX_TICKS) -> None:
        """Advance the simulation.

        With *until* given, runs to that time; otherwise runs until every
        non-looping instance completes.

        Raises
        ------
        RuntimeError
            If *max_ticks* elapse first (runaway guard), or if no end
            condition exists (all instances loop and no *until*).
        """
        if until is None and all(inst.loop for inst in self._instances.values()) and self._instances:
            raise RuntimeError("all instances loop forever; pass an explicit 'until' time")
        ticks = 0
        while True:
            if until is not None and self.now >= until - 1e-9:
                return
            if until is None and self.all_done():
                return
            self.step()
            ticks += 1
            if ticks > max_ticks:
                raise RuntimeError(f"simulation exceeded {max_ticks} ticks")

    def step(self) -> None:
        """Advance the simulation by one tick."""
        t = self.now
        dt = self.dt
        active: list[tuple[int, WorkloadInstance]] = [
            (key, inst) for key, inst in self._instances.items() if inst.has_started(t)
        ]

        # -- 1. demands through the VM memory model ---------------------
        # Co-located instances share their VM's RAM: memory pressure is
        # evaluated on the *sum* of working sets in each VM.
        working_sets: dict[str, float] = {vm.name: 0.0 for vm in self.cluster.iter_vms()}
        for _key, inst in active:
            working_sets[inst.vm_name] += inst.current_phase().demand.mem_mb

        demands: list[InstanceDemand] = []
        efficiencies: dict[int, float] = {}
        remote_streams: dict[str, list[tuple[int, float, float]]] = {}
        for key, inst in active:
            vm = self.cluster.vm(inst.vm_name)
            phase = inst.current_phase()
            nominal = phase.demand
            vm_ws = working_sets[vm.name]
            effective = vm.effective_demand(
                nominal, tick=self.tick_index, vm_working_set_mb=vm_ws
            )
            pressure = vm.memory_pressure(vm_ws)
            efficiencies[key] = pressure.efficiency
            remote_host = None
            if phase.remote_vm is not None:
                remote_vm = self.cluster.vm(phase.remote_vm)
                if remote_vm.host is None:
                    raise ValueError(f"server VM {phase.remote_vm!r} has no host")
                remote_host = remote_vm.host
                remote_streams.setdefault(phase.remote_vm, []).append(
                    (key, effective.net_out, effective.net_in)
                )
            demands.append(InstanceDemand(key=key, vm=vm, demand=effective, remote_host=remote_host))

        # -- 2. contention resolution -----------------------------------
        report = allocate(demands)

        # -- 3. progress -------------------------------------------------
        for key, inst in active:
            fraction = report.fractions[key] * efficiencies[key]
            inst.advance(granted_fraction=min(fraction, 1.0), dt=dt, now=t)

        # -- 4. counters --------------------------------------------------
        per_vm_grants: dict[str, list[ResourceGrant]] = {}
        for key, inst in active:
            per_vm_grants.setdefault(inst.vm_name, []).append(report.grants[key])
        for vm in self.cluster.iter_vms():
            self._update_vm_counters(
                vm,
                grants=per_vm_grants.get(vm.name, []),
                working_set_mb=working_sets.get(vm.name, 0.0),
                server_streams=[
                    (report.fractions[k], out_rate, in_rate)
                    for (k, out_rate, in_rate) in remote_streams.get(vm.name, [])
                ],
            )

        # -- 5. completions & time ----------------------------------------
        self.now = t + dt
        self.tick_index += 1
        for key, inst in active:
            if inst.done and key not in self._completed_keys:
                self._completed_keys.add(key)
                elapsed = inst.elapsed()
                assert elapsed is not None
                self.completions.append(
                    CompletionEvent(
                        time=self.now,
                        instance_key=key,
                        workload_name=inst.workload.name,
                        vm_name=inst.vm_name,
                        elapsed=elapsed,
                    )
                )
                obs_counter("sim.completions", help="Workload passes completed.").inc()
        for listener in self._listeners:
            listener(self.now)
        obs_counter("sim.ticks", help="Simulation ticks advanced.").inc()
        obs_gauge("sim.active_instances", help="Instances active in the last tick.").set(
            float(len(active))
        )

    # ------------------------------------------------------------------
    # counter plumbing
    # ------------------------------------------------------------------
    def _update_vm_counters(
        self,
        vm: VirtualMachine,
        grants: list[ResourceGrant],
        working_set_mb: float,
        server_streams: list[tuple[float, float, float]],
    ) -> None:
        dt = self.dt
        rng = self._vm_rngs[vm.name]
        noise_cpu_u, noise_cpu_s, noise_io, noise_net = self.noise.sample(rng)

        user = noise_cpu_u * dt
        system = noise_cpu_s * dt
        io_in = 0.0
        io_out = noise_io * dt
        swap_i = 0.0
        swap_o = 0.0
        net_i = noise_net * dt
        net_o = noise_net * 0.6 * dt
        runnable = 0.0
        for g in grants:
            user += g.cpu_user * dt
            system += g.cpu_system * dt
            io_in += (g.io_bi + g.swap_in * BLOCKS_PER_SWAP_KB) * dt
            io_out += (g.io_bo + g.swap_out * BLOCKS_PER_SWAP_KB) * dt
            swap_i += g.swap_in * dt
            swap_o += g.swap_out * dt
            net_i += g.net_in * dt
            net_o += g.net_out * dt
            runnable += min(1.0, g.cpu_user + g.cpu_system + (1.0 if g.io_bi + g.io_bo > 0 else 0.0) * 0.2)

        # Server side of network streams terminating at this VM.
        for fraction, client_out, client_in in server_streams:
            net_i += client_out * fraction * dt
            net_o += client_in * fraction * dt
            system += SERVER_CPU_SYSTEM_PER_STREAM * fraction * dt
            runnable += 0.3 * fraction

        capacity_s = vm.vcpus * dt
        busy = user + system
        if busy > capacity_s:
            scale = capacity_s / busy
            user *= scale
            system *= scale
            busy = capacity_s
        # I/O-wait grows with this VM's share of host disk bandwidth.
        host = vm.host
        wio = 0.0
        if host is not None and (io_in + io_out) > 0:
            disk_frac = min((io_in + io_out) / dt / host.capacity.disk_blocks_per_s, 1.0)
            wio = min(capacity_s - busy, 0.5 * disk_frac * dt)
        idle = max(capacity_s - busy - wio, 0.0)

        c = vm.counters
        c.account_cpu(user_s=user, system_s=system, wio_s=wio, nice_s=0.0, idle_s=idle)
        c.account_io(blocks_in=io_in, blocks_out=io_out)
        c.account_swap(kb_in=swap_i, kb_out=swap_o)
        c.account_net(bytes_in=net_i, bytes_out=net_o)
        c.proc_run = int(round(runnable)) + (1 if rng.random() < 0.1 else 0)
        c.proc_total = 60 + 3 * len(grants)
        c.advance_time(dt, runnable + 0.05)
        vm.update_memory_gauges(working_set_mb)
