"""Multi-resource max-min fair contention model.

Each simulation tick, every running instance demands resources at its
phase's full-speed rates.  The allocator resolves those demands against
hardware capacities and returns, per instance, the *fraction* of full
speed it achieves this tick:

* Every rate resource is allocated **max-min fairly** (water-filling):
  instances demanding less than the fair share are fully satisfied, and
  the leftover capacity is split among the heavy demanders.  A CPU job
  writing 25 blocks/s is not punished for sharing a disk with PostMark.
* **CPU** is allocated hierarchically — max-min among instances within a
  VM's vCPUs, then max-min among VM aggregates within the host's cores.
* **Disk** bandwidth is a host-level resource (paging traffic included).
* **Network** bandwidth is constrained per host NIC *and direction*; a
  network phase with a remote endpoint is additionally constrained by the
  mirrored traffic on the remote host's NIC (the slower end governs, as
  TCP flow control would).
* **Virtualization interference**: co-runners impose an efficiency
  penalty even without saturating any resource (context switches, cache
  pollution, hypervisor overhead).  Calibrated against paper Table 4
  (CH3D stretched 488 s → 613 s next to PostMark).

The instance's progress fraction is the product of its *bottleneck*
resource share and the interference efficiency.  Granted consumption
scales every demanded rate by that fraction — a job running at 40% speed
performs 40% of its I/O, CPU, and network per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vm.machine import PhysicalHost, VirtualMachine
from ..vm.resources import ResourceDemand, ResourceGrant

#: Interference coefficient per active co-runner in the *same VM*.
KAPPA_VM: float = 0.22

#: Interference coefficient per active co-runner in other VMs on the host.
KAPPA_HOST: float = 0.06


@dataclass
class InstanceDemand:
    """One instance's effective demand, tagged with its placement."""

    key: int
    vm: VirtualMachine
    demand: ResourceDemand
    remote_host: PhysicalHost | None = None


@dataclass
class AllocationReport:
    """Diagnostic output of one allocation round (consumed by traces/tests)."""

    fractions: dict[int, float] = field(default_factory=dict)
    grants: dict[int, ResourceGrant] = field(default_factory=dict)
    cpu_factor: dict[int, float] = field(default_factory=dict)
    disk_factor: dict[int, float] = field(default_factory=dict)
    net_factor: dict[int, float] = field(default_factory=dict)


def max_min_factors(demands: list[float], capacity: float) -> list[float]:
    """Max-min fair allocation factors for scalar *demands* under *capacity*.

    Returns, per demand, the fraction of it that is granted.  Demands of
    zero get factor 1 (they are unconstrained).  Water-filling: demands
    below the fair share are fully satisfied; the rest split the
    remainder equally (capped at their own demand).

    Raises
    ------
    ValueError
        For negative demands or non-positive capacity.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    n = len(demands)
    factors = [1.0] * n
    active = [i for i, d in enumerate(demands) if d > 0]
    for i, d in enumerate(demands):
        if d < 0:
            raise ValueError(f"demand {i} is negative: {d}")
    total = sum(demands[i] for i in active)
    if total <= capacity:
        return factors
    remaining = capacity
    unsatisfied = sorted(active, key=lambda i: demands[i])
    while unsatisfied:
        share = remaining / len(unsatisfied)
        fully = [i for i in unsatisfied if demands[i] <= share + 1e-12]
        if not fully:
            for i in unsatisfied:
                factors[i] = share / demands[i]
            break
        for i in fully:
            remaining -= demands[i]
        unsatisfied = [i for i in unsatisfied if i not in set(fully)]
    return factors


def interference_efficiency(active_in_vm: int, active_on_host: int) -> float:
    """Efficiency factor for an instance given co-runner counts.

    Parameters
    ----------
    active_in_vm:
        Number of active (non-idle) instances in the instance's own VM,
        including itself.
    active_on_host:
        Number of active instances on the whole host, including itself.

    Returns
    -------
    float
        ``1 / (1 + κ_vm·(n_vm−1) + κ_host·(n_host−n_vm))``.
    """
    if active_in_vm < 1 or active_on_host < active_in_vm:
        raise ValueError("co-runner counts are inconsistent")
    same_vm = active_in_vm - 1
    other_vms = active_on_host - active_in_vm
    return 1.0 / (1.0 + KAPPA_VM * same_vm + KAPPA_HOST * other_vms)


def _cpu_factors(active: list[InstanceDemand]) -> dict[int, float]:
    """Hierarchical max-min CPU shares: instances→vCPUs, then VMs→cores."""
    by_vm: dict[str, list[InstanceDemand]] = {}
    for d in active:
        by_vm.setdefault(d.vm.name, []).append(d)

    # Level 1: within each VM against its vCPUs.
    vm_level: dict[str, list[float]] = {}
    vm_capped_total: dict[str, float] = {}
    for vm_name, members in by_vm.items():
        vm = members[0].vm
        factors = max_min_factors([m.demand.cpu for m in members], float(vm.vcpus))
        vm_level[vm_name] = factors
        vm_capped_total[vm_name] = sum(
            m.demand.cpu * f for m, f in zip(members, factors)
        )

    # Level 2: VM aggregates against host cores.
    by_host: dict[str, list[str]] = {}
    host_obj: dict[str, PhysicalHost] = {}
    for vm_name, members in by_vm.items():
        host = _require_host(members[0].vm)
        by_host.setdefault(host.name, []).append(vm_name)
        host_obj[host.name] = host
    vm_host_factor: dict[str, float] = {}
    for host_name, vm_names in by_host.items():
        cores = host_obj[host_name].capacity.reference_cores
        factors = max_min_factors([vm_capped_total[v] for v in vm_names], cores)
        for v, f in zip(vm_names, factors):
            vm_host_factor[v] = f

    out: dict[int, float] = {}
    for vm_name, members in by_vm.items():
        for m, f in zip(members, vm_level[vm_name]):
            out[m.key] = f * vm_host_factor[vm_name]
    return out


def _disk_factors(active: list[InstanceDemand]) -> dict[int, float]:
    """Host-level max-min disk-bandwidth shares."""
    by_host: dict[str, list[InstanceDemand]] = {}
    host_obj: dict[str, PhysicalHost] = {}
    for d in active:
        host = _require_host(d.vm)
        by_host.setdefault(host.name, []).append(d)
        host_obj[host.name] = host
    out: dict[int, float] = {}
    for host_name, members in by_host.items():
        cap = host_obj[host_name].capacity.disk_blocks_per_s
        factors = max_min_factors([m.demand.disk for m in members], cap)
        for m, f in zip(members, factors):
            out[m.key] = f
    return out


def _net_factors(active: list[InstanceDemand]) -> dict[int, float]:
    """Per-NIC per-direction max-min shares, mirrored for remote endpoints.

    Each instance contributes up to four flows: local-in, local-out, and
    (for cross-host phases) remote-in (= local-out mirrored) and
    remote-out.  The instance's network factor is the minimum over its
    flows' factors — the slower end governs.
    """
    flows: dict[tuple[str, str], list[tuple[int, float]]] = {}
    host_obj: dict[str, PhysicalHost] = {}

    def add_flow(host: PhysicalHost, direction: str, key: int, rate: float) -> None:
        if rate <= 0:
            return
        host_obj[host.name] = host
        flows.setdefault((host.name, direction), []).append((key, rate))

    for d in active:
        host = _require_host(d.vm)
        add_flow(host, "in", d.key, d.demand.net_in)
        add_flow(host, "out", d.key, d.demand.net_out)
        if d.remote_host is not None and d.remote_host.name != host.name:
            add_flow(d.remote_host, "in", d.key, d.demand.net_out)
            add_flow(d.remote_host, "out", d.key, d.demand.net_in)

    out: dict[int, float] = {}
    for (host_name, _direction), members in flows.items():
        cap = host_obj[host_name].capacity.net_bytes_per_s
        factors = max_min_factors([rate for _, rate in members], cap)
        for (key, _rate), f in zip(members, factors):
            out[key] = min(out.get(key, 1.0), f)
    return out


def allocate(demands: list[InstanceDemand]) -> AllocationReport:
    """Resolve one tick's demands into per-instance grants.

    Instances demanding nothing (idle/think phases) receive the idle grant
    with fraction 1 and do not count as co-runners for interference.
    """
    report = AllocationReport()
    if not demands:
        return report

    active = [d for d in demands if not d.demand.is_idle()]
    cpu_f = _cpu_factors(active)
    disk_f = _disk_factors(active)
    net_f = _net_factors(active)

    active_in_vm: dict[str, int] = {}
    active_on_host: dict[str, int] = {}
    for d in active:
        active_in_vm[d.vm.name] = active_in_vm.get(d.vm.name, 0) + 1
        hname = _require_host(d.vm).name
        active_on_host[hname] = active_on_host.get(hname, 0) + 1

    for d in demands:
        if d.demand.is_idle():
            report.fractions[d.key] = 1.0
            report.grants[d.key] = ResourceGrant.idle()
            continue
        host = _require_host(d.vm)
        factors = [1.0]
        if d.demand.cpu > 0:
            factors.append(cpu_f[d.key])
            report.cpu_factor[d.key] = cpu_f[d.key]
        if d.demand.disk > 0:
            factors.append(disk_f[d.key])
            report.disk_factor[d.key] = disk_f[d.key]
        if d.demand.net_in > 0 or d.demand.net_out > 0:
            factors.append(net_f.get(d.key, 1.0))
            report.net_factor[d.key] = net_f.get(d.key, 1.0)
        bottleneck = min(factors)
        eff = interference_efficiency(active_in_vm[d.vm.name], active_on_host[host.name])
        fraction = bottleneck * eff
        report.fractions[d.key] = fraction
        report.grants[d.key] = ResourceGrant.from_demand(d.demand, fraction)
    return report


def _require_host(vm: VirtualMachine) -> PhysicalHost:
    if vm.host is None:
        raise ValueError(f"VM {vm.name!r} is not attached to a host")
    return vm.host
