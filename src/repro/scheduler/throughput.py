"""Schedule throughput evaluation (paper §5.2, Figures 4 and 5).

Runs each schedule on the paper's two-host testbed with every job slot
continuously re-running its application, and measures system throughput
(jobs/day summed over the nine slots) and per-application throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..sim.execution import ThroughputResult, run_throughput_schedule
from ..vm.cluster import paper_testbed
from ..workloads.base import Workload
from ..workloads.cpu import specseis96
from ..workloads.io import postmark
from ..workloads.network import netpipe
from .schedules import JOB_CODES, Schedule, enumerate_schedules

#: VMs hosting the nine job slots (VM4 runs the NetPIPE server side).
SCHEDULE_VMS: tuple[str, str, str] = ("VM1", "VM2", "VM3")

WorkloadFactory = Callable[[], Workload]


def default_job_factories() -> dict[str, WorkloadFactory]:
    """The paper's three applications: S, P, and N."""
    return {
        "S": lambda: specseis96("small"),
        "P": postmark,
        "N": netpipe,
    }


@dataclass
class ScheduleThroughput:
    """Measured throughput of one schedule."""

    schedule: Schedule
    system_jobs_per_day: float
    per_app_jobs_per_day: dict[str, float] = field(default_factory=dict)
    raw: ThroughputResult | None = None

    def app_throughput(self, code: str) -> float:
        """Jobs/day of application *code* summed over its three slots."""
        return self.per_app_jobs_per_day[code]


def evaluate_schedule(
    schedule: Schedule,
    factories: dict[str, WorkloadFactory] | None = None,
    horizon: float = 2400.0,
    seed: int = 0,
) -> ScheduleThroughput:
    """Run one schedule for *horizon* seconds and measure throughput."""
    factories = factories or default_job_factories()
    missing = set(JOB_CODES) - set(factories)
    if missing:
        raise ValueError(f"factories missing job codes {sorted(missing)}")
    cluster = paper_testbed()
    assignment = {
        vm: [factories[code]() for code in group]
        for vm, group in zip(SCHEDULE_VMS, schedule.groups)
    }
    result = run_throughput_schedule(cluster, assignment, horizon=horizon, seed=seed)
    per_app: dict[str, float] = {code: 0.0 for code in JOB_CODES}
    name_to_code = {factories[code]().name: code for code in JOB_CODES}
    for key, name in result.workload_by_instance.items():
        per_app[name_to_code[name]] += result.jobs_per_day(key)
    return ScheduleThroughput(
        schedule=schedule,
        system_jobs_per_day=result.total_jobs_per_day(),
        per_app_jobs_per_day=per_app,
        raw=result,
    )


def evaluate_all_schedules(
    factories: dict[str, WorkloadFactory] | None = None,
    horizon: float = 2400.0,
    seed: int = 0,
) -> list[ScheduleThroughput]:
    """Throughput of all ten schedules, in Figure 4 order."""
    return [
        evaluate_schedule(s, factories=factories, horizon=horizon, seed=seed)
        for s in enumerate_schedules()
    ]


def average_system_throughput(
    results: list[ScheduleThroughput], weighting: str = "multiplicity"
) -> float:
    """Average system throughput over schedules.

    *weighting* is ``"multiplicity"`` (each schedule weighted by the
    number of ordered assignments collapsing onto it — the expectation
    under a uniformly random assignment) or ``"uniform"``.
    """
    if not results:
        raise ValueError("no schedule results")
    values = np.array([r.system_jobs_per_day for r in results])
    if weighting == "uniform":
        return float(values.mean())
    if weighting == "multiplicity":
        weights = np.array([r.schedule.multiplicity for r in results], dtype=np.float64)
        return float(np.average(values, weights=weights))
    raise ValueError(f"unknown weighting {weighting!r}")


def improvement_percent(chosen: ScheduleThroughput, results: list[ScheduleThroughput], weighting: str = "multiplicity") -> float:
    """Percent by which *chosen* beats the average over all schedules."""
    avg = average_system_throughput(results, weighting=weighting)
    return 100.0 * (chosen.system_jobs_per_day - avg) / avg


@dataclass(frozen=True)
class PerAppSummary:
    """Figure 5 data for one application: MIN/MAX/AVG vs the SPN schedule."""

    code: str
    minimum: float
    maximum: float
    average: float
    spn: float
    max_schedule_label: str

    @property
    def spn_gain_over_average_percent(self) -> float:
        """SPN throughput gain over the schedule average, in percent."""
        return 100.0 * (self.spn - self.average) / self.average


def per_app_summaries(results: list[ScheduleThroughput]) -> list[PerAppSummary]:
    """Figure 5: per-application MIN/MAX/AVG across schedules vs SPN.

    The SPN entry is the last (10th) schedule.
    """
    if not results:
        raise ValueError("no schedule results")
    spn = results[-1]
    if spn.schedule.label() != "{(SPN),(SPN),(SPN)}":
        raise ValueError("results must be in Figure 4 order (SPN last)")
    out = []
    for code in JOB_CODES:
        values = [r.app_throughput(code) for r in results]
        max_i = int(np.argmax(values))
        out.append(
            PerAppSummary(
                code=code,
                minimum=float(np.min(values)),
                maximum=float(np.max(values)),
                average=float(np.mean(values)),
                spn=spn.app_throughput(code),
                max_schedule_label=results[max_i].schedule.label(),
            )
        )
    return out
