"""Class-aware resource scheduling on top of the application classifier."""

from .class_aware import ClassAwareScheduler, Placement, placement_to_schedule
from .composition_aware import (
    CompositionAwareScheduler,
    excess_pressure,
    machine_pressure,
    placement_score,
    rank_schedules_by_prediction,
)
from .conservative import ConservativeLoadPredictor, ConservativeScheduler, LoadForecast
from .migration import MigrationController, MigrationDecision
from .random_sched import RandomScheduler
from .reservation import ResourceReservation, recommend_reservation
from .schedules import (
    JOB_CODES,
    Group,
    Schedule,
    canonical_group,
    enumerate_schedules,
    schedule_by_number,
    spn_schedule,
)
from .throughput import (
    SCHEDULE_VMS,
    PerAppSummary,
    ScheduleThroughput,
    average_system_throughput,
    default_job_factories,
    evaluate_all_schedules,
    evaluate_schedule,
    improvement_percent,
    per_app_summaries,
)

__all__ = [
    "ClassAwareScheduler",
    "Placement",
    "placement_to_schedule",
    "CompositionAwareScheduler",
    "excess_pressure",
    "machine_pressure",
    "placement_score",
    "rank_schedules_by_prediction",
    "ConservativeLoadPredictor",
    "ConservativeScheduler",
    "LoadForecast",
    "MigrationController",
    "MigrationDecision",
    "RandomScheduler",
    "ResourceReservation",
    "recommend_reservation",
    "JOB_CODES",
    "Group",
    "Schedule",
    "canonical_group",
    "enumerate_schedules",
    "schedule_by_number",
    "spn_schedule",
    "SCHEDULE_VMS",
    "PerAppSummary",
    "ScheduleThroughput",
    "average_system_throughput",
    "default_job_factories",
    "evaluate_all_schedules",
    "evaluate_schedule",
    "improvement_percent",
    "per_app_summaries",
]
