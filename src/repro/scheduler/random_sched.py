"""Random scheduling baseline (paper §5.2, the "without class knowledge" scenario).

Without application class information the scheduler has no basis to
prefer one placement over another, so it picks uniformly at random —
either among the ten canonical schedules or among all ordered job→VM
assignments (which weights schedules by their multiplicity).
"""

from __future__ import annotations

import numpy as np

from .schedules import JOB_CODES, Schedule, canonical_group, enumerate_schedules


class RandomScheduler:
    """Seeded uniform-random schedule selection."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    def choose_schedule(self) -> Schedule:
        """Pick one of the ten canonical schedules uniformly."""
        schedules = enumerate_schedules()
        return schedules[int(self.rng.integers(len(schedules)))]

    def choose_assignment(self) -> Schedule:
        """Randomly assign the nine jobs to VM slots, then canonicalize.

        Unlike :meth:`choose_schedule`, this samples schedules with
        probability proportional to their multiplicity — the true
        distribution of a scheduler throwing jobs at slots blindly.
        """
        jobs = [code for code in JOB_CODES for _ in range(3)]
        perm = self.rng.permutation(len(jobs))
        shuffled = [jobs[i] for i in perm]
        groups = sorted(
            (canonical_group(tuple(shuffled[3 * m : 3 * m + 3])) for m in range(3)),
            key=lambda g: tuple("SPN".index(c) for c in g),
        )
        ordered = tuple(groups)
        for schedule in enumerate_schedules():
            if schedule.groups == ordered:
                return schedule
        raise AssertionError("random assignment produced an unknown schedule")

    def expected_distribution(self, draws: int = 10000, by_assignment: bool = True) -> dict[int, float]:
        """Empirical schedule-selection frequencies (for tests/ablations)."""
        if draws < 1:
            raise ValueError("draws must be positive")
        counts: dict[int, int] = {}
        for _ in range(draws):
            s = self.choose_assignment() if by_assignment else self.choose_schedule()
            counts[s.number] = counts.get(s.number, 0) + 1
        return {num: c / draws for num, c in sorted(counts.items())}
