"""Conservative scheduling baseline (paper §6 related work).

Yang, Schopf & Foster's *conservative scheduling* places jobs using the
predicted mean and variance of hosts' **CPU load** over a future window.
The paper contrasts its classifier with this approach: "the application
classifier is capable to take into account usage patterns of multiple
kinds of resources, such as CPU, I/O, network and memory" — a CPU-only
predictor happily drops an I/O job onto a host whose CPU is idle but
whose disk is saturated.

This module implements the baseline faithfully (rolling CPU-load mean +
c·stddev from monitoring history) so experiments can demonstrate exactly
that failure mode against the class-aware scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..monitoring.aggregator import GmetadAggregator


@dataclass(frozen=True)
class LoadForecast:
    """Predicted CPU load of one node over the next scheduling window."""

    node: str
    mean: float
    std: float
    conservative_load: float
    samples: int


class ConservativeLoadPredictor:
    """Rolling mean/variance prediction of per-node CPU load.

    Parameters
    ----------
    aggregator:
        Monitoring aggregator holding recent announcements.
    window:
        Number of recent announcements the statistics are computed over.
    confidence:
        The *c* in ``mean + c·std`` (conservative headroom).
    metric:
        Load metric used; ``load_one`` matches the related work, while
        ``cpu_user`` is a direct utilization alternative.
    """

    def __init__(
        self,
        aggregator: GmetadAggregator,
        window: int = 12,
        confidence: float = 1.0,
        metric: str = "load_one",
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if confidence < 0:
            raise ValueError("confidence must be non-negative")
        from ..metrics.catalog import metric_index

        metric_index(metric)  # validate
        self.aggregator = aggregator
        self.window = window
        self.confidence = confidence
        self.metric = metric

    def forecast(self, node: str) -> LoadForecast:
        """Predict *node*'s load for the next window.

        Raises
        ------
        KeyError
            If the node has no monitoring history.
        """
        from ..metrics.catalog import metric_index

        state = self.aggregator._nodes.get(node)  # noqa: SLF001 — read-only peek
        if state is None or not state.history:
            raise KeyError(f"no monitoring history for node {node!r}")
        idx = metric_index(self.metric)
        recent = [a.values[idx] for a in list(state.history)[-self.window :]]
        mean = float(np.mean(recent))
        std = float(np.std(recent))
        return LoadForecast(
            node=node,
            mean=mean,
            std=std,
            conservative_load=mean + self.confidence * std,
            samples=len(recent),
        )


class ConservativeScheduler:
    """Places each job on the node with the lowest conservative CPU load."""

    def __init__(self, predictor: ConservativeLoadPredictor) -> None:
        self.predictor = predictor

    def rank_nodes(self, candidates: list[str]) -> list[LoadForecast]:
        """Forecasts for *candidates*, best (least loaded) first.

        Raises
        ------
        ValueError
            With no candidates.
        """
        if not candidates:
            raise ValueError("no candidate nodes")
        forecasts = [self.predictor.forecast(n) for n in candidates]
        forecasts.sort(key=lambda f: (f.conservative_load, f.node))
        return forecasts

    def pick_node(self, candidates: list[str]) -> str:
        """The least conservatively-loaded candidate."""
        return self.rank_nodes(candidates)[0].node
