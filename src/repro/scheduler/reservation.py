"""Resource reservation from learned behaviour (paper §2).

The application-behaviour knowledge gained over historical runs "can be
used to assist the resource reservation on the virtual machine's host
(physical) servers".  This module turns an application's statistical
abstract into a concrete reservation recommendation: per-resource shares
sized at the mean class fraction plus a configurable number of standard
deviations of headroom, and an expected duration bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.labels import SnapshotClass
from ..db.stats import ApplicationStats


@dataclass(frozen=True)
class ResourceReservation:
    """Recommended host-resource shares for one application (fractions of 1)."""

    application: str
    cpu_share: float
    io_share: float
    net_share: float
    mem_share: float
    expected_duration_s: float
    duration_bound_s: float

    def __post_init__(self) -> None:
        for name in ("cpu_share", "io_share", "net_share", "mem_share"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.duration_bound_s < self.expected_duration_s:
            raise ValueError("duration bound cannot undercut the expectation")


def recommend_reservation(stats: ApplicationStats, headroom_sigmas: float = 2.0) -> ResourceReservation:
    """Size a reservation from run-history statistics.

    Each resource share is the mean fraction of snapshots stressing that
    resource, plus *headroom_sigmas* standard deviations, clipped to
    [0, 1].  The duration bound gets the same treatment.

    Raises
    ------
    ValueError
        For negative headroom.
    """
    if headroom_sigmas < 0:
        raise ValueError("headroom must be non-negative")

    def share(c: SnapshotClass) -> float:
        mean = stats.mean_composition.fraction(c)
        std = stats.composition_std[int(c)]
        return float(min(max(mean + headroom_sigmas * std, 0.0), 1.0))

    return ResourceReservation(
        application=stats.application,
        cpu_share=share(SnapshotClass.CPU),
        io_share=share(SnapshotClass.IO),
        net_share=share(SnapshotClass.NET),
        mem_share=share(SnapshotClass.MEM),
        expected_duration_s=stats.mean_execution_time,
        duration_bound_s=stats.mean_execution_time
        + headroom_sigmas * stats.execution_time_std,
    )
