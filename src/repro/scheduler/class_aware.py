"""Class-aware scheduling (paper §5.2, the "with class knowledge" scenario).

Given the learned application classes (from the
:class:`~repro.db.store.ApplicationDB`), the scheduler allocates
applications of *different* classes to the same machine, so they stress
different resources and contend as little as possible.  For the paper's
nine-job experiment this policy deterministically selects schedule 10,
``{(SPN),(SPN),(SPN)}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.labels import SnapshotClass
from ..db.store import ApplicationDB
from .schedules import Schedule, canonical_group, enumerate_schedules


@dataclass(frozen=True)
class Placement:
    """A concrete job→machine assignment."""

    machines: tuple[tuple[str, ...], ...]

    def machine_of(self, job_index: int) -> int:
        """Machine index of the *job_index*-th placed job.

        Raises
        ------
        IndexError
            If the job index is out of range.
        """
        count = 0
        for m, jobs in enumerate(self.machines):
            if job_index < count + len(jobs):
                return m
            count += len(jobs)
        raise IndexError(job_index)


class ClassAwareScheduler:
    """Distributes jobs across machines maximizing per-machine class diversity."""

    def __init__(self, db: ApplicationDB, default_class: SnapshotClass = SnapshotClass.CPU) -> None:
        self.db = db
        self.default_class = default_class

    def class_of(self, application: str) -> SnapshotClass:
        """Learned class of *application* (default when never profiled)."""
        known = self.db.known_class(application, default=self.default_class)
        assert known is not None
        return known

    def schedule_jobs(self, jobs: list[str], machines: int) -> Placement:
        """Assign *jobs* to *machines* machines, spreading classes apart.

        Jobs are grouped by learned class and dealt round-robin, so each
        machine receives as close to one job per class as the mix allows.
        Machine loads stay balanced within one job.

        Raises
        ------
        ValueError
            With no jobs or no machines.
        """
        if machines < 1:
            raise ValueError("need at least one machine")
        if not jobs:
            raise ValueError("no jobs to schedule")
        by_class: dict[SnapshotClass, list[str]] = {}
        for job in jobs:
            by_class.setdefault(self.class_of(job), []).append(job)
        slots: list[list[str]] = [[] for _ in range(machines)]
        slot_classes: list[set[SnapshotClass]] = [set() for _ in range(machines)]
        # Deal class-by-class (largest class first for balance), placing
        # each job on the least-loaded machine that lacks the class.
        for cls in sorted(by_class, key=lambda c: (-len(by_class[c]), int(c))):
            for job in by_class[cls]:
                candidates = sorted(
                    range(machines),
                    key=lambda m: (cls in slot_classes[m], len(slots[m]), m),
                )
                target = candidates[0]
                slots[target].append(job)
                slot_classes[target].add(cls)
        return Placement(machines=tuple(tuple(s) for s in slots))

    def pick_schedule(self, class_by_code: dict[str, SnapshotClass] | None = None) -> Schedule:
        """Pick the most class-diverse of the ten §5.2 schedules.

        *class_by_code* maps job codes S/P/N to classes; defaults to the
        paper's (S→CPU, P→IO, N→NET).  With three distinct classes this
        always returns schedule 10.
        """
        class_by_code = class_by_code or {
            "S": SnapshotClass.CPU,
            "P": SnapshotClass.IO,
            "N": SnapshotClass.NET,
        }
        best: Schedule | None = None
        best_score = -1
        for schedule in enumerate_schedules():
            score = sum(
                len({class_by_code[code] for code in group}) for group in schedule.groups
            )
            if score > best_score:
                best, best_score = schedule, score
        assert best is not None
        return best


def placement_to_schedule(placement: Placement, code_of: dict[str, str]) -> Schedule:
    """Convert a 3-machine, 9-job placement into a canonical Schedule.

    Raises
    ------
    ValueError
        If the placement is not 3 machines × 3 jobs.
    """
    if len(placement.machines) != 3 or any(len(m) != 3 for m in placement.machines):
        raise ValueError("expected 3 machines with 3 jobs each")
    groups = sorted(
        (canonical_group(tuple(code_of[j] for j in m)) for m in placement.machines),
    )
    ordered = tuple(sorted(groups, key=lambda g: tuple("SPN".index(c) for c in g)))
    for schedule in enumerate_schedules():
        if schedule.groups == ordered:
            return schedule
    raise ValueError(f"placement {ordered!r} is not one of the ten schedules")
