"""Enumeration of the paper's §5.2 schedule space.

Nine job instances — three each of SPECseis96 (S), PostMark (P), and
NetPIPE (N) — are placed on three VMs, three jobs per VM.  Up to VM
renaming there are exactly ten schedules; sorted lexicographically with
``S < P < N`` they come out in the paper's Figure 4 numbering::

    1:{(SSS),(PPP),(NNN)}  2:{(SSS),(PPN),(PNN)}  3:{(SSP),(SPP),(NNN)}
    4:{(SSP),(SPN),(PNN)}  5:{(SSP),(SNN),(PPN)}  6:{(SSN),(SPP),(PNN)}
    7:{(SSN),(SPN),(PPN)}  8:{(SSN),(SNN),(PPP)}  9:{(SPP),(SPN),(SNN)}
    10:{(SPN),(SPN),(SPN)}

Each schedule also carries its *multiplicity*: the number of distinct
ordered VM assignments that collapse onto it, used for multiplicity-
weighted averages of the random-scheduler baseline.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from dataclasses import dataclass

#: Job codes in the paper's priority order (defines schedule numbering).
JOB_CODES: tuple[str, ...] = ("S", "P", "N")

_CODE_RANK = {code: i for i, code in enumerate(JOB_CODES)}

#: One VM's job multiset, canonically sorted (S before P before N).
Group = tuple[str, str, str]


def canonical_group(jobs: tuple[str, ...]) -> Group:
    """Sort a VM's three job codes into canonical order.

    Raises
    ------
    ValueError
        If there are not exactly three jobs or codes are unknown.
    """
    if len(jobs) != 3:
        raise ValueError(f"a VM group holds exactly 3 jobs, got {jobs!r}")
    for j in jobs:
        if j not in _CODE_RANK:
            raise ValueError(f"unknown job code {j!r}; valid codes: {JOB_CODES}")
    ordered = tuple(sorted(jobs, key=_CODE_RANK.__getitem__))
    return ordered  # type: ignore[return-value]


@dataclass(frozen=True)
class Schedule:
    """One canonical placement of the nine jobs onto three VMs."""

    number: int
    groups: tuple[Group, Group, Group]

    def __post_init__(self) -> None:
        counts = Counter(code for group in self.groups for code in group)
        if any(counts.get(code, 0) != 3 for code in JOB_CODES):
            raise ValueError(f"schedule must place 3 of each job type, got {dict(counts)}")
        for group in self.groups:
            if group != canonical_group(group):
                raise ValueError(f"group {group!r} is not canonically sorted")

    def label(self) -> str:
        """The paper's Figure 4 label, e.g. ``{(SPN),(SPN),(SPN)}``."""
        return "{" + ",".join("(" + "".join(g) + ")" for g in self.groups) + "}"

    @property
    def multiplicity(self) -> int:
        """Distinct ordered VM assignments collapsing to this schedule."""
        group_counts = Counter(self.groups)
        denom = math.prod(math.factorial(c) for c in group_counts.values())
        return math.factorial(len(self.groups)) // denom

    def class_diversity(self) -> int:
        """Total distinct job types per VM, summed (max 9, min 3)."""
        return sum(len(set(group)) for group in self.groups)


def enumerate_schedules() -> list[Schedule]:
    """All ten schedules, numbered as in the paper's Figure 4."""
    groups = [
        canonical_group(combo)
        for combo in itertools.combinations_with_replacement(JOB_CODES, 3)
    ]
    seen: set[tuple[Group, Group, Group]] = set()
    found: list[tuple[Group, Group, Group]] = []
    for trio in itertools.combinations_with_replacement(groups, 3):
        counts = Counter(code for group in trio for code in group)
        if any(counts.get(code, 0) != 3 for code in JOB_CODES):
            continue
        key = tuple(sorted(trio, key=_group_key))
        if key in seen:
            continue
        seen.add(key)
        found.append(key)  # type: ignore[arg-type]
    found.sort(key=lambda trio: tuple(_group_key(g) for g in trio))
    return [Schedule(number=i + 1, groups=trio) for i, trio in enumerate(found)]


def _group_key(group: Group) -> tuple[int, int, int]:
    return tuple(_CODE_RANK[c] for c in group)  # type: ignore[return-value]


def spn_schedule() -> Schedule:
    """Schedule 10, ``{(SPN),(SPN),(SPN)}`` — the class-aware choice."""
    schedules = enumerate_schedules()
    last = schedules[-1]
    assert last.label() == "{(SPN),(SPN),(SPN)}"
    return last


def schedule_by_number(number: int) -> Schedule:
    """Look up a schedule by its Figure 4 number (1–10).

    Raises
    ------
    ValueError
        For numbers outside 1–10.
    """
    schedules = enumerate_schedules()
    if not 1 <= number <= len(schedules):
        raise ValueError(f"schedule number must be 1–{len(schedules)}, got {number}")
    return schedules[number - 1]
