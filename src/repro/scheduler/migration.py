"""Stage-triggered migration control.

Closes the loop the paper sketches in §1: multi-stage applications can be
*migrated* between hosts when their resource consumption pattern changes,
so each stage runs where its stressed resource is least contended.

The :class:`MigrationController` watches one application through the
online classifier.  When the application's stable snapshot class changes
(a new execution stage), it asks which candidate VM's host currently has
the least pressure on the newly stressed resource — judged from the
*other* VMs' online classifications — and live-migrates the application
there via the engine's checkpoint/restart support.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.labels import SnapshotClass
from ..core.online import OnlineClassifier
from ..obs import event as obs_event
from ..sim.engine import MigrationEvent, SimulationEngine


@dataclass
class MigrationDecision:
    """Diagnostic record of one controller decision."""

    time: float
    stage_class: SnapshotClass
    chosen_vm: str
    migrated: bool
    reason: str


class MigrationController:
    """Migrates one instance to the least-contended host per stage.

    Parameters
    ----------
    engine:
        The simulation engine (provides :meth:`migrate` and tick hooks).
    online:
        Online classifier observing the whole cluster's announcements.
    instance_key:
        Engine key of the managed application instance.
    candidate_vms:
        VMs the application may run on (its current VM included).
    min_streak:
        Snapshots a class must persist before it counts as a new stage.
    cooldown_s:
        Minimum time between migrations (amortizes checkpoint cost).
    downtime_s:
        Checkpoint/restart downtime charged per migration.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        online: OnlineClassifier,
        instance_key: int,
        candidate_vms: list[str],
        min_streak: int = 3,
        cooldown_s: float = 60.0,
        downtime_s: float = 5.0,
    ) -> None:
        if not candidate_vms:
            raise ValueError("need at least one candidate VM")
        for vm in candidate_vms:
            engine.cluster.vm(vm)  # KeyError if unknown
        self.engine = engine
        self.online = online
        self.instance_key = instance_key
        self.candidate_vms = list(candidate_vms)
        self.min_streak = min_streak
        self.cooldown_s = cooldown_s
        self.downtime_s = downtime_s
        self._last_stage_class: SnapshotClass | None = None
        self._last_migration_time = float("-inf")
        self.decisions: list[MigrationDecision] = []
        engine.add_tick_listener(self.on_tick)

    # ------------------------------------------------------------------
    # pressure estimation
    # ------------------------------------------------------------------
    def host_pressure(self, vm_name: str, resource: SnapshotClass) -> int:
        """How many *other* VMs on vm_name's host currently stress *resource*."""
        host = self.engine.cluster.host_of(vm_name)
        pressure = 0
        for other in host.vms.values():
            if other.name == vm_name:
                continue
            try:
                state = self.online.state(other.name)
            except KeyError:
                continue
            if state.current_class is resource and state.streak >= self.min_streak:
                pressure += 1
        return pressure

    def best_vm_for(self, resource: SnapshotClass, current_vm: str) -> str:
        """Candidate VM whose host has least pressure on *resource*.

        The current VM wins ties, so no-op migrations are never issued.
        """
        return min(
            self.candidate_vms,
            key=lambda vm: (
                self.host_pressure(vm, resource),
                vm != current_vm,  # prefer staying put on ties
                vm,
            ),
        )

    # ------------------------------------------------------------------
    # engine hook
    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> None:
        """Detect stage changes and migrate when a better host exists."""
        inst = self.engine.instance(self.instance_key)
        if inst.done or not inst.has_started(now):
            return
        try:
            stable = self.online.stable_class(inst.vm_name, min_streak=self.min_streak)
        except KeyError:
            return
        if stable is None or stable is SnapshotClass.IDLE:
            return
        if stable is self._last_stage_class:
            return
        self._last_stage_class = stable
        if now - self._last_migration_time < self.cooldown_s:
            self.decisions.append(
                MigrationDecision(now, stable, inst.vm_name, False, "cooldown")
            )
            return
        target = self.best_vm_for(stable, inst.vm_name)
        if target == inst.vm_name:
            self.decisions.append(
                MigrationDecision(now, stable, target, False, "already best placed")
            )
            return
        source = inst.vm_name
        self.engine.migrate(self.instance_key, target, downtime_s=self.downtime_s)
        self._last_migration_time = now
        obs_event(
            "scheduler.migration",
            instance=str(self.instance_key),
            source=source,
            target=target,
            stage=stable.name,
        )
        self.decisions.append(
            MigrationDecision(now, stable, target, True, "stage change")
        )

    @property
    def migrations(self) -> list[MigrationEvent]:
        """Migrations of the managed instance, in order."""
        return [
            m for m in self.engine.migrations if m.instance_key == self.instance_key
        ]
