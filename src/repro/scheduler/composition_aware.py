"""Composition-aware scheduling.

The class-aware scheduler of §5.2 uses only each application's single
majority class.  The classifier, however, outputs the full *class
composition* — and §4.3 stores it in the application DB precisely so
schedulers can use richer information.  This module implements that next
step: a scheduler that predicts the contention of a candidate placement
from the co-located applications' compositions, and greedily builds the
placement minimizing predicted contention.

Contention model: an application's composition approximates the fraction
of its lifetime it stresses each resource.  For one machine, the expected
pressure on resource *r* is the sum of the co-located compositions'
*r*-fractions; pressure beyond 1.0 means time-multiplexed demand exceeds
the resource and costs throughput.  The placement score is the total
excess pressure over all machines and resources — 0 for a perfectly
complementary placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.labels import ALL_CLASSES, ClassComposition, SnapshotClass
from ..db.store import ApplicationDB
from .class_aware import Placement

#: Resources that contend (IDLE fractions never do).
_CONTENDING = [c for c in ALL_CLASSES if c is not SnapshotClass.IDLE]


def machine_pressure(compositions: list[ClassComposition]) -> dict[SnapshotClass, float]:
    """Per-resource summed composition fractions for one machine."""
    out = {c: 0.0 for c in _CONTENDING}
    for comp in compositions:
        for c in _CONTENDING:
            out[c] += comp.fraction(c)
    return out


def excess_pressure(compositions: list[ClassComposition]) -> float:
    """Total predicted over-commitment of one machine (≥ 0)."""
    return sum(max(p - 1.0, 0.0) for p in machine_pressure(compositions).values())


def placement_score(machines: list[list[ClassComposition]]) -> float:
    """Total excess pressure of a placement; lower is better."""
    return sum(excess_pressure(m) for m in machines)


@dataclass
class CompositionAwareScheduler:
    """Greedy contention-minimizing scheduler over learned compositions.

    Parameters
    ----------
    db:
        Application database holding historical compositions.
    default_composition:
        Used for never-profiled applications (uniform over contending
        classes by default — maximally cautious).
    """

    db: ApplicationDB
    default_composition: ClassComposition = ClassComposition(
        fractions=(0.0, 0.25, 0.25, 0.25, 0.25)
    )

    def composition_of(self, application: str) -> ClassComposition:
        """Learned mean composition, or the cautious default."""
        if self.db.run_count(application) == 0:
            return self.default_composition
        return self.db.stats(application).mean_composition

    def schedule_jobs(self, jobs: list[str], machines: int) -> Placement:
        """Greedily place *jobs* minimizing predicted excess pressure.

        Jobs are placed largest-demand-first (by total contending
        fraction); each goes to the machine where it adds the least
        excess pressure, with machine size as tie-break (balance).

        Raises
        ------
        ValueError
            With no jobs or no machines.
        """
        if machines < 1:
            raise ValueError("need at least one machine")
        if not jobs:
            raise ValueError("no jobs to schedule")
        comps = {j: self.composition_of(j) for j in set(jobs)}
        ordered = sorted(
            jobs,
            key=lambda j: (-(1.0 - comps[j].idle), j),
        )
        slots: list[list[str]] = [[] for _ in range(machines)]
        slot_comps: list[list[ClassComposition]] = [[] for _ in range(machines)]
        max_per_machine = -(-len(jobs) // machines)  # ceil division
        for job in ordered:
            best_m, best_key = None, None
            for m in range(machines):
                if len(slots[m]) >= max_per_machine:
                    continue
                delta = excess_pressure(slot_comps[m] + [comps[job]]) - excess_pressure(
                    slot_comps[m]
                )
                key = (delta, len(slots[m]), m)
                if best_key is None or key < best_key:
                    best_m, best_key = m, key
            assert best_m is not None
            slots[best_m].append(job)
            slot_comps[best_m].append(comps[job])
        return Placement(machines=tuple(tuple(s) for s in slots))

    def predicted_score(self, placement: Placement) -> float:
        """Predicted excess pressure of an existing placement."""
        machines = [
            [self.composition_of(j) for j in machine] for machine in placement.machines
        ]
        return placement_score(machines)


def rank_schedules_by_prediction(
    scheduler: CompositionAwareScheduler,
    code_jobs: dict[str, str],
) -> list[tuple[int, float]]:
    """Rank the ten §5.2 schedules by predicted excess pressure.

    *code_jobs* maps job codes (S/P/N) to application names in the DB.
    Returns ``(schedule_number, score)`` sorted best-first; the
    composition-aware prediction should rank schedule 10 at or near the
    top, agreeing with the measured Figure 4.
    """
    from .schedules import enumerate_schedules

    ranked = []
    for schedule in enumerate_schedules():
        machines = [
            [scheduler.composition_of(code_jobs[code]) for code in group]
            for group in schedule.groups
        ]
        ranked.append((schedule.number, placement_score(machines)))
    ranked.sort(key=lambda t: (t[1], t[0]))
    return ranked
