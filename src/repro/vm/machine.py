"""Physical hosts and virtual machines.

Reproduces the paper's deployment model: applications run inside dedicated
VMware-GSX-style virtual machines; the physical host is time- and
space-shared across many VM instances.  The decoupling means that metrics
collected *inside* a VM summarize the resource consumption of the
application it hosts, independently of co-located VMs — which is what makes
per-VM classification possible.

The VM also owns the **memory model**: when an application's working set
exceeds the VM's available RAM, the VM injects paging traffic (swap in/out,
which also consumes disk bandwidth) and an execution-efficiency penalty.
This is the mechanism behind the paper's SPECseis96 B experiment, where
shrinking VM memory from 256 MB to 32 MB turned a CPU-intensive run into a
CPU/IO/paging mix and stretched its runtime by ~46%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .counters import NodeCounters
from .resources import ResourceCapacity, ResourceDemand

#: RAM consumed by the guest OS and resident daemons (MB).
OS_BASE_MEM_MB: float = 24.0

#: kB/s of paging traffic injected per MB of working-set overflow.
PAGING_KB_PER_OVERFLOW_MB: float = 6.0

#: Cap on injected paging traffic (kB/s, swap-in direction).
PAGING_RATE_CAP_KBPS: float = 900.0

#: Hyperbolic slowdown coefficient per MB of overflow.  Calibrated so
#: SPECseis96 medium in a 32 MB VM stretches ~1.46x, reproducing the
#: paper's 291 min → 427 min observation.
PAGING_SLOWDOWN_PER_MB: float = 0.0084

#: Floor on the paging efficiency factor.
PAGING_MIN_EFFICIENCY: float = 0.2

#: Page-eviction storms are bursty: a few seconds of intense swapping
#: followed by quieter stretches dominated by (cache-starved) file I/O.
#: Deterministic duty cycle, intentionally co-prime with the 5 s
#: monitoring interval so sampled windows see varied mixes.
PAGING_BURST_PERIOD_TICKS: int = 16
PAGING_BURST_LEN_TICKS: int = 2
PAGING_BURST_HIGH: float = 4.0
PAGING_BURST_LOW: float = 0.55


def paging_burst_multiplier(tick: int) -> float:
    """Swap-rate multiplier for simulation *tick* (deterministic bursts)."""
    if tick < 0:
        raise ValueError("tick must be non-negative")
    phase = tick % PAGING_BURST_PERIOD_TICKS
    return PAGING_BURST_HIGH if phase < PAGING_BURST_LEN_TICKS else PAGING_BURST_LOW


@dataclass
class MemoryPressure:
    """Result of evaluating a working set against a VM's RAM."""

    overflow_mb: float
    swap_in_kbps: float
    swap_out_kbps: float
    efficiency: float
    io_amplification: float

    @property
    def is_paging(self) -> bool:
        return self.overflow_mb > 0


@dataclass
class VirtualMachine:
    """A dedicated application VM.

    Parameters
    ----------
    name:
        Unique VM identifier; doubles as the node name / ``VMIP`` that the
        monitoring substrate reports.
    mem_mb:
        Virtual machine memory size (the paper uses 256 MB, and 32 MB for
        the SPECseis96 B experiment).
    vcpus:
        Number of virtual CPUs.
    """

    name: str
    mem_mb: float = 256.0
    vcpus: int = 1
    host: "PhysicalHost | None" = field(default=None, repr=False)
    counters: NodeCounters = field(default_factory=NodeCounters, repr=False)
    swap_total_kb: float = 512 * 1024.0

    def __post_init__(self) -> None:
        if self.mem_mb <= 0:
            raise ValueError("VM memory must be positive")
        if self.vcpus < 1:
            raise ValueError("VM needs at least one vCPU")
        self.counters.mem_used_kb = OS_BASE_MEM_MB * 1024.0

    # ------------------------------------------------------------------
    # memory model
    # ------------------------------------------------------------------
    def available_app_mem_mb(self) -> float:
        """RAM available to the application after the OS base footprint."""
        return max(self.mem_mb - OS_BASE_MEM_MB, 1.0)

    def memory_pressure(self, working_set_mb: float) -> MemoryPressure:
        """Evaluate paging behaviour for an application working set.

        Returns the swap traffic the VM will inject, the execution
        efficiency factor (≤ 1), and the buffer-cache I/O amplification
        factor (≥ 1): with little free RAM the OS buffer cache shrinks
        (the paper observed 1 MB vs 200 MB), so file I/O misses the cache
        more often and issues more physical blocks.
        """
        if working_set_mb < 0:
            raise ValueError("working set must be non-negative")
        avail = self.available_app_mem_mb()
        overflow = max(working_set_mb - avail, 0.0)
        if overflow <= 0.0:
            free_frac = 1.0 - working_set_mb / avail if avail > 0 else 0.0
            # Mild cache amplification as free memory gets scarce.
            io_amp = 1.0 + max(0.0, 0.3 - free_frac) * 0.5
            return MemoryPressure(0.0, 0.0, 0.0, 1.0, io_amp)
        rate = min(overflow * PAGING_KB_PER_OVERFLOW_MB, PAGING_RATE_CAP_KBPS)
        efficiency = max(1.0 / (1.0 + overflow * PAGING_SLOWDOWN_PER_MB), PAGING_MIN_EFFICIENCY)
        # Severe memory pressure: buffer cache collapses, file I/O amplifies.
        return MemoryPressure(
            overflow_mb=overflow,
            swap_in_kbps=rate,
            swap_out_kbps=rate * 0.9,
            efficiency=efficiency,
            io_amplification=2.0,
        )

    def effective_demand(
        self,
        demand: ResourceDemand,
        tick: int | None = None,
        vm_working_set_mb: float | None = None,
    ) -> ResourceDemand:
        """Translate an application's nominal demand into VM-level demand.

        Applies the memory model: adds paging traffic and buffer-cache I/O
        amplification when the working set overflows available RAM.  The
        returned demand is what the host allocator sees.  With *tick*
        given, paging traffic follows the deterministic burst pattern
        (:func:`paging_burst_multiplier`); without it the mean rate is
        used.

        *vm_working_set_mb* is the **combined** working set of every
        instance currently running in this VM (co-located jobs share the
        VM's RAM — three memory-hungry jobs thrash a VM that would hold
        one comfortably).  Defaults to this demand's own working set.
        The injected swap traffic is attributed to this instance in
        proportion to its share of the combined working set.
        """
        vm_ws = demand.mem_mb if vm_working_set_mb is None else vm_working_set_mb
        if vm_ws < demand.mem_mb:
            raise ValueError("VM working set cannot be smaller than the instance's own")
        pressure = self.memory_pressure(vm_ws)
        # Buffer-cache miss fraction for logical (cacheable) file I/O: a
        # healthy cache absorbs ~95% of it; under memory pressure the
        # cache collapses (paper: 200 MB → 1 MB) and it all hits disk.
        miss = 1.0 if pressure.is_paging else 0.05
        cached_bi = demand.io_cached * miss * 0.7
        cached_bo = demand.io_cached * miss * 0.3
        # io_amplification is ≥ 1 and io_cached ≥ 0 by construction, so the
        # inequality guards are exact (no float-equality hazard).
        if not pressure.is_paging and pressure.io_amplification <= 1.0 and demand.io_cached <= 0.0:
            return demand
        burst = paging_burst_multiplier(tick) if tick is not None else 1.0
        ws_share = demand.mem_mb / vm_ws if vm_ws > 0 else 0.0
        swap_scale = burst * demand.paging_intensity * ws_share
        return ResourceDemand(
            cpu_user=demand.cpu_user,
            cpu_system=demand.cpu_system,
            io_bi=demand.io_bi * pressure.io_amplification + cached_bi,
            io_bo=demand.io_bo * pressure.io_amplification + cached_bo,
            net_in=demand.net_in,
            net_out=demand.net_out,
            swap_in=demand.swap_in + pressure.swap_in_kbps * swap_scale,
            swap_out=demand.swap_out + pressure.swap_out_kbps * swap_scale,
            io_cached=0.0,
            mem_mb=demand.mem_mb,
            paging_intensity=demand.paging_intensity,
        )

    def update_memory_gauges(self, working_set_mb: float) -> None:
        """Refresh mem_* gauges from the current application working set."""
        avail = self.available_app_mem_mb()
        resident = min(working_set_mb, avail)
        overflow = max(working_set_mb - avail, 0.0)
        self.counters.mem_used_kb = (OS_BASE_MEM_MB + resident) * 1024.0
        free_mb = max(self.mem_mb - OS_BASE_MEM_MB - resident, 0.0)
        # The buffer cache opportunistically takes most of free RAM.
        self.counters.mem_cached_kb = free_mb * 1024.0 * 0.8
        self.counters.mem_buffers_kb = free_mb * 1024.0 * 0.1
        self.counters.swap_used_kb = min(overflow * 1024.0, self.swap_total_kb)


@dataclass
class PhysicalHost:
    """A physical server hosting one or more VMs.

    Matches the paper's testbed: e.g. a dual-CPU 1.80 GHz Xeon with 1 GB
    RAM hosting VM1, and a dual-CPU 2.40 GHz Xeon with 4 GB hosting
    VM2–VM4, connected by Gigabit Ethernet.
    """

    name: str
    capacity: ResourceCapacity = field(default_factory=ResourceCapacity)
    vms: dict[str, VirtualMachine] = field(default_factory=dict)

    def attach(self, vm: VirtualMachine) -> VirtualMachine:
        """Attach *vm* to this host.

        Raises
        ------
        ValueError
            If a VM of the same name is already attached, or the VM is
            already placed on another host.
        """
        if vm.name in self.vms:
            raise ValueError(f"host {self.name!r} already has a VM named {vm.name!r}")
        if vm.host is not None and vm.host is not self:
            raise ValueError(f"VM {vm.name!r} is already attached to host {vm.host.name!r}")
        vm.host = self
        self.vms[vm.name] = vm
        return vm

    def detach(self, vm_name: str) -> VirtualMachine:
        """Detach and return the VM named *vm_name*.

        Raises
        ------
        KeyError
            If no such VM is attached.
        """
        vm = self.vms.pop(vm_name)
        vm.host = None
        return vm

    def committed_mem_mb(self) -> float:
        """Total memory committed to attached VMs."""
        return sum(vm.mem_mb for vm in self.vms.values())
