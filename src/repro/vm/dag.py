"""VMPlant-style DAG configuration of virtual machines.

The VMPlant Grid service (Krsul et al., SC'04) defines customized,
application-specific VMs with a *directed acyclic graph* of configuration
actions; VMs defined this way can be cloned and dynamically instantiated.
This module implements that configuration model on top of
:mod:`networkx`: a :class:`ConfigDAG` holds named
:class:`ConfigAction` nodes and precedence edges, validates acyclicity,
and applies actions to a :class:`VMSpec` in a deterministic topological
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import networkx as nx


@dataclass(frozen=True)
class VMSpec:
    """Declarative specification of a VM before instantiation."""

    mem_mb: float = 256.0
    vcpus: int = 1
    os_name: str = "linux-2.4"
    packages: tuple[str, ...] = ()
    attributes: tuple[tuple[str, str], ...] = ()

    def with_package(self, package: str) -> "VMSpec":
        """Return a spec with *package* appended (idempotent)."""
        if package in self.packages:
            return self
        return replace(self, packages=self.packages + (package,))

    def with_attribute(self, key: str, value: str) -> "VMSpec":
        """Return a spec with attribute *key* set to *value* (last write wins)."""
        kept = tuple((k, v) for k, v in self.attributes if k != key)
        return replace(self, attributes=kept + ((key, value),))

    def attribute(self, key: str, default: str | None = None) -> str | None:
        """Look up an attribute value."""
        for k, v in self.attributes:
            if k == key:
                return v
        return default


#: A configuration action transforms a spec into a new spec.
ActionFn = Callable[[VMSpec], VMSpec]


@dataclass(frozen=True)
class ConfigAction:
    """One node of the configuration DAG."""

    name: str
    apply: ActionFn
    description: str = ""


class ConfigDAG:
    """A DAG of VM configuration actions.

    Actions are applied in topological order; ties are broken by insertion
    order so instantiation is deterministic.
    """

    def __init__(self, name: str = "vm-config") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._order: list[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_action(self, action: ConfigAction, after: list[str] | None = None) -> None:
        """Add *action*, optionally depending on previously added actions.

        Raises
        ------
        ValueError
            If the action name is duplicated, a dependency is unknown, or
            the new edges would create a cycle.
        """
        if action.name in self._graph:
            raise ValueError(f"duplicate action {action.name!r} in DAG {self.name!r}")
        self._graph.add_node(action.name, action=action)
        self._order.append(action.name)
        for dep in after or []:
            if dep not in self._graph:
                raise ValueError(f"unknown dependency {dep!r} for action {action.name!r}")
            self._graph.add_edge(dep, action.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(action.name)
            self._order.remove(action.name)
            raise ValueError(f"adding action {action.name!r} would create a cycle")

    def add_edge(self, before: str, after: str) -> None:
        """Add a precedence constraint between existing actions.

        Raises
        ------
        ValueError
            If either action is unknown or the edge creates a cycle.
        """
        for node in (before, after):
            if node not in self._graph:
                raise ValueError(f"unknown action {node!r}")
        self._graph.add_edge(before, after)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(before, after)
            raise ValueError(f"edge {before!r} → {after!r} would create a cycle")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def topological_order(self) -> list[str]:
        """Deterministic topological order (insertion order breaks ties)."""
        index = {name: i for i, name in enumerate(self._order)}
        return list(nx.lexicographical_topological_sort(self._graph, key=lambda n: index[n]))

    def action(self, name: str) -> ConfigAction:
        """Return the action object named *name*."""
        try:
            return self._graph.nodes[name]["action"]
        except KeyError:
            raise KeyError(f"no action named {name!r} in DAG {self.name!r}") from None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def materialize(self, base: VMSpec | None = None) -> VMSpec:
        """Apply all actions in topological order to *base* (or a default).

        Returns the fully configured :class:`VMSpec`.
        """
        spec = base or VMSpec()
        for name in self.topological_order():
            spec = self.action(name).apply(spec)
        return spec


# ----------------------------------------------------------------------
# stock actions
# ----------------------------------------------------------------------
def set_memory(mem_mb: float) -> ConfigAction:
    """Action that sets the VM memory size."""
    if mem_mb <= 0:
        raise ValueError("memory must be positive")
    return ConfigAction(
        name=f"set-memory-{int(mem_mb)}",
        apply=lambda spec: replace(spec, mem_mb=float(mem_mb)),
        description=f"Set VM memory to {mem_mb} MB",
    )


def set_vcpus(vcpus: int) -> ConfigAction:
    """Action that sets the vCPU count."""
    if vcpus < 1:
        raise ValueError("need at least one vCPU")
    return ConfigAction(
        name=f"set-vcpus-{vcpus}",
        apply=lambda spec: replace(spec, vcpus=int(vcpus)),
        description=f"Set VM vCPUs to {vcpus}",
    )


def install_package(package: str) -> ConfigAction:
    """Action that installs an application package into the VM image."""
    return ConfigAction(
        name=f"install-{package}",
        apply=lambda spec: spec.with_package(package),
        description=f"Install package {package}",
    )


def set_attribute(key: str, value: str) -> ConfigAction:
    """Action that records an arbitrary configuration attribute."""
    return ConfigAction(
        name=f"attr-{key}",
        apply=lambda spec: spec.with_attribute(key, value),
        description=f"Set attribute {key}={value}",
    )
