"""Kernel-style cumulative counters for a (virtual) machine.

Real monitoring systems derive rate metrics from cumulative counters
exposed by the kernel (``/proc/stat``, ``/proc/vmstat``, interface byte
counts).  The simulator maintains the same abstraction: the execution
engine advances :class:`NodeCounters` every tick from granted resources,
and the monitoring substrate (:mod:`repro.monitoring`) computes rates from
counter *deltas* over each sampling window — exactly how Ganglia and
vmstat do it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LoadAverages:
    """Unix-style exponentially damped run-queue length averages."""

    one: float = 0.0
    five: float = 0.0
    fifteen: float = 0.0

    def update(self, runnable: float, dt: float) -> None:
        """Advance the 1/5/15-minute averages by *dt* seconds.

        Uses the kernel's first-order exponential damping
        ``load += (runnable - load) * (1 - exp(-dt/tau))``.
        """
        import math

        if dt <= 0:
            raise ValueError("dt must be positive")
        for attr, tau in (("one", 60.0), ("five", 300.0), ("fifteen", 900.0)):
            load = getattr(self, attr)
            alpha = 1.0 - math.exp(-dt / tau)
            setattr(self, attr, load + (runnable - load) * alpha)


@dataclass
class NodeCounters:
    """Cumulative activity counters plus instantaneous gauges for one node.

    Cumulative fields only ever increase; the monitoring layer is entitled
    to rely on monotonicity (and tests assert it).
    """

    # --- cumulative CPU seconds (summed over all cores) ---------------
    cpu_user_s: float = 0.0
    cpu_system_s: float = 0.0
    cpu_idle_s: float = 0.0
    cpu_wio_s: float = 0.0
    cpu_nice_s: float = 0.0

    # --- cumulative I/O, swap, and network counters -------------------
    io_blocks_in: float = 0.0
    io_blocks_out: float = 0.0
    swap_kb_in: float = 0.0
    swap_kb_out: float = 0.0
    net_bytes_in: float = 0.0
    net_bytes_out: float = 0.0
    net_pkts_in: float = 0.0
    net_pkts_out: float = 0.0

    # --- gauges --------------------------------------------------------
    mem_used_kb: float = 0.0
    mem_buffers_kb: float = 0.0
    mem_cached_kb: float = 0.0
    mem_shared_kb: float = 0.0
    swap_used_kb: float = 0.0
    proc_run: int = 0
    proc_total: int = 60  # typical daemon population of an idle Linux VM
    disk_used_gb: float = 4.0
    load: LoadAverages = field(default_factory=LoadAverages)

    # --- wall clock ------------------------------------------------------
    uptime_s: float = 0.0

    def advance_time(self, dt: float, runnable: float) -> None:
        """Advance uptime and load averages by *dt* with *runnable* tasks."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.uptime_s += dt
        self.load.update(runnable, dt)

    def account_cpu(self, user_s: float, system_s: float, wio_s: float, nice_s: float, idle_s: float) -> None:
        """Add one tick's CPU time split (in core-seconds).

        Raises
        ------
        ValueError
            If any component is negative.
        """
        for v, name in (
            (user_s, "user_s"),
            (system_s, "system_s"),
            (wio_s, "wio_s"),
            (nice_s, "nice_s"),
            (idle_s, "idle_s"),
        ):
            if v < 0:
                raise ValueError(f"negative CPU accounting: {name}={v}")
        self.cpu_user_s += user_s
        self.cpu_system_s += system_s
        self.cpu_wio_s += wio_s
        self.cpu_nice_s += nice_s
        self.cpu_idle_s += idle_s

    def account_io(self, blocks_in: float, blocks_out: float) -> None:
        """Add block-device traffic for one tick."""
        if blocks_in < 0 or blocks_out < 0:
            raise ValueError("I/O block counts must be non-negative")
        self.io_blocks_in += blocks_in
        self.io_blocks_out += blocks_out

    def account_swap(self, kb_in: float, kb_out: float) -> None:
        """Add paging traffic for one tick."""
        if kb_in < 0 or kb_out < 0:
            raise ValueError("swap traffic must be non-negative")
        self.swap_kb_in += kb_in
        self.swap_kb_out += kb_out

    def account_net(self, bytes_in: float, bytes_out: float, mtu: float = 1500.0) -> None:
        """Add network traffic for one tick; packet counts follow the MTU."""
        if bytes_in < 0 or bytes_out < 0:
            raise ValueError("network byte counts must be non-negative")
        self.net_bytes_in += bytes_in
        self.net_bytes_out += bytes_out
        self.net_pkts_in += bytes_in / mtu
        self.net_pkts_out += bytes_out / mtu

    def total_cpu_s(self) -> float:
        """Total accounted CPU core-seconds."""
        return (
            self.cpu_user_s
            + self.cpu_system_s
            + self.cpu_idle_s
            + self.cpu_wio_s
            + self.cpu_nice_s
        )

    def copy(self) -> "NodeCounters":
        """Return a deep copy (used by monitors to remember the last sample)."""
        import copy as _copy

        return _copy.deepcopy(self)
