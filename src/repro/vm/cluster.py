"""Cluster: a set of physical hosts, their VMs, and the LAN between them.

The cluster is the root object the simulator and the monitoring substrate
operate on.  It also defines the multicast subnet: every VM's gmond
announces its metrics on the cluster channel, so a profiler listening
anywhere in the cluster sees *all* nodes and must filter for its target —
exactly the data flow the paper describes for Ganglia.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .machine import PhysicalHost, VirtualMachine
from .resources import ResourceCapacity


@dataclass
class Cluster:
    """A collection of physical hosts connected by a non-blocking switch.

    Host NICs are the only network bottleneck (Gigabit Ethernet in the
    paper's testbed); the switch fabric itself is never saturated.
    """

    name: str = "cluster"
    hosts: dict[str, PhysicalHost] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_host(self, name: str, capacity: ResourceCapacity | None = None) -> PhysicalHost:
        """Create and register a physical host.

        Raises
        ------
        ValueError
            If the host name is already taken.
        """
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = PhysicalHost(name=name, capacity=capacity or ResourceCapacity())
        self.hosts[name] = host
        return host

    def create_vm(self, host_name: str, vm_name: str, mem_mb: float = 256.0, vcpus: int = 1) -> VirtualMachine:
        """Create a VM on *host_name*.

        Raises
        ------
        KeyError
            If the host does not exist.
        ValueError
            If the VM name is already used anywhere in the cluster.
        """
        if vm_name in {vm.name for vm in self.iter_vms()}:
            raise ValueError(f"duplicate VM name {vm_name!r}")
        host = self.hosts[host_name]
        vm = VirtualMachine(name=vm_name, mem_mb=mem_mb, vcpus=vcpus)
        return host.attach(vm)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def iter_vms(self) -> Iterator[VirtualMachine]:
        """Iterate over all VMs in the cluster (host order, then VM order)."""
        for host in self.hosts.values():
            yield from host.vms.values()

    def vm(self, name: str) -> VirtualMachine:
        """Return the VM named *name*.

        Raises
        ------
        KeyError
            If no VM with that name exists.
        """
        for vm in self.iter_vms():
            if vm.name == name:
                return vm
        raise KeyError(f"no VM named {name!r} in cluster {self.name!r}")

    def host_of(self, vm_name: str) -> PhysicalHost:
        """Return the physical host of *vm_name*."""
        vm = self.vm(vm_name)
        assert vm.host is not None
        return vm.host

    def vm_names(self) -> list[str]:
        """All VM names in iteration order."""
        return [vm.name for vm in self.iter_vms()]


def paper_testbed(vm1_mem_mb: float = 256.0) -> Cluster:
    """Build the paper's §5.2 testbed.

    Two physical hosts on Gigabit Ethernet:

    * ``host1`` — dual-CPU 1.80 GHz Xeon, 1 GB RAM, hosting ``VM1``.
    * ``host2`` — dual-CPU 2.40 GHz Xeon, 4 GB RAM, hosting ``VM2``–``VM4``.

    All four VMs have 256 MB memory (``vm1_mem_mb`` overrides VM1, used by
    the SPECseis96 B experiment where VM1 has 32 MB).
    """
    cluster = Cluster(name="paper-testbed")
    cluster.add_host(
        "host1",
        ResourceCapacity(cpu_cores=2.0, cpu_mhz=1800.0, mem_mb=1024.0),
    )
    cluster.add_host(
        "host2",
        ResourceCapacity(cpu_cores=2.0, cpu_mhz=2400.0, mem_mb=4096.0),
    )
    cluster.create_vm("host1", "VM1", mem_mb=vm1_mem_mb, vcpus=2)
    for name in ("VM2", "VM3", "VM4"):
        cluster.create_vm("host2", name, mem_mb=256.0, vcpus=2)
    return cluster


def single_vm_cluster(mem_mb: float = 256.0, vm_name: str = "VM1") -> Cluster:
    """A minimal one-host, one-VM cluster for solo profiling runs."""
    cluster = Cluster(name="single-vm")
    cluster.add_host("host1", ResourceCapacity(cpu_cores=2.0, cpu_mhz=1800.0, mem_mb=1024.0))
    cluster.create_vm("host1", vm_name, mem_mb=mem_mb)
    return cluster
