"""Virtual machine substrate: hosts, VMs, counters, and VMPlant cloning.

Simulated replacement for the paper's VMware GSX testbed.  See DESIGN.md
§2 for the substitution rationale.
"""

from .cluster import Cluster, paper_testbed, single_vm_cluster
from .counters import LoadAverages, NodeCounters
from .dag import (
    ConfigAction,
    ConfigDAG,
    VMSpec,
    install_package,
    set_attribute,
    set_memory,
    set_vcpus,
)
from .machine import (
    OS_BASE_MEM_MB,
    MemoryPressure,
    PhysicalHost,
    VirtualMachine,
    paging_burst_multiplier,
)
from .resources import (
    BLOCKS_PER_SWAP_KB,
    ResourceCapacity,
    ResourceDemand,
    ResourceGrant,
)
from .vmplant import CloneRequest, VMPlant

__all__ = [
    "Cluster",
    "paper_testbed",
    "single_vm_cluster",
    "LoadAverages",
    "NodeCounters",
    "ConfigAction",
    "ConfigDAG",
    "VMSpec",
    "install_package",
    "set_attribute",
    "set_memory",
    "set_vcpus",
    "OS_BASE_MEM_MB",
    "MemoryPressure",
    "PhysicalHost",
    "VirtualMachine",
    "paging_burst_multiplier",
    "BLOCKS_PER_SWAP_KB",
    "ResourceCapacity",
    "ResourceDemand",
    "ResourceGrant",
    "CloneRequest",
    "VMPlant",
]
