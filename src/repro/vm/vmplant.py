"""VMPlant service: template registration, cloning, and instantiation.

Problem-solving environments submit requests to VMPlant, which clones an
application-specific virtual machine from a DAG-configured template and
instantiates it on a physical host.  The classifier was designed for VMs
produced this way: each application runs in a dedicated clone, so the VM's
metrics reflect exactly one application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cluster import Cluster
from .dag import ConfigDAG, VMSpec, set_memory
from .machine import VirtualMachine


@dataclass
class CloneRequest:
    """A request to clone a template onto a host.

    Parameters
    ----------
    template:
        Registered template name.
    host:
        Target physical host name.
    vm_name:
        Name for the new VM; auto-generated when ``None``.
    mem_mb:
        Optional memory override (applied after the template DAG, mirroring
        VMPlant's ability to specialize clones per request).
    """

    template: str
    host: str
    vm_name: str | None = None
    mem_mb: float | None = None


@dataclass
class VMPlant:
    """Automated creation and configuration of application-centric VMs."""

    cluster: Cluster
    templates: dict[str, ConfigDAG] = field(default_factory=dict)
    _clone_counter: int = 0

    def register_template(self, name: str, dag: ConfigDAG) -> None:
        """Register a VM template.

        Raises
        ------
        ValueError
            If the name is already registered.
        """
        if name in self.templates:
            raise ValueError(f"template {name!r} already registered")
        self.templates[name] = dag

    def materialize_spec(self, request: CloneRequest) -> VMSpec:
        """Resolve a clone request to a concrete :class:`VMSpec`.

        Raises
        ------
        KeyError
            If the template is unknown.
        """
        try:
            dag = self.templates[request.template]
        except KeyError:
            raise KeyError(
                f"unknown template {request.template!r}; "
                f"registered: {sorted(self.templates)}"
            ) from None
        spec = dag.materialize()
        if request.mem_mb is not None:
            spec = set_memory(request.mem_mb).apply(spec)
        return spec

    def clone(self, request: CloneRequest) -> VirtualMachine:
        """Clone a template and instantiate the VM on the requested host.

        Returns the newly attached :class:`VirtualMachine`.
        """
        spec = self.materialize_spec(request)
        self._clone_counter += 1
        vm_name = request.vm_name or f"{request.template}-clone{self._clone_counter}"
        return self.cluster.create_vm(
            request.host, vm_name, mem_mb=spec.mem_mb, vcpus=spec.vcpus
        )
