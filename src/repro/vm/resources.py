"""Resource capacities, demands, and grants.

The simulator models four *rate* resources that applications consume each
second — CPU cores, disk bandwidth (blocks/s, matching vmstat's bi/bo
units), and network receive/transmit bandwidth (bytes/s) — plus one
*capacity* resource, memory.  Swap traffic is expressed in kB/s (matching
vmstat's si/so) and also consumes disk bandwidth, because paging physically
goes through the block device.

These dataclasses are deliberately plain: the allocation math lives in
:mod:`repro.sim.contention`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Disk blocks per swapped kilobyte (vmstat reports 1 kB blocks on Linux 2.x).
BLOCKS_PER_SWAP_KB: float = 1.0


@dataclass(frozen=True)
class ResourceCapacity:
    """Capacity of a physical host (or of a VM's virtual hardware).

    Parameters
    ----------
    cpu_cores:
        Number of CPU cores (may be fractional for capped VMs).
    cpu_mhz:
        Clock speed, reported as the ``cpu_speed`` metric.
    mem_mb:
        Physical memory in megabytes.
    disk_blocks_per_s:
        Aggregate block-device bandwidth in blocks/second.
    net_bytes_per_s:
        NIC bandwidth in bytes/second (full duplex: applies independently
        to the receive and transmit directions).
    disk_total_gb:
        Disk capacity, reported as the ``disk_total`` metric.
    """

    cpu_cores: float = 2.0
    cpu_mhz: float = 1800.0
    mem_mb: float = 1024.0
    # IDE-era disk: one PostMark instance (~1000 blocks/s) uses most of it,
    # so co-located I/O jobs contend, as in the paper's testbed.
    disk_blocks_per_s: float = 1400.0
    net_bytes_per_s: float = 125_000_000.0  # Gigabit Ethernet
    disk_total_gb: float = 40.0

    def __post_init__(self) -> None:
        for name in ("cpu_cores", "cpu_mhz", "mem_mb", "disk_blocks_per_s", "net_bytes_per_s", "disk_total_gb"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")

    #: Clock speed all CPU demands are expressed against: one demanded
    #: "core" means one fully busy core of a 1.8 GHz reference host.
    REFERENCE_MHZ = 1800.0

    @property
    def reference_cores(self) -> float:
        """CPU capacity in reference-clock core units.

        A 2.4 GHz dual-CPU host provides 2 × 2400/1800 ≈ 2.67 reference
        cores — faster hosts absorb more demand, as in the paper's
        heterogeneous testbed.
        """
        return self.cpu_cores * self.cpu_mhz / self.REFERENCE_MHZ

    def scaled(self, factor: float) -> "ResourceCapacity":
        """Return a capacity with all rate resources scaled by *factor*."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            cpu_cores=self.cpu_cores * factor,
            disk_blocks_per_s=self.disk_blocks_per_s * factor,
            net_bytes_per_s=self.net_bytes_per_s * factor,
        )


@dataclass(frozen=True)
class ResourceDemand:
    """Per-second resource demand of one running application instance.

    All fields are rates at *full-speed* execution; the allocator scales
    actual consumption down when the host is oversubscribed.

    Parameters
    ----------
    cpu_user, cpu_system:
        Cores of user-/system-mode CPU demanded.  A single-threaded
        application demands at most 1.0 total.
    io_bi, io_bo:
        Blocks/second read from / written to the block device
        (application file I/O, excluding paging).
    net_in, net_out:
        Bytes/second received / transmitted.
    swap_in, swap_out:
        Paging traffic in kB/s.  Added by the VM's memory model, not
        usually by workloads directly.
    io_cached:
        *Logical* file I/O (blocks/s) that a healthy OS buffer cache
        absorbs almost entirely; when memory pressure collapses the cache
        (the paper observed it shrink from 200 MB to 1 MB), this traffic
        hits the physical disk instead.  The VM's memory model performs
        the conversion — the allocator never sees this field directly.
    mem_mb:
        Resident working-set size while this demand is active.
    """

    cpu_user: float = 0.0
    cpu_system: float = 0.0
    io_bi: float = 0.0
    io_bo: float = 0.0
    net_in: float = 0.0
    net_out: float = 0.0
    swap_in: float = 0.0
    swap_out: float = 0.0
    io_cached: float = 0.0
    mem_mb: float = 0.0
    #: Memory access locality: 1.0 = random touching of the whole working
    #: set (thrashes when it overflows RAM — Pagebench); lower values =
    #: streaming/sequential access that refaults more gently.  Scales the
    #: pressure-induced swap *rate* only, not the execution slowdown.
    paging_intensity: float = 1.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")
        if self.paging_intensity > 1.0:
            raise ValueError(f"paging_intensity must be in [0, 1], got {self.paging_intensity}")

    # -- aggregate views used by the allocator ------------------------
    @property
    def cpu(self) -> float:
        """Total CPU cores demanded."""
        return self.cpu_user + self.cpu_system

    @property
    def disk(self) -> float:
        """Total block-device bandwidth demanded (blocks/s), incl. paging."""
        return self.io_bi + self.io_bo + (self.swap_in + self.swap_out) * BLOCKS_PER_SWAP_KB

    @property
    def net(self) -> float:
        """Total network bandwidth demanded (bytes/s, both directions)."""
        return self.net_in + self.net_out

    def is_idle(self) -> bool:
        """True when no rate resource is demanded."""
        return self.cpu == 0 and self.disk == 0 and self.net == 0

    def scaled(self, factor: float) -> "ResourceDemand":
        """Return this demand with every rate scaled by *factor* ≥ 0.

        Memory (a capacity, not a rate) is left unchanged.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return ResourceDemand(
            cpu_user=self.cpu_user * factor,
            cpu_system=self.cpu_system * factor,
            io_bi=self.io_bi * factor,
            io_bo=self.io_bo * factor,
            net_in=self.net_in * factor,
            net_out=self.net_out * factor,
            swap_in=self.swap_in * factor,
            swap_out=self.swap_out * factor,
            io_cached=self.io_cached * factor,
            mem_mb=self.mem_mb,
            paging_intensity=self.paging_intensity,
        )

    def plus(self, other: "ResourceDemand") -> "ResourceDemand":
        """Return the field-wise sum of two demands (memory adds too)."""
        return ResourceDemand(
            cpu_user=self.cpu_user + other.cpu_user,
            cpu_system=self.cpu_system + other.cpu_system,
            io_bi=self.io_bi + other.io_bi,
            io_bo=self.io_bo + other.io_bo,
            net_in=self.net_in + other.net_in,
            net_out=self.net_out + other.net_out,
            swap_in=self.swap_in + other.swap_in,
            swap_out=self.swap_out + other.swap_out,
            io_cached=self.io_cached + other.io_cached,
            mem_mb=self.mem_mb + other.mem_mb,
            paging_intensity=max(self.paging_intensity, other.paging_intensity),
        )


@dataclass(frozen=True)
class ResourceGrant:
    """Resources actually granted to one instance for one tick.

    ``fraction`` is the instance's progress rate for the tick: the
    fraction of full-speed execution it achieved (product of the
    bottleneck resource share and the virtualization-interference
    efficiency).  The rate fields record actual consumption, used to
    advance the VM's kernel counters.
    """

    fraction: float
    cpu_user: float = 0.0
    cpu_system: float = 0.0
    io_bi: float = 0.0
    io_bo: float = 0.0
    net_in: float = 0.0
    net_out: float = 0.0
    swap_in: float = 0.0
    swap_out: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"grant fraction must be in [0, 1], got {self.fraction}")
        for name in ("cpu_user", "cpu_system", "io_bi", "io_bo", "net_in", "net_out", "swap_in", "swap_out"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def from_demand(cls, demand: ResourceDemand, fraction: float) -> "ResourceGrant":
        """Grant *demand* scaled by *fraction* (the common proportional case)."""
        return cls(
            fraction=fraction,
            cpu_user=demand.cpu_user * fraction,
            cpu_system=demand.cpu_system * fraction,
            io_bi=demand.io_bi * fraction,
            io_bo=demand.io_bo * fraction,
            net_in=demand.net_in * fraction,
            net_out=demand.net_out * fraction,
            swap_in=demand.swap_in * fraction,
            swap_out=demand.swap_out * fraction,
        )

    @classmethod
    def idle(cls) -> "ResourceGrant":
        """Full-speed grant for an instance that demanded nothing.

        Idle/think phases progress in wall-clock time regardless of host
        load, so their fraction is 1.
        """
        return cls(fraction=1.0)
