"""repro.errors — the typed exception hierarchy of the public API.

Every error the reproduction raises on a *caller* mistake (as opposed to
an internal invariant violation) derives from :class:`ReproError`, so a
downstream adopter can write one ``except ReproError`` around any repro
call.  Each concrete error *also* inherits the ad-hoc builtin type the
pre-1.1 API raised in its place (``RuntimeError``, ``ValueError``,
``KeyError``), so existing ``except RuntimeError`` / ``except KeyError``
clauses keep catching exactly what they caught before — the migration is
purely additive.

Hierarchy::

    ReproError (Exception)
    ├── NotTrainedError        (also RuntimeError)
    ├── EmptySeriesError       (also ValueError)
    ├── UnknownApplicationError (also KeyError)
    ├── UnknownPolicyError     (also ValueError)
    └── ServiceOverloadedError (also RuntimeError)

This module is a dependency leaf: it imports nothing from the rest of
the tree, so every layer of the architecture DAG may raise from it.
"""

from __future__ import annotations

__all__ = [
    "EmptySeriesError",
    "NotTrainedError",
    "ReproError",
    "ServiceOverloadedError",
    "UnknownApplicationError",
    "UnknownPolicyError",
]


class ReproError(Exception):
    """Base class of every caller-facing error raised by ``repro``."""


class NotTrainedError(ReproError, RuntimeError):
    """A classifier was asked to classify (or serve) before training.

    Raised by :meth:`repro.core.pipeline.ApplicationClassifier.classify_series`,
    the online classifier, the batch serving layer, and
    :meth:`repro.manager.service.ResourceManager.ensure_trained` when the
    supplied classifier has no fitted k-NN pool.
    """


class EmptySeriesError(ReproError, ValueError):
    """A snapshot series with zero snapshots reached the classifier.

    The Figure-2 pipeline is defined over ``m >= 1`` snapshots; there is
    no majority vote over nothing.
    """


class UnknownApplicationError(ReproError, KeyError):
    """An application name has no learned runs in the application DB."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument, which garbles prose
        # messages ("\"application 'x' ...\""); show them verbatim.
        return Exception.__str__(self)


class UnknownPolicyError(ReproError, ValueError):
    """A scheduling-policy name is not one the resource manager knows."""


class ServiceOverloadedError(ReproError, RuntimeError):
    """The classification service's bounded queue is full (backpressure).

    Raised by :meth:`repro.serve.service.ClassificationService.submit`
    instead of queueing without bound; callers should retry with backoff
    or shed load upstream.
    """
