"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro list-apps
    python -m repro classify postmark [--seed N] [--mem MB]
    python -m repro table3 [--fast]
    python -m repro table4
    python -m repro fig3
    python -m repro fig4 [--horizon S]
    python -m repro cost [--samples N]
    python -m repro serve bench [--runs N] [--repeats N] [--json]
    python -m repro obs dump [--app KEY] [--format prometheus|json]
    python -m repro obs reset

Every command trains the classifier from scratch (a few seconds) so the
tool is fully self-contained.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from . import obs
from .analysis.clustering import ClusterDiagram
from .analysis.reports import render_bar_chart, render_table3, render_table4
from .experiments.cost import collect_snapshot_pool, measure_cost
from .experiments.fig3 import run_fig3
from .experiments.fig45 import run_fig45
from .experiments.table3 import run_table3
from .experiments.table4 import run_table4
from .experiments.training import build_trained_classifier
from .manager.service import ResourceManager
from .sim.execution import profiled_run
from .workloads.catalog import all_keys, entry, test_entries


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Zhang & Figueiredo (IPDPS 2006): application "
        "classification from resource consumption patterns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list catalog applications")

    p = sub.add_parser("classify", help="profile and classify one application")
    p.add_argument("app", help="catalog key (see list-apps)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--mem", type=float, default=None, help="VM memory override (MB)")
    p.add_argument("--diagram", action="store_true", help="print the PC-space diagram")

    p = sub.add_parser("table3", help="regenerate Table 3 (all 14 test runs)")
    p.add_argument("--fast", action="store_true", help="skip the two long SPECseis runs")

    sub.add_parser("table4", help="regenerate Table 4 (concurrent vs sequential)")
    sub.add_parser("fig3", help="regenerate Figure 3 cluster diagrams")

    p = sub.add_parser("fig4", help="regenerate Figures 4 and 5 (schedule throughput)")
    p.add_argument("--horizon", type=float, default=2400.0)

    p = sub.add_parser("cost", help="regenerate the §5.3 classification-cost study")
    p.add_argument("--samples", type=int, default=8000)

    p = sub.add_parser(
        "validate", help="confusion matrix over randomly generated workloads"
    )
    p.add_argument("--per-class", type=int, default=3)
    p.add_argument("--seed", type=int, default=77)

    p = sub.add_parser("stages", help="stage timeline of one application run")
    p.add_argument("app", help="catalog key (see list-apps)")
    p.add_argument("--mem", type=float, default=None, help="VM memory override (MB)")
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("serve", help="serving layer: benchmark batched classification")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)
    b = serve_sub.add_parser(
        "bench",
        help="time sequential vs batched classification of a synthetic fleet",
    )
    b.add_argument("--runs", type=int, default=64, help="fleet size (profiled runs)")
    b.add_argument("--repeats", type=int, default=30, help="timing passes per arm")
    b.add_argument("--seed", type=int, default=100)
    b.add_argument("--json", action="store_true", help="emit the result as JSON")

    p = sub.add_parser("obs", help="observability: dump or reset the metrics registry")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    d = obs_sub.add_parser(
        "dump",
        help="profile + learn one application with collection on, then dump all metrics",
    )
    d.add_argument("--app", default="postmark", help="catalog key to profile (see list-apps)")
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--mem", type=float, default=None, help="VM memory override (MB)")
    d.add_argument(
        "--format", choices=("prometheus", "json", "trace"), default="prometheus"
    )
    d.add_argument(
        "--no-run",
        action="store_true",
        help="dump whatever the process-local registry already holds, without running",
    )
    obs_sub.add_parser("reset", help="drop every collected metric and span")

    return parser


def _cmd_list_apps() -> int:
    print("catalog keys (training + test):")
    for key in all_keys():
        e = entry(key)
        role = f"training→{e.training_class}" if e.training_class else "test"
        print(f"  {key:22s} {role:15s} {e.expected_behavior}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    try:
        e = entry(args.app)
    except KeyError:
        print(f"error: unknown application {args.app!r}; run `repro list-apps`")
        return 2
    classifier = build_trained_classifier(seed=0).classifier
    mem = args.mem if args.mem is not None else e.vm_mem_mb
    run = profiled_run(e.build(), vm_mem_mb=mem, seed=args.seed)
    result = classifier.classify_series(run.series)
    print(render_table3([(args.app, result)]))
    print(f"\nclass: {result.application_class.name}   category: {result.category}")
    print(f"runtime: {run.duration:.0f} s   samples: {result.num_samples}")
    if args.diagram:
        print()
        print(ClusterDiagram.from_result(result, title=args.app).render_ascii(64, 18))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    classifier = build_trained_classifier(seed=0).classifier
    keys = None
    if args.fast:
        keys = [e.key for e in test_entries() if e.key not in ("specseis96-A", "specseis96-B")]
    outcome = run_table3(classifier, seed=100, keys=keys)
    print(render_table3(outcome.named_results()))
    return 0


def _cmd_table4() -> int:
    outcome = run_table4(seed=300)
    concurrent, sequential = outcome.as_mappings()
    print(render_table4(concurrent, sequential))
    print(f"concurrent finishes both jobs {outcome.speedup_percent:.1f}% sooner")
    return 0


def _cmd_fig3() -> int:
    classifier = build_trained_classifier(seed=0).classifier
    outcome = run_fig3(classifier, seed=200)
    for diagram in outcome.all_diagrams():
        print(diagram.render_ascii(72, 18))
        print()
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    outcome = run_fig45(horizon=args.horizon, seed=400)
    labels = [f"{r.schedule.number:2d} {r.schedule.label()}" for r in outcome.results]
    values = [r.system_jobs_per_day for r in outcome.results]
    print(render_bar_chart(labels, values, width=40, unit=" jobs/day"))
    print(f"\nSPN improvement over weighted average: {outcome.spn_improvement_percent():.2f}%")
    for s in outcome.per_app:
        print(
            f"  {s.code}: min {s.minimum:.0f}  max {s.maximum:.0f}  avg {s.average:.0f}  "
            f"spn {s.spn:.0f} ({s.spn_gain_over_average_percent:+.1f}%)"
        )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    print(f"collecting {args.samples} snapshots of a looping SPECseis96 VM ...")
    pool = collect_snapshot_pool(num_samples=args.samples, seed=500)
    classifier = build_trained_classifier(seed=0).classifier
    cost = measure_cost(classifier, pool)
    print(f"samples:   {cost.num_samples}")
    print(f"filter:    {cost.filter_s * 1000:.1f} ms")
    print(f"PCA/train: {cost.train_s * 1000:.1f} ms")
    print(f"classify:  {cost.classify_s * 1000:.1f} ms")
    print(f"unit cost: {cost.per_sample_ms:.4f} ms/sample (paper: 15 ms/sample)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.validation import validate_workloads
    from .workloads.synth import generate_suite

    suite = generate_suite(per_class=args.per_class, seed=args.seed)
    print(f"validating on {len(suite)} randomly generated workloads ...")
    classifier = build_trained_classifier(seed=0).classifier
    report = validate_workloads(classifier, suite, seed=args.seed + 500)
    print(report.matrix.render())
    print(f"\nrun-level accuracy: {report.matrix.accuracy() * 100:.0f}%")
    for r in report.misclassified():
        print(f"  miss: {r.workload_name} intended {r.truth.name}, got {r.predicted.name}")
    return 0


def _cmd_stages(args: argparse.Namespace) -> int:
    from .analysis.timeline import render_stage_summary, render_timeline
    from .core.stages import find_migration_opportunities, segment_stages

    try:
        e = entry(args.app)
    except KeyError:
        print(f"error: unknown application {args.app!r}; run `repro list-apps`")
        return 2
    classifier = build_trained_classifier(seed=0).classifier
    mem = args.mem if args.mem is not None else e.vm_mem_mb
    run = profiled_run(e.build(), vm_mem_mb=mem, seed=args.seed)
    result = classifier.classify_series(run.series)
    print(render_timeline(result, timestamps=run.series.timestamps))
    print()
    analysis = segment_stages(result, run.series, smoothing_window=3)
    print(render_stage_summary(analysis))
    opportunities = find_migration_opportunities(analysis, min_stage_duration_s=60.0)
    print(f"\nmigration opportunities (≥60 s stages, class change): {len(opportunities)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .experiments.fleet import profile_fleet
    from .manager.service import shared_model_cache
    from .serve.bench import run_throughput_benchmark

    print(f"profiling a fleet of {args.runs} short runs ...")
    series_list = profile_fleet(args.runs, seed=args.seed)
    classifier = shared_model_cache().get(seed=0)
    result = run_throughput_benchmark(classifier, series_list, repeats=args.repeats)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"runs:          {result.num_runs} ({result.num_snapshots} snapshots)")
        print(f"sequential:    {result.sequential_ms:.2f} ms/fleet")
        print(f"batched:       {result.batch_ms:.2f} ms/fleet")
        print(f"speedup:       {result.speedup:.2f}x")
        print(f"bit-identical: {result.bit_identical}")
    return 0 if result.bit_identical else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "reset":
        obs.reset()
        print("observability registry reset")
        return 0
    obs.enable()
    if not args.no_run:
        try:
            e = entry(args.app)
        except KeyError:
            print(f"error: unknown application {args.app!r}; run `repro list-apps`")
            return 2
        manager = ResourceManager(seed=args.seed)
        mem = args.mem if args.mem is not None else e.vm_mem_mb
        manager.profile_and_learn(args.app, e.build(), vm_mem_mb=mem)
    registry = obs.get_registry()
    if args.format == "json":
        print(obs.render_json(registry))
    elif args.format == "trace":
        print(obs.render_trace(registry.spans()))
    else:
        print(obs.render_prometheus(registry), end="")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-apps":
        return _cmd_list_apps()
    if args.command == "classify":
        return _cmd_classify(args)
    if args.command == "table3":
        return _cmd_table3(args)
    if args.command == "table4":
        return _cmd_table4()
    if args.command == "fig3":
        return _cmd_fig3()
    if args.command == "fig4":
        return _cmd_fig4(args)
    if args.command == "cost":
        return _cmd_cost(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "stages":
        return _cmd_stages(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command!r}")
