"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro list-apps
    python -m repro classify postmark [--seed N] [--mem MB]
    python -m repro table3 [--fast]
    python -m repro table4
    python -m repro fig3
    python -m repro fig4 [--horizon S]
    python -m repro cost [--samples N]
    python -m repro serve bench [--runs N] [--repeats N] [--compute-dtype D] [--json]
    python -m repro ingest bench [--nodes N] [--per-node N] [--repeats N] [--json]
    python -m repro obs dump [--app KEY] [--format prometheus|json|trace] [--trace ID]
    python -m repro obs serve [--app KEY] [--port N] [--duration S] [--profile]
    python -m repro obs profile [--app KEY] [--interval S] [--output FILE]
    python -m repro obs top [--app KEY] [--window S]
    python -m repro obs slo [--app KEY]
    python -m repro obs reset

Every command trains the classifier from scratch (a few seconds) so the
tool is fully self-contained.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from . import obs
from .analysis.clustering import ClusterDiagram
from .analysis.reports import render_bar_chart, render_table3, render_table4
from .experiments.cost import collect_snapshot_pool, measure_cost
from .experiments.fig3 import run_fig3
from .experiments.fig45 import run_fig45
from .experiments.table3 import run_table3
from .experiments.table4 import run_table4
from .experiments.training import build_trained_classifier
from .manager.service import ResourceManager
from .sim.execution import profiled_run
from .workloads.catalog import all_keys, entry, test_entries


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Zhang & Figueiredo (IPDPS 2006): application "
        "classification from resource consumption patterns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list catalog applications")

    p = sub.add_parser("classify", help="profile and classify one application")
    p.add_argument("app", help="catalog key (see list-apps)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--mem", type=float, default=None, help="VM memory override (MB)")
    p.add_argument("--diagram", action="store_true", help="print the PC-space diagram")

    p = sub.add_parser("table3", help="regenerate Table 3 (all 14 test runs)")
    p.add_argument("--fast", action="store_true", help="skip the two long SPECseis runs")

    sub.add_parser("table4", help="regenerate Table 4 (concurrent vs sequential)")
    sub.add_parser("fig3", help="regenerate Figure 3 cluster diagrams")

    p = sub.add_parser("fig4", help="regenerate Figures 4 and 5 (schedule throughput)")
    p.add_argument("--horizon", type=float, default=2400.0)

    p = sub.add_parser("cost", help="regenerate the §5.3 classification-cost study")
    p.add_argument("--samples", type=int, default=8000)

    p = sub.add_parser(
        "validate", help="confusion matrix over randomly generated workloads"
    )
    p.add_argument("--per-class", type=int, default=3)
    p.add_argument("--seed", type=int, default=77)

    p = sub.add_parser("stages", help="stage timeline of one application run")
    p.add_argument("app", help="catalog key (see list-apps)")
    p.add_argument("--mem", type=float, default=None, help="VM memory override (MB)")
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("serve", help="serving layer: benchmark batched classification")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)
    b = serve_sub.add_parser(
        "bench",
        help="time sequential vs batched classification of a synthetic fleet",
    )
    b.add_argument("--runs", type=int, default=64, help="fleet size (profiled runs)")
    b.add_argument("--repeats", type=int, default=30, help="timing passes per arm")
    b.add_argument("--seed", type=int, default=100)
    b.add_argument(
        "--compute-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="numeric mode of the benchmarked model (float32 = tolerance mode)",
    )
    b.add_argument("--json", action="store_true", help="emit the result as JSON")

    p = sub.add_parser("ingest", help="streaming ingest plane: benchmark drained batches")
    ingest_sub = p.add_subparsers(dest="ingest_command", required=True)
    b = ingest_sub.add_parser(
        "bench",
        help="time per-announcement vs ingest-plane classification of a synthetic fleet",
    )
    b.add_argument("--nodes", type=int, default=64, help="fleet size (monitored nodes)")
    b.add_argument("--per-node", type=int, default=100, help="announcements per node")
    b.add_argument("--repeats", type=int, default=5, help="timing passes per arm")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument(
        "--compute-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="numeric mode of the benchmarked model (float32 = tolerance mode)",
    )
    b.add_argument("--json", action="store_true", help="emit the result as JSON")

    p = sub.add_parser(
        "obs", help="observability: dump, serve, watch, or reset the telemetry plane"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    def _obs_run_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--app", default="postmark", help="catalog key to profile (see list-apps)"
        )
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--mem", type=float, default=None, help="VM memory override (MB)")
        sp.add_argument(
            "--no-run",
            action="store_true",
            help="use whatever the process-local registry already holds, without running",
        )

    d = obs_sub.add_parser(
        "dump",
        help="profile + learn one application with collection on, then dump all metrics",
    )
    _obs_run_args(d)
    d.add_argument(
        "--format", choices=("prometheus", "json", "trace", "events"), default="prometheus"
    )
    d.add_argument(
        "--output", default=None, help="write the dump to FILE instead of stdout"
    )
    d.add_argument(
        "--trace",
        type=int,
        default=None,
        help="with --format trace: render only this request trace id",
    )

    s = obs_sub.add_parser(
        "serve",
        help="expose /metrics, /healthz, /readyz, /tracez, /eventz over HTTP",
    )
    _obs_run_args(s)
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=0, help="bind port (0 = OS-assigned)")
    s.add_argument(
        "--interval", type=float, default=1.0, help="recorder scrape cadence (seconds)"
    )
    s.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then exit (default: until Ctrl-C)",
    )
    s.add_argument(
        "--profile",
        action="store_true",
        help="run the sampling profiler and expose its stacks on /profilez",
    )

    pf = obs_sub.add_parser(
        "profile",
        help="sample the profiled run with the stdlib profiler; print folded stacks",
    )
    _obs_run_args(pf)
    pf.add_argument(
        "--interval",
        type=float,
        default=None,
        help="sampling interval in seconds (default: REPRO_OBS_PROFILER_INTERVAL or 0.01)",
    )
    pf.add_argument(
        "--output", default=None, help="write the collapsed stacks to FILE instead of stdout"
    )

    t = obs_sub.add_parser("top", help="snapshot table of recorded metric series")
    _obs_run_args(t)
    t.add_argument(
        "--window", type=float, default=3600.0, help="statistics window (seconds)"
    )

    sl = obs_sub.add_parser("slo", help="evaluate the default SLO monitor rules")
    _obs_run_args(sl)

    obs_sub.add_parser("reset", help="drop every collected metric, span, and event")

    return parser


def _cmd_list_apps() -> int:
    print("catalog keys (training + test):")
    for key in all_keys():
        e = entry(key)
        role = f"training→{e.training_class}" if e.training_class else "test"
        print(f"  {key:22s} {role:15s} {e.expected_behavior}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    try:
        e = entry(args.app)
    except KeyError:
        print(f"error: unknown application {args.app!r}; run `repro list-apps`")
        return 2
    classifier = build_trained_classifier(seed=0).classifier
    mem = args.mem if args.mem is not None else e.vm_mem_mb
    run = profiled_run(e.build(), vm_mem_mb=mem, seed=args.seed)
    result = classifier.classify_series(run.series)
    print(render_table3([(args.app, result)]))
    print(f"\nclass: {result.application_class.name}   category: {result.category}")
    print(f"runtime: {run.duration:.0f} s   samples: {result.num_samples}")
    if args.diagram:
        print()
        print(ClusterDiagram.from_result(result, title=args.app).render_ascii(64, 18))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    classifier = build_trained_classifier(seed=0).classifier
    keys = None
    if args.fast:
        keys = [e.key for e in test_entries() if e.key not in ("specseis96-A", "specseis96-B")]
    outcome = run_table3(classifier, seed=100, keys=keys)
    print(render_table3(outcome.named_results()))
    return 0


def _cmd_table4() -> int:
    outcome = run_table4(seed=300)
    concurrent, sequential = outcome.as_mappings()
    print(render_table4(concurrent, sequential))
    print(f"concurrent finishes both jobs {outcome.speedup_percent:.1f}% sooner")
    return 0


def _cmd_fig3() -> int:
    classifier = build_trained_classifier(seed=0).classifier
    outcome = run_fig3(classifier, seed=200)
    for diagram in outcome.all_diagrams():
        print(diagram.render_ascii(72, 18))
        print()
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    outcome = run_fig45(horizon=args.horizon, seed=400)
    labels = [f"{r.schedule.number:2d} {r.schedule.label()}" for r in outcome.results]
    values = [r.system_jobs_per_day for r in outcome.results]
    print(render_bar_chart(labels, values, width=40, unit=" jobs/day"))
    print(f"\nSPN improvement over weighted average: {outcome.spn_improvement_percent():.2f}%")
    for s in outcome.per_app:
        print(
            f"  {s.code}: min {s.minimum:.0f}  max {s.maximum:.0f}  avg {s.average:.0f}  "
            f"spn {s.spn:.0f} ({s.spn_gain_over_average_percent:+.1f}%)"
        )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    print(f"collecting {args.samples} snapshots of a looping SPECseis96 VM ...")
    pool = collect_snapshot_pool(num_samples=args.samples, seed=500)
    classifier = build_trained_classifier(seed=0).classifier
    cost = measure_cost(classifier, pool)
    print(f"samples:   {cost.num_samples}")
    print(f"filter:    {cost.filter_s * 1000:.1f} ms")
    print(f"PCA/train: {cost.train_s * 1000:.1f} ms")
    print(f"classify:  {cost.classify_s * 1000:.1f} ms")
    print(f"unit cost: {cost.per_sample_ms:.4f} ms/sample (paper: 15 ms/sample)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.validation import validate_workloads
    from .workloads.synth import generate_suite

    suite = generate_suite(per_class=args.per_class, seed=args.seed)
    print(f"validating on {len(suite)} randomly generated workloads ...")
    classifier = build_trained_classifier(seed=0).classifier
    report = validate_workloads(classifier, suite, seed=args.seed + 500)
    print(report.matrix.render())
    print(f"\nrun-level accuracy: {report.matrix.accuracy() * 100:.0f}%")
    for r in report.misclassified():
        print(f"  miss: {r.workload_name} intended {r.truth.name}, got {r.predicted.name}")
    return 0


def _cmd_stages(args: argparse.Namespace) -> int:
    from .analysis.timeline import render_stage_summary, render_timeline
    from .core.stages import find_migration_opportunities, segment_stages

    try:
        e = entry(args.app)
    except KeyError:
        print(f"error: unknown application {args.app!r}; run `repro list-apps`")
        return 2
    classifier = build_trained_classifier(seed=0).classifier
    mem = args.mem if args.mem is not None else e.vm_mem_mb
    run = profiled_run(e.build(), vm_mem_mb=mem, seed=args.seed)
    result = classifier.classify_series(run.series)
    print(render_timeline(result, timestamps=run.series.timestamps))
    print()
    analysis = segment_stages(result, run.series, smoothing_window=3)
    print(render_stage_summary(analysis))
    opportunities = find_migration_opportunities(analysis, min_stage_duration_s=60.0)
    print(f"\nmigration opportunities (≥60 s stages, class change): {len(opportunities)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .core.config import ClassifierConfig
    from .experiments.fleet import profile_fleet
    from .manager.service import shared_model_cache
    from .serve.bench import run_throughput_benchmark

    print(f"profiling a fleet of {args.runs} short runs ...")
    series_list = profile_fleet(args.runs, seed=args.seed)
    config = ClassifierConfig(compute_dtype=args.compute_dtype)
    classifier = shared_model_cache().get(config, seed=0)
    result = run_throughput_benchmark(classifier, series_list, repeats=args.repeats)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"runs:          {result.num_runs} ({result.num_snapshots} snapshots)")
        print(f"compute dtype: {args.compute_dtype}")
        print(f"sequential:    {result.sequential_ms:.2f} ms/fleet")
        print(f"batched:       {result.batch_ms:.2f} ms/fleet")
        print(f"speedup:       {result.speedup:.2f}x")
        print(f"bit-identical: {result.bit_identical}")
    return 0 if result.bit_identical else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from .core.config import ClassifierConfig
    from .manager.service import shared_model_cache
    from .serve.stream import run_ingest_benchmark

    total = args.nodes * args.per_node
    print(f"streaming {total} announcements from {args.nodes} synthetic nodes ...")
    config = ClassifierConfig(compute_dtype=args.compute_dtype)
    classifier = shared_model_cache().get(config, seed=0)
    result = run_ingest_benchmark(
        classifier,
        num_nodes=args.nodes,
        per_node=args.per_node,
        repeats=args.repeats,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"announcements:    {result.num_announcements} ({result.num_nodes} nodes)")
        print(f"compute dtype:    {args.compute_dtype}")
        print(f"per-announcement: {result.per_announcement_ms:.2f} ms/fleet "
              f"({result.per_announcement_rate:,.0f}/s)")
        print(f"ingest plane:     {result.ingest_ms:.2f} ms/fleet "
              f"({result.ingest_rate:,.0f}/s, {result.drains} drains)")
        print(f"speedup:          {result.speedup:.2f}x")
        print(f"bit-identical:    {result.bit_identical}")
    return 0 if result.bit_identical else 1


def _obs_profile(args: argparse.Namespace) -> int:
    """Profile + learn the requested app with collection on; 0 on success.

    The run is wrapped in a request trace so its spans carry a trace id
    (exemplars in ``/metrics.json``, filterable via ``--trace``).
    """
    try:
        e = entry(args.app)
    except KeyError:
        print(f"error: unknown application {args.app!r}; run `repro list-apps`")
        return 2
    manager = ResourceManager(seed=args.seed)
    mem = args.mem if args.mem is not None else e.vm_mem_mb
    registry = obs.get_registry()
    ctx = registry.start_trace("cli.profile", mark="cli.begin")
    with obs.span("cli.profile_and_learn", parent=ctx):
        manager.profile_and_learn(args.app, e.build(), vm_mem_mb=mem)
    if ctx:
        registry.finish_trace(ctx, registry.clock())
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    registry = obs.get_registry()
    if args.format == "json":
        text = obs.render_json(registry) + "\n"
    elif args.format == "trace":
        rendered = obs.render_trace(registry.spans(), trace_id=args.trace)
        text = rendered + "\n" if rendered else ""
    elif args.format == "events":
        text = obs.render_events_jsonl(registry.events())
    else:
        text = obs.render_prometheus(registry)
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(text)} bytes to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_serve(
    args: argparse.Namespace, profiler: "obs.SamplingProfiler | None" = None
) -> int:
    import threading

    registry = obs.get_registry()
    recorder = obs.MetricsRecorder(registry, interval_s=args.interval)
    recorder.sample()
    server = obs.TelemetryServer(
        recorder=recorder, host=args.host, port=args.port, profiler=profiler
    ).start()
    recorder.start()
    print(f"serving telemetry on {server.url}", flush=True)
    endpoints = "endpoints: /metrics /metrics.json /healthz /readyz /tracez /eventz"
    if profiler is not None:
        endpoints += " /profilez"
    print(endpoints, flush=True)
    try:
        if args.duration is not None:
            threading.Event().wait(args.duration)
        else:
            while True:
                threading.Event().wait(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        recorder.stop()
        server.stop()
        if profiler is not None:
            profiler.stop()
    print("telemetry server stopped")
    return 0


def _cmd_obs_profile_verb(args: argparse.Namespace) -> int:
    """Run the profiled workload under the sampling profiler."""
    profiler = obs.SamplingProfiler(interval_s=args.interval)
    profiler.start()
    try:
        if not args.no_run:
            status = _obs_profile(args)
            if status != 0:
                return status
    finally:
        profiler.stop()
    text = profiler.render_collapsed()
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {profiler.samples} samples to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_top(args: argparse.Namespace, recorder: "obs.MetricsRecorder") -> int:
    recorder.sample()
    print(obs.render_top(recorder, window_s=args.window))
    return 0


def _cmd_obs_slo(args: argparse.Namespace, recorder: "obs.MetricsRecorder") -> int:
    from repro.obs.slo import render_results, worst

    recorder.sample()
    results = obs.evaluate(obs.default_rules(), recorder)
    print(render_results(results))
    return 1 if worst(results) is obs.Verdict.PAGE else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "reset":
        obs.reset()
        print("observability registry reset")
        return 0
    obs.enable()
    if args.obs_command == "profile":
        # The profiler must be live *during* the run, so this verb
        # handles --no-run itself instead of the shared path below.
        return _cmd_obs_profile_verb(args)
    # With `serve --profile` the sampler likewise starts ahead of the
    # profiled run, so /profilez already holds the run's stacks.
    profiler = None
    if args.obs_command == "serve" and args.profile:
        profiler = obs.SamplingProfiler()
        profiler.start()
    # top/slo bracket the profiled run with two scrapes so windowed
    # rates cover the run itself.
    recorder = None
    if args.obs_command in ("top", "slo"):
        recorder = obs.MetricsRecorder(obs.get_registry())
        recorder.sample()
    if not args.no_run:
        status = _obs_profile(args)
        if status != 0:
            if profiler is not None:
                profiler.stop()
            return status
    if args.obs_command == "dump":
        return _cmd_obs_dump(args)
    if args.obs_command == "serve":
        return _cmd_obs_serve(args, profiler)
    if args.obs_command == "top":
        assert recorder is not None
        return _cmd_obs_top(args, recorder)
    if args.obs_command == "slo":
        assert recorder is not None
        return _cmd_obs_slo(args, recorder)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-apps":
        return _cmd_list_apps()
    if args.command == "classify":
        return _cmd_classify(args)
    if args.command == "table3":
        return _cmd_table3(args)
    if args.command == "table4":
        return _cmd_table4()
    if args.command == "fig3":
        return _cmd_fig3()
    if args.command == "fig4":
        return _cmd_fig4(args)
    if args.command == "cost":
        return _cmd_cost(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "stages":
        return _cmd_stages(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command!r}")
