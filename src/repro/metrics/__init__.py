"""Performance metric catalog, snapshots, and snapshot series.

This subpackage defines the data model that flows from the monitoring
substrate into the classification center: the 33-metric catalog
(29 Ganglia defaults + 4 vmstat extras), single-instant
:class:`~repro.metrics.snapshot.Snapshot` vectors, and per-run
:class:`~repro.metrics.series.SnapshotSeries` matrices (the paper's
``A(n×m)`` data pool).
"""

from .catalog import (
    ALL_METRIC_NAMES,
    ALL_METRICS,
    EXPERT_METRIC_NAMES,
    EXPERT_METRIC_PAIRS,
    GANGLIA_DEFAULT_METRICS,
    NUM_EXPERT_METRICS,
    NUM_METRICS,
    VMSTAT_EXTENSION_METRICS,
    MetricGroup,
    MetricKind,
    MetricSpec,
    metric_index,
    metric_indices,
    metric_spec,
    metrics_in_group,
    validate_metric_names,
)
from .csv_io import series_from_csv, series_to_csv
from .series import SnapshotSeries, merge_feature_matrices
from .snapshot import Snapshot

__all__ = [
    "ALL_METRIC_NAMES",
    "ALL_METRICS",
    "EXPERT_METRIC_NAMES",
    "EXPERT_METRIC_PAIRS",
    "GANGLIA_DEFAULT_METRICS",
    "NUM_EXPERT_METRICS",
    "NUM_METRICS",
    "VMSTAT_EXTENSION_METRICS",
    "MetricGroup",
    "MetricKind",
    "MetricSpec",
    "metric_index",
    "metric_indices",
    "metric_spec",
    "metrics_in_group",
    "validate_metric_names",
    "Snapshot",
    "series_from_csv",
    "series_to_csv",
    "SnapshotSeries",
    "merge_feature_matrices",
]
