"""Performance metric catalog.

The paper's monitoring substrate collects ``n = 33`` metrics per snapshot:
the 29 default numeric metrics published by a Ganglia ``gmond`` daemon plus
4 metrics the authors added from ``vmstat`` (I/O blocks in/out, swap
kilobytes in/out).  The expert-knowledge preprocessing step (paper Table 1)
then selects ``p = 8`` of them — four pairs, each pair correlated with one
application class:

=====================  =======================================
pair                   correlated class
=====================  =======================================
cpu_system / cpu_user  CPU-intensive
bytes_in / bytes_out   Network-intensive
io_bi / io_bo          IO-intensive
swap_in / swap_out     Memory (paging)-intensive
=====================  =======================================

This module is the single source of truth for metric names, ordering and
units.  Snapshot vectors everywhere in the library are indexed by the order
of :data:`ALL_METRICS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence


class MetricKind(Enum):
    """How a metric value is produced from the underlying node state."""

    #: Instantaneous value read directly (e.g. free memory, load average).
    GAUGE = "gauge"
    #: Per-second rate derived from a cumulative kernel counter over the
    #: sampling window (e.g. bytes_in, io_bi, swap_out).
    RATE = "rate"
    #: Constant for the lifetime of the node (e.g. cpu_num, mem_total).
    CONSTANT = "constant"


class MetricGroup(Enum):
    """Ganglia-style metric grouping used for display and filtering."""

    CPU = "cpu"
    MEMORY = "memory"
    DISK = "disk"
    NETWORK = "network"
    LOAD = "load"
    PROCESS = "process"
    SYSTEM = "system"


@dataclass(frozen=True)
class MetricSpec:
    """Description of a single performance metric.

    Parameters
    ----------
    name:
        Canonical metric name (Ganglia naming convention).
    unit:
        Human-readable unit, e.g. ``"%"``, ``"bytes/sec"``, ``"kB/s"``.
    kind:
        How the value is derived (:class:`MetricKind`).
    group:
        Display/filtering group (:class:`MetricGroup`).
    description:
        One-line documentation string.
    """

    name: str
    unit: str
    kind: MetricKind
    group: MetricGroup
    description: str


def _m(name: str, unit: str, kind: MetricKind, group: MetricGroup, desc: str) -> MetricSpec:
    return MetricSpec(name=name, unit=unit, kind=kind, group=group, description=desc)


#: The 29 default numeric metrics monitored by Ganglia's gmond.
GANGLIA_DEFAULT_METRICS: tuple[MetricSpec, ...] = (
    _m("cpu_user", "%", MetricKind.RATE, MetricGroup.CPU, "Percent CPU time in user mode"),
    _m("cpu_system", "%", MetricKind.RATE, MetricGroup.CPU, "Percent CPU time in system mode"),
    _m("cpu_idle", "%", MetricKind.RATE, MetricGroup.CPU, "Percent CPU time idle"),
    _m("cpu_nice", "%", MetricKind.RATE, MetricGroup.CPU, "Percent CPU time at nice priority"),
    _m("cpu_wio", "%", MetricKind.RATE, MetricGroup.CPU, "Percent CPU time waiting on I/O"),
    _m("cpu_aidle", "%", MetricKind.GAUGE, MetricGroup.CPU, "Percent CPU idle since boot"),
    _m("cpu_num", "CPUs", MetricKind.CONSTANT, MetricGroup.CPU, "Number of CPUs"),
    _m("cpu_speed", "MHz", MetricKind.CONSTANT, MetricGroup.CPU, "CPU clock speed"),
    _m("load_one", "", MetricKind.GAUGE, MetricGroup.LOAD, "One-minute load average"),
    _m("load_five", "", MetricKind.GAUGE, MetricGroup.LOAD, "Five-minute load average"),
    _m("load_fifteen", "", MetricKind.GAUGE, MetricGroup.LOAD, "Fifteen-minute load average"),
    _m("proc_run", "procs", MetricKind.GAUGE, MetricGroup.PROCESS, "Number of running processes"),
    _m("proc_total", "procs", MetricKind.GAUGE, MetricGroup.PROCESS, "Total number of processes"),
    _m("mem_free", "kB", MetricKind.GAUGE, MetricGroup.MEMORY, "Free memory"),
    _m("mem_shared", "kB", MetricKind.GAUGE, MetricGroup.MEMORY, "Shared memory"),
    _m("mem_buffers", "kB", MetricKind.GAUGE, MetricGroup.MEMORY, "Memory used for buffers"),
    _m("mem_cached", "kB", MetricKind.GAUGE, MetricGroup.MEMORY, "Memory used for page cache"),
    _m("mem_total", "kB", MetricKind.CONSTANT, MetricGroup.MEMORY, "Total memory"),
    _m("swap_free", "kB", MetricKind.GAUGE, MetricGroup.MEMORY, "Free swap space"),
    _m("swap_total", "kB", MetricKind.CONSTANT, MetricGroup.MEMORY, "Total swap space"),
    _m("bytes_in", "bytes/sec", MetricKind.RATE, MetricGroup.NETWORK, "Bytes per second into the network interface"),
    _m("bytes_out", "bytes/sec", MetricKind.RATE, MetricGroup.NETWORK, "Bytes per second out of the network interface"),
    _m("pkts_in", "packets/sec", MetricKind.RATE, MetricGroup.NETWORK, "Packets received per second"),
    _m("pkts_out", "packets/sec", MetricKind.RATE, MetricGroup.NETWORK, "Packets sent per second"),
    _m("disk_total", "GB", MetricKind.CONSTANT, MetricGroup.DISK, "Total disk capacity"),
    _m("disk_free", "GB", MetricKind.GAUGE, MetricGroup.DISK, "Free disk capacity"),
    _m("part_max_used", "%", MetricKind.GAUGE, MetricGroup.DISK, "Max percent used across partitions"),
    _m("boottime", "s", MetricKind.CONSTANT, MetricGroup.SYSTEM, "Epoch time of last boot"),
    _m("sys_clock", "s", MetricKind.GAUGE, MetricGroup.SYSTEM, "Current system clock"),
)

#: The 4 metrics the paper's authors added from vmstat output.
VMSTAT_EXTENSION_METRICS: tuple[MetricSpec, ...] = (
    _m("io_bi", "blocks/sec", MetricKind.RATE, MetricGroup.DISK, "Blocks per second received from a block device"),
    _m("io_bo", "blocks/sec", MetricKind.RATE, MetricGroup.DISK, "Blocks per second sent to a block device"),
    _m("swap_in", "kB/s", MetricKind.RATE, MetricGroup.MEMORY, "Kilobytes per second of memory swapped in from disk"),
    _m("swap_out", "kB/s", MetricKind.RATE, MetricGroup.MEMORY, "Kilobytes per second of memory swapped out to disk"),
)

#: All ``n = 33`` metrics, in canonical snapshot-vector order.
ALL_METRICS: tuple[MetricSpec, ...] = GANGLIA_DEFAULT_METRICS + VMSTAT_EXTENSION_METRICS

#: Canonical metric names, in snapshot-vector order.
ALL_METRIC_NAMES: tuple[str, ...] = tuple(spec.name for spec in ALL_METRICS)

#: The ``p = 8`` expert-selected metrics of paper Table 1, in the order the
#: preprocessing step extracts them.
EXPERT_METRIC_NAMES: tuple[str, ...] = (
    "cpu_system",
    "cpu_user",
    "bytes_in",
    "bytes_out",
    "io_bi",
    "io_bo",
    "swap_in",
    "swap_out",
)

#: Expert metric pairs and the application class each pair correlates with
#: (paper Table 1 / §4.2.1).
EXPERT_METRIC_PAIRS: tuple[tuple[tuple[str, str], str], ...] = (
    (("cpu_system", "cpu_user"), "CPU"),
    (("bytes_in", "bytes_out"), "NET"),
    (("io_bi", "io_bo"), "IO"),
    (("swap_in", "swap_out"), "MEM"),
)

_NAME_TO_INDEX: dict[str, int] = {name: i for i, name in enumerate(ALL_METRIC_NAMES)}
_NAME_TO_SPEC: dict[str, MetricSpec] = {spec.name: spec for spec in ALL_METRICS}


def metric_index(name: str) -> int:
    """Return the canonical snapshot-vector index of metric *name*.

    Raises
    ------
    KeyError
        If *name* is not one of the 33 catalog metrics.
    """
    try:
        return _NAME_TO_INDEX[name]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}; known metrics: {ALL_METRIC_NAMES}") from None


def metric_indices(names: Iterable[str]) -> list[int]:
    """Return canonical indices for a sequence of metric names (in order)."""
    return [metric_index(n) for n in names]


def metric_spec(name: str) -> MetricSpec:
    """Return the :class:`MetricSpec` for *name*.

    Raises
    ------
    KeyError
        If *name* is not a catalog metric.
    """
    try:
        return _NAME_TO_SPEC[name]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}") from None


def metrics_in_group(group: MetricGroup) -> tuple[MetricSpec, ...]:
    """Return all catalog metrics belonging to *group*."""
    return tuple(spec for spec in ALL_METRICS if spec.group is group)


def validate_metric_names(names: Sequence[str]) -> None:
    """Validate that *names* are distinct catalog metrics.

    Raises
    ------
    KeyError
        If any name is unknown.
    ValueError
        If names repeat.
    """
    for n in names:
        metric_index(n)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate metric names in {list(names)!r}")


NUM_METRICS: int = len(ALL_METRICS)
NUM_EXPERT_METRICS: int = len(EXPERT_METRIC_NAMES)

assert NUM_METRICS == 33, "paper requires n = 33 metrics"
assert NUM_EXPERT_METRICS == 8, "paper requires p = 8 expert metrics"
