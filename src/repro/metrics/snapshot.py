"""Snapshot of a node's performance metrics at one sampling instant.

A :class:`Snapshot` is one column ``a_i`` of the paper's data pool matrix
``A(n×m)``: the values of all 33 catalog metrics for one node at one time.
Snapshots are produced by the monitoring substrate
(:mod:`repro.monitoring.gmond`) and consumed, in bulk, as a
:class:`repro.metrics.series.SnapshotSeries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .catalog import ALL_METRIC_NAMES, NUM_METRICS, metric_index


@dataclass(frozen=True)
class Snapshot:
    """One performance snapshot of one node.

    Parameters
    ----------
    node:
        Identifier of the (virtual) machine the snapshot describes —
        the paper's ``VMIP``.
    timestamp:
        Simulation time in seconds at which the snapshot was taken.
    values:
        Length-33 float vector in :data:`repro.metrics.catalog.ALL_METRICS`
        order.  Stored read-only.
    """

    node: str
    timestamp: float
    values: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.shape != (NUM_METRICS,):
            raise ValueError(
                f"snapshot values must have shape ({NUM_METRICS},), got {values.shape}"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError("snapshot values must be finite")
        values = values.copy()
        values.setflags(write=False)
        object.__setattr__(self, "values", values)

    def __getitem__(self, metric_name: str) -> float:
        """Return the value of *metric_name* in this snapshot."""
        return float(self.values[metric_index(metric_name)])

    def as_dict(self) -> dict[str, float]:
        """Return ``{metric_name: value}`` for all 33 metrics."""
        return dict(zip(ALL_METRIC_NAMES, map(float, self.values)))

    @classmethod
    def from_mapping(
        cls, node: str, timestamp: float, values: Mapping[str, float], default: float = 0.0
    ) -> "Snapshot":
        """Build a snapshot from a (possibly partial) name→value mapping.

        Metrics absent from *values* are filled with *default*.  Unknown
        metric names raise :class:`KeyError`.
        """
        vec = np.full(NUM_METRICS, float(default), dtype=np.float64)
        for name, value in values.items():
            vec[metric_index(name)] = float(value)
        return cls(node=node, timestamp=float(timestamp), values=vec)

    def select(self, names: list[str] | tuple[str, ...]) -> np.ndarray:
        """Return the values of *names* as a new vector, in the given order."""
        idx = [metric_index(n) for n in names]
        return self.values[idx].copy()
