"""Snapshot series — the paper's performance data pool ``A(n×m)``.

The profiler produces, for one application run, a matrix with one column
per snapshot and one row per metric (``n = 33`` rows, ``m = (t1−t0)/d``
columns).  :class:`SnapshotSeries` wraps that matrix together with the node
identity and snapshot timestamps, and provides the selection operations the
preprocessing stage needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .catalog import ALL_METRIC_NAMES, NUM_METRICS, metric_indices, validate_metric_names
from .snapshot import Snapshot


@dataclass
class SnapshotSeries:
    """A time-ordered series of snapshots for one node.

    Parameters
    ----------
    node:
        Node identifier (the paper's ``VMIP``).
    timestamps:
        Length-``m`` array of snapshot times (seconds, strictly increasing).
    matrix:
        ``(n, m)`` array, rows in catalog metric order — the paper's
        ``A(n×m)``.
    """

    node: str
    timestamps: np.ndarray
    matrix: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.timestamps.ndim != 1:
            raise ValueError("timestamps must be one-dimensional")
        if self.matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional (n_metrics, n_snapshots)")
        if self.matrix.shape[0] != NUM_METRICS:
            raise ValueError(
                f"matrix must have {NUM_METRICS} rows (one per catalog metric), "
                f"got {self.matrix.shape[0]}"
            )
        if self.matrix.shape[1] != self.timestamps.shape[0]:
            raise ValueError(
                f"matrix has {self.matrix.shape[1]} columns but "
                f"{self.timestamps.shape[0]} timestamps were given"
            )
        if self.timestamps.size > 1 and not np.all(np.diff(self.timestamps) > 0):
            raise ValueError("timestamps must be strictly increasing")
        if not np.all(np.isfinite(self.matrix)):
            raise ValueError("metric matrix must be finite")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshots(cls, snapshots: Sequence[Snapshot]) -> "SnapshotSeries":
        """Assemble a series from individual snapshots of a single node.

        Raises
        ------
        ValueError
            If the sequence is empty or mixes nodes.
        """
        if not snapshots:
            raise ValueError("cannot build a series from zero snapshots")
        nodes = {s.node for s in snapshots}
        if len(nodes) != 1:
            raise ValueError(f"snapshots mix multiple nodes: {sorted(nodes)}")
        ordered = sorted(snapshots, key=lambda s: s.timestamp)
        matrix = np.stack([s.values for s in ordered], axis=1)
        timestamps = np.array([s.timestamp for s in ordered], dtype=np.float64)
        return cls(node=ordered[0].node, timestamps=timestamps, matrix=matrix)

    @classmethod
    def empty(cls, node: str) -> "SnapshotSeries":
        """Return an empty series for *node* (``m = 0``)."""
        return cls(
            node=node,
            timestamps=np.empty(0, dtype=np.float64),
            matrix=np.empty((NUM_METRICS, 0), dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of snapshots ``m``."""
        return int(self.matrix.shape[1])

    def __iter__(self) -> Iterator[Snapshot]:
        for j in range(len(self)):
            yield self.snapshot(j)

    def snapshot(self, j: int) -> Snapshot:
        """Return snapshot *j* (supports negative indices)."""
        m = len(self)
        if j < 0:
            j += m
        if not 0 <= j < m:
            raise IndexError(f"snapshot index {j} out of range for series of length {m}")
        return Snapshot(
            node=self.node, timestamp=float(self.timestamps[j]), values=self.matrix[:, j]
        )

    # ------------------------------------------------------------------
    # views used by the classification pipeline
    # ------------------------------------------------------------------
    def select_metrics(self, names: Sequence[str]) -> np.ndarray:
        """Return the ``(p, m)`` sub-matrix of the named metrics, in order.

        This is the expert-knowledge extraction step ``A(n×m) → A'(p×m)``
        of paper Figure 2 (before normalization).
        """
        validate_metric_names(names)
        return self.matrix[metric_indices(names), :].copy()

    def metric(self, name: str) -> np.ndarray:
        """Return the length-``m`` time series of one metric."""
        return self.select_metrics([name])[0]

    def feature_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Return snapshots as rows: an ``(m, p)`` feature matrix.

        Classifiers in :mod:`repro.core` use the samples-as-rows layout;
        this transposes the paper's metrics-as-rows convention.
        """
        if names is None:
            return self.matrix.T.copy()
        return self.select_metrics(names).T

    # ------------------------------------------------------------------
    # slicing / combination
    # ------------------------------------------------------------------
    def window(self, t0: float, t1: float) -> "SnapshotSeries":
        """Return the sub-series with ``t0 <= timestamp <= t1``."""
        if t1 < t0:
            raise ValueError(f"window end {t1} precedes start {t0}")
        mask = (self.timestamps >= t0) & (self.timestamps <= t1)
        return SnapshotSeries(
            node=self.node, timestamps=self.timestamps[mask], matrix=self.matrix[:, mask]
        )

    def concat(self, other: "SnapshotSeries") -> "SnapshotSeries":
        """Concatenate with a later series of the same node."""
        if other.node != self.node:
            raise ValueError(f"cannot concat series of {self.node!r} and {other.node!r}")
        if len(self) and len(other) and other.timestamps[0] <= self.timestamps[-1]:
            raise ValueError("second series must start after the first ends")
        return SnapshotSeries(
            node=self.node,
            timestamps=np.concatenate([self.timestamps, other.timestamps]),
            matrix=np.concatenate([self.matrix, other.matrix], axis=1),
        )

    def duration(self) -> float:
        """Return ``t1 − t0`` covered by the series (0 for < 2 snapshots)."""
        if len(self) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def sampling_interval(self) -> float:
        """Return the median inter-snapshot interval ``d`` (0 if < 2)."""
        if len(self) < 2:
            return 0.0
        return float(np.median(np.diff(self.timestamps)))

    def summary(self) -> dict[str, dict[str, float]]:
        """Return per-metric ``{mean, std, min, max}`` statistics."""
        out: dict[str, dict[str, float]] = {}
        if len(self) == 0:
            return {name: dict(mean=0.0, std=0.0, min=0.0, max=0.0) for name in ALL_METRIC_NAMES}
        for i, name in enumerate(ALL_METRIC_NAMES):
            row = self.matrix[i]
            out[name] = dict(
                mean=float(row.mean()),
                std=float(row.std()),
                min=float(row.min()),
                max=float(row.max()),
            )
        return out


def merge_feature_matrices(series_list: Iterable[SnapshotSeries], names: Sequence[str]) -> np.ndarray:
    """Stack the named-metric feature matrices of several series row-wise.

    Convenience used to pool training runs: returns an ``(Σ m_i, p)``
    matrix.
    """
    mats = [s.feature_matrix(names) for s in series_list]
    if not mats:
        raise ValueError("no series given")
    return np.vstack(mats)
