"""CSV import/export of snapshot series.

The export side (:func:`repro.analysis.export.export_series_metrics`)
writes selected metrics; this module reads such files — or CSVs collected
on *real* machines with a few lines of shell around vmstat and
/proc/net/dev — back into :class:`~repro.metrics.series.SnapshotSeries`,
so the classifier and the trace-replay reconstruction can run on data
that never touched the simulator.

Expected format: a header row ``timestamp,<metric>,...`` with catalog
metric names, then one row per sampling instant.  Metrics absent from
the file default to zero.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .catalog import NUM_METRICS, metric_index
from .series import SnapshotSeries


def series_from_csv(path: str | Path, node: str = "imported") -> SnapshotSeries:
    """Read a metric-trace CSV into a snapshot series.

    Parameters
    ----------
    path:
        CSV file with a ``timestamp`` column plus catalog metric columns.
    node:
        Node name to attribute the series to.

    Raises
    ------
    ValueError
        On a missing/malformed header, unknown metric columns, empty
        body, or non-increasing timestamps.
    FileNotFoundError
        If the file does not exist.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if not header or header[0].strip() != "timestamp":
            raise ValueError(
                f"{path}: first column must be 'timestamp', got {header[:1]!r}"
            )
        metric_names = [h.strip() for h in header[1:]]
        if not metric_names:
            raise ValueError(f"{path}: no metric columns")
        indices = [metric_index(name) for name in metric_names]  # KeyError → unknown

        timestamps: list[float] = []
        columns: list[np.ndarray] = []
        for line_no, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} cells, got {len(row)}"
                )
            try:
                timestamps.append(float(row[0]))
                values = np.zeros(NUM_METRICS)
                for idx, cell in zip(indices, row[1:]):
                    values[idx] = float(cell)
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from None
            columns.append(values)

    if not columns:
        raise ValueError(f"{path}: no data rows")
    return SnapshotSeries(
        node=node,
        timestamps=np.asarray(timestamps),
        matrix=np.stack(columns, axis=1),
    )


def series_to_csv(series: SnapshotSeries, path: str | Path, metric_names: list[str] | None = None) -> Path:
    """Write a series (all 33 metrics by default) as a trace CSV.

    The inverse of :func:`series_from_csv`: a ``timestamp`` header column
    followed by one column per metric, one row per sampling instant.
    ``repro.analysis.export.export_series_metrics`` delegates here so the
    writer and the reader stay in one module (and ``metrics`` keeps no
    import edge up into ``analysis``).
    """
    from .catalog import ALL_METRIC_NAMES

    names = metric_names if metric_names is not None else list(ALL_METRIC_NAMES)
    path = Path(path)
    sub = series.select_metrics(list(names))
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp"] + list(names))
        for j in range(len(series)):
            writer.writerow(
                [f"{series.timestamps[j]:.1f}"] + [f"{sub[i, j]:.6f}" for i in range(len(names))]
            )
    return path
