"""Finding and severity types shared by every QA rule.

A :class:`Finding` is one rule violation anchored to a ``file:line``
location.  Findings carry the offending source line so the baseline can
fingerprint them stably: a finding keeps matching its baseline entry
when unrelated edits shift it to a different line number.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail every run; ``WARNING`` findings fail only
    ``--strict`` runs (the tier-1 gate runs strict, so in practice both
    must stay at zero outside the baseline).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    col: int = 0
    source_line: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Stable identity used for baseline matching.

        Hashes the rule id, the file path, and the *content* of the
        offending line (not its number), so baselined findings survive
        unrelated edits elsewhere in the file.
        """
        digest = hashlib.sha256(self.source_line.strip().encode("utf-8")).hexdigest()[:12]
        return f"{self.rule_id}:{self.path}:{digest}"

    def render(self) -> str:
        """One-line ``path:line:col: severity [rule-id] message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.severity} [{self.rule_id}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (used by ``--format json``)."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
