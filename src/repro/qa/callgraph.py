"""Project index and call graph over :class:`ModuleSymbols` facts.

The :class:`ProjectIndex` joins every module's facts into one symbol
table: qualified function lookup with re-export chasing (a name
imported into a package ``__init__`` resolves to its defining module),
the catalog's metric-name vocabulary, and the call graph.

The :class:`CallGraph` is conservative in the direction that avoids
false "dead code" findings: a call or name reference whose target
cannot be resolved through the import maps roots every function with a
matching bare name, and references from class/method bodies count as
references from the module root (classes are not tracked as nodes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .symbols import MODULE_CONTEXT, CallSite, FunctionSymbol, ModuleSymbols

#: Synthetic caller node for module-level code and unresolved contexts.
ROOT = "<root>"


@dataclass
class ProjectIndex:
    """All module facts, cross-referenced."""

    modules: dict[str, ModuleSymbols] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    module_of: dict[str, ModuleSymbols] = field(default_factory=dict)

    @classmethod
    def build(cls, facts: Iterable[ModuleSymbols]) -> "ProjectIndex":
        index = cls()
        for mod in facts:
            index.modules[mod.name] = mod
            for fn in mod.functions:
                index.functions[fn.qualname] = fn
                index.module_of[fn.qualname] = mod
        return index

    def resolve(self, spec: str | None) -> FunctionSymbol | None:
        """Resolve a dotted call spec to a function, chasing re-exports.

        ``repro.metrics.metric_index`` resolves through the package
        ``__init__``'s ``from .catalog import metric_index`` to the
        defining ``repro.metrics.catalog.metric_index``.
        """
        seen: set[str] = set()
        while spec is not None and spec not in seen:
            seen.add(spec)
            fn = self.functions.get(spec)
            if fn is not None:
                return fn
            prefix, _, name = spec.rpartition(".")
            if not prefix:
                return None
            mod = self.modules.get(prefix)
            if mod is None:
                return None
            spec = mod.imports.get(name)
        return None

    def metric_names(self) -> frozenset[str]:
        """Union of metric-name vocabularies found in catalog modules."""
        names: set[str] = set()
        for mod in self.modules.values():
            names.update(mod.metric_names)
        return frozenset(names)

    def call_sites(self) -> Iterable[tuple[ModuleSymbols, CallSite]]:
        for mod in self.modules.values():
            for site in mod.call_sites:
                yield mod, site


class CallGraph:
    """Liveness-oriented call/reference graph over top-level functions.

    Nodes are function qualnames plus the synthetic :data:`ROOT`.
    Edges come from resolved call sites and resolved name references;
    unresolved references conservatively root every bare-name match.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: dict[str, set[str]] = {ROOT: set()}
        self._by_bare_name: dict[str, list[str]] = {}
        for qualname, fn in index.functions.items():
            self.edges.setdefault(qualname, set())
            self._by_bare_name.setdefault(fn.name, []).append(qualname)
        self._build()

    def _caller_node(self, mod: ModuleSymbols, context: str) -> str:
        if context == MODULE_CONTEXT or "." in context:
            return ROOT  # module level, class bodies, methods
        qualname = f"{mod.name}.{context}"
        return qualname if qualname in self.edges else ROOT

    def _add(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)

    def _build(self) -> None:
        index = self.index
        for mod in index.modules.values():
            # Calls: resolved specs become precise edges, unresolved
            # bare names conservatively root all matches.
            for site in mod.call_sites:
                src = self._caller_node(mod, site.caller)
                target = index.resolve(site.callee)
                if target is not None:
                    self._add(src, target.qualname)
                elif site.callee_name:
                    for qualname in self._by_bare_name.get(site.callee_name, ()):
                        self._add(ROOT, qualname)
            # Name references (callbacks, re-exports, decorators): a
            # resolved local/imported name is an edge from its context.
            for context, name in mod.name_refs:
                src = self._caller_node(mod, context)
                spec = None
                if f"{mod.name}.{name}" in index.functions:
                    spec = f"{mod.name}.{name}"
                elif name in mod.imports:
                    spec = mod.imports[name]
                target = index.resolve(spec)
                if target is not None and target.name != context:
                    self._add(src, target.qualname)
            # Attribute references cannot be typed; root every match.
            for attr in mod.attr_refs:
                for qualname in self._by_bare_name.get(attr, ()):
                    self._add(ROOT, qualname)
            # Imports bind (and therefore evaluate) the name at module
            # import time.
            for alias, spec in mod.imports.items():
                target = index.resolve(spec)
                if target is not None:
                    self._add(ROOT, target.qualname)

    def reachable(self, roots: Sequence[str] = (ROOT,)) -> set[str]:
        """Every function reachable from *roots* via edges."""
        seen: set[str] = set()
        queue: deque[str] = deque(roots)
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            for nxt in self.edges.get(node, ()):
                if nxt not in seen:
                    queue.append(nxt)
        seen.discard(ROOT)
        return seen
