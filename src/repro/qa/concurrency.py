"""Per-module concurrency facts: locks, guarded accesses, thread lifecycles.

:func:`build_module_concurrency` distills one parsed
:class:`~repro.qa.source.SourceModule` into a
:class:`ModuleConcurrency` record — everything the flow-aware
concurrency rules (:mod:`repro.qa.rules.concurrency`) and the
project-wide lock inference (:mod:`repro.qa.lockgraph`) need, and
nothing that requires keeping the AST around.  Like
:class:`~repro.qa.symbols.ModuleSymbols` (which embeds this record),
the facts serialize to plain JSON so the incremental cache restores
them for unchanged files without re-parsing.

What is extracted, per function or method:

* **attribute accesses** — every ``self._x`` read or write, tagged with
  the set of canonical lock ids held at the statement.  Held sets
  combine the lexical ``with self._lock:`` nesting (recovered by a
  pre-pass, since the CFG lowers ``with`` bodies without scope markers)
  with explicit ``.acquire()`` / ``.release()`` pairs tracked through
  the CFG by a must-hold forward dataflow (intersection at joins, so a
  lock counts as held only when held on *every* path);
* **lock acquisitions** — each ``with``-item or ``.acquire()`` on a
  recognized lock, with the locks already held before it (the raw
  material of the lock-order graph);
* **calls** — resolved project calls and ``self.method()`` calls with
  the held set at the call site (one-level interprocedural propagation
  happens at index time);
* **blocking operations** — ``queue.put/get``, ``Event.wait``,
  ``Thread.join``, socket I/O, ``open``/``time.sleep``, and direct
  invocations of constructor-injected callables, found by typing
  ``self._x`` attributes from their ``__init__`` assignments;
* **thread lifecycle operations** — ``threading.Thread`` /
  ``threading.Timer`` creation (target, daemon flag, storage location),
  ``start()`` and ``join()``.

Canonical lock ids are ``module.Class.attr`` for instance locks,
``module.NAME`` for module-level locks, and ``qualname.name`` for
function-local locks, so the index-time analyses can join them across
modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .cfg import build_cfg
from .dataflow import ForwardAnalysis, head_children, head_walk
from .source import SourceModule

#: Constructor specs recognized as concurrency-relevant attribute kinds.
KIND_CTORS: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "threading.Condition": "condition",
    "threading.Event": "event",
    "threading.Thread": "thread",
    "threading.Timer": "thread",
    "queue.Queue": "queue",
    "queue.LifoQueue": "queue",
    "queue.PriorityQueue": "queue",
    "queue.SimpleQueue": "queue",
    "socket.socket": "socket",
}

#: Kinds acquirable via ``with`` / ``.acquire()`` (lock-like objects).
LOCK_KINDS = frozenset({"lock", "condition"})

#: Kinds that are internally synchronized (or are synchronizers): their
#: *contents* are thread-safe, so attribute-level guard inference would
#: only produce noise.  Rebinding such an attribute is still tracked
#: for ``thread`` attrs (a ``Thread`` handle swap is a real race).
SYNC_KINDS = frozenset({"lock", "condition", "queue", "event"})

#: Methods that block, per attribute kind.  ``*_nowait`` variants are
#: different method names and therefore never match.
BLOCKING_METHODS: dict[str, frozenset[str]] = {
    "queue": frozenset({"get", "put", "join"}),
    "event": frozenset({"wait"}),
    "thread": frozenset({"join"}),
    "condition": frozenset({"wait", "wait_for"}),
    "socket": frozenset({"accept", "connect", "recv", "recv_into", "send", "sendall"}),
}

#: Resolved call specs that block regardless of receiver typing.
BLOCKING_CALLS: dict[str, str] = {"time.sleep": "sleep"}

#: Method names treated as *writes* to the receiving attribute
#: (container mutation counts toward the guard-ratio denominator).
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "setdefault",
        "sort", "update",
    }
)


def _resolve_spec(
    func: ast.expr, imports: dict[str, str], local_defs: dict[str, str]
) -> str | None:
    """Dotted spec of a call's function expression, through imports.

    A local re-implementation of the symbol extractor's callee
    resolution (kept here so :mod:`repro.qa.symbols` can import this
    module lazily without a cycle).
    """
    if isinstance(func, ast.Name):
        return local_defs.get(func.id) or imports.get(func.id)
    if isinstance(func, ast.Attribute):
        chain: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            chain.append(node.id)
            chain.reverse()
            base = chain[0]
            if base in imports:
                return ".".join([imports[base]] + chain[1:])
    return None


def _self_attr(expr: ast.expr) -> str | None:
    """Attribute name when *expr* is exactly ``self.<attr>``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


# ----------------------------------------------------------------------
# fact records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` access with the locks held around it."""

    attr: str
    mode: str  # "read" | "write"
    held: tuple[str, ...]
    lineno: int
    col: int
    line_text: str = ""

    def to_dict(self) -> list:
        return [self.attr, self.mode, list(self.held), self.lineno, self.col, self.line_text]

    @classmethod
    def from_dict(cls, data: list) -> "AttrAccess":
        return cls(data[0], data[1], tuple(data[2]), data[3], data[4], data[5])


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with lock:`` item or ``lock.acquire()`` call."""

    lock: str  # canonical lock id
    held_before: tuple[str, ...]
    lineno: int
    col: int
    line_text: str = ""

    def to_dict(self) -> list:
        return [self.lock, list(self.held_before), self.lineno, self.col, self.line_text]

    @classmethod
    def from_dict(cls, data: list) -> "LockAcquisition":
        return cls(data[0], tuple(data[1]), data[2], data[3], data[4])


@dataclass(frozen=True)
class ConcCall:
    """One call relevant to interprocedural lock propagation."""

    callee: str | None  # dotted spec resolved through imports, or None
    self_method: str | None  # bare method name for ``self.m()`` calls
    held: tuple[str, ...]
    lineno: int
    col: int
    line_text: str = ""

    def to_dict(self) -> list:
        return [self.callee, self.self_method, list(self.held), self.lineno, self.col, self.line_text]

    @classmethod
    def from_dict(cls, data: list) -> "ConcCall":
        return cls(data[0], data[1], tuple(data[2]), data[3], data[4], data[5])


@dataclass(frozen=True)
class BlockingOp:
    """One potentially blocking operation (queue/event/IO/callback)."""

    kind: str  # "queue.get", "event.wait", "callback", "sleep", "file-io", ...
    detail: str  # rendered receiver, e.g. "self._queue.get"
    held: tuple[str, ...]
    lineno: int
    col: int
    line_text: str = ""

    def to_dict(self) -> list:
        return [self.kind, self.detail, list(self.held), self.lineno, self.col, self.line_text]

    @classmethod
    def from_dict(cls, data: list) -> "BlockingOp":
        return cls(data[0], data[1], tuple(data[2]), data[3], data[4], data[5])


@dataclass(frozen=True)
class ThreadOp:
    """One thread lifecycle operation: create, start, or join."""

    kind: str  # "create" | "start" | "join"
    target: str | None  # create: "self.<method>" or a dotted/bare spec
    daemon: bool | None  # create: explicit daemon= flag, None when absent
    storage: str | None  # "self.<attr>", a local name, or None
    held: tuple[str, ...]
    lineno: int
    col: int
    line_text: str = ""

    def to_dict(self) -> list:
        return [
            self.kind, self.target, self.daemon, self.storage,
            list(self.held), self.lineno, self.col, self.line_text,
        ]

    @classmethod
    def from_dict(cls, data: list) -> "ThreadOp":
        return cls(data[0], data[1], data[2], data[3], tuple(data[4]), data[5], data[6], data[7])


@dataclass
class FunctionConcurrency:
    """Concurrency facts of one function or method."""

    name: str
    qualname: str
    cls: str | None  # owning class name, None for module functions
    lineno: int
    accesses: list[AttrAccess] = field(default_factory=list)
    acquisitions: list[LockAcquisition] = field(default_factory=list)
    calls: list[ConcCall] = field(default_factory=list)
    blocking: list[BlockingOp] = field(default_factory=list)
    thread_ops: list[ThreadOp] = field(default_factory=list)
    #: Line of the last ``self.<attr> = ...`` assignment (0 when none);
    #: the ``thread-lifecycle`` rule compares thread starts in
    #: ``__init__`` against it (start-before-fully-constructed).
    last_self_assign_line: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "cls": self.cls,
            "lineno": self.lineno,
            "accesses": [a.to_dict() for a in self.accesses],
            "acquisitions": [a.to_dict() for a in self.acquisitions],
            "calls": [c.to_dict() for c in self.calls],
            "blocking": [b.to_dict() for b in self.blocking],
            "thread_ops": [t.to_dict() for t in self.thread_ops],
            "last_self_assign_line": self.last_self_assign_line,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionConcurrency":
        return cls(
            name=data["name"],
            qualname=data["qualname"],
            cls=data["cls"],
            lineno=data["lineno"],
            accesses=[AttrAccess.from_dict(a) for a in data["accesses"]],
            acquisitions=[LockAcquisition.from_dict(a) for a in data["acquisitions"]],
            calls=[ConcCall.from_dict(c) for c in data["calls"]],
            blocking=[BlockingOp.from_dict(b) for b in data["blocking"]],
            thread_ops=[ThreadOp.from_dict(t) for t in data["thread_ops"]],
            last_self_assign_line=data["last_self_assign_line"],
        )


@dataclass
class ClassConcurrency:
    """Concurrency-relevant shape of one class."""

    name: str
    qualname: str  # module.Class
    lineno: int
    bases: tuple[str, ...] = ()  # resolved dotted specs or bare names
    lock_attrs: tuple[str, ...] = ()  # attrs holding lock/condition objects
    #: attr → inferred kind ("lock", "queue", "event", "thread",
    #: "socket", "condition", or "param" for ctor-injected values).
    attr_kinds: dict[str, str] = field(default_factory=dict)
    methods: tuple[str, ...] = ()  # bare method names defined on the class

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "lock_attrs": list(self.lock_attrs),
            "attr_kinds": dict(self.attr_kinds),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassConcurrency":
        return cls(
            name=data["name"],
            qualname=data["qualname"],
            lineno=data["lineno"],
            bases=tuple(data["bases"]),
            lock_attrs=tuple(data["lock_attrs"]),
            attr_kinds=dict(data["attr_kinds"]),
            methods=tuple(data["methods"]),
        )


@dataclass
class ModuleConcurrency:
    """All concurrency facts of one module."""

    module_locks: tuple[str, ...] = ()  # module-level lock global names
    classes: list[ClassConcurrency] = field(default_factory=list)
    functions: list[FunctionConcurrency] = field(default_factory=list)

    def is_trivial(self) -> bool:
        """True when nothing here can matter to any concurrency rule."""
        return (
            not self.module_locks
            and not self.classes
            and all(
                not f.accesses
                and not f.acquisitions
                and not f.blocking
                and not f.thread_ops
                for f in self.functions
            )
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "module_locks": list(self.module_locks),
            "classes": [c.to_dict() for c in self.classes],
            "functions": [f.to_dict() for f in self.functions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleConcurrency":
        return cls(
            module_locks=tuple(data["module_locks"]),
            classes=[ClassConcurrency.from_dict(c) for c in data["classes"]],
            functions=[FunctionConcurrency.from_dict(f) for f in data["functions"]],
        )


# ----------------------------------------------------------------------
# attribute / local typing pre-passes
# ----------------------------------------------------------------------


def _scope_statements(body: list[ast.stmt]):
    """All statements under *body*, not descending into nested scopes."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for name in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, name, ()))
        for handler in getattr(stmt, "handlers", ()):
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", ()):
            stack.extend(case.body)


def _assigned_value(stmt: ast.stmt) -> tuple[list[ast.expr], ast.expr | None]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets), stmt.value
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target], stmt.value
    return [], None


def _class_concurrency(
    module: SourceModule,
    node: ast.ClassDef,
    imports: dict[str, str],
    local_defs: dict[str, str],
) -> ClassConcurrency:
    """Scan a class for lock attributes and attribute typing."""
    methods: list[str] = []
    attr_kinds: dict[str, str] = {}
    for sub in node.body:
        if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        methods.append(sub.name)
        params = {a.arg for a in list(sub.args.posonlyargs) + list(sub.args.args)}
        for stmt in _scope_statements(sub.body):
            targets, value = _assigned_value(stmt)
            if value is None:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None or attr in attr_kinds:
                    continue
                if isinstance(value, ast.Call):
                    spec = _resolve_spec(value.func, imports, local_defs)
                    kind = KIND_CTORS.get(spec or "")
                    if kind is not None:
                        attr_kinds[attr] = kind
                elif (
                    sub.name == "__init__"
                    and isinstance(value, ast.Name)
                    and value.id in params
                ):
                    # Constructor-injected value: calling it later is a
                    # user callback (opaque, possibly blocking).
                    attr_kinds[attr] = "param"
    bases = tuple(
        _resolve_spec(b, imports, local_defs)
        or (b.id if isinstance(b, ast.Name) else getattr(b, "attr", ""))
        for b in node.bases
    )
    lock_attrs = tuple(
        sorted(a for a, k in attr_kinds.items() if k in LOCK_KINDS)
    )
    return ClassConcurrency(
        name=node.name,
        qualname=f"{module.name}.{node.name}",
        lineno=node.lineno,
        bases=bases,
        lock_attrs=lock_attrs,
        attr_kinds=attr_kinds,
        methods=tuple(methods),
    )


def _module_locks(
    module: SourceModule, imports: dict[str, str], local_defs: dict[str, str]
) -> tuple[str, ...]:
    """Module-level globals assigned a lock constructor."""
    out: list[str] = []
    for stmt in module.tree.body:
        targets, value = _assigned_value(stmt)
        if not isinstance(value, ast.Call):
            continue
        spec = _resolve_spec(value.func, imports, local_defs)
        if KIND_CTORS.get(spec or "") not in LOCK_KINDS:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.append(target.id)
    return tuple(sorted(out))


# ----------------------------------------------------------------------
# CFG-based acquire/release tracking
# ----------------------------------------------------------------------


class _MustHeldLocks(ForwardAnalysis):
    """Must-hold analysis over explicit ``.acquire()``/``.release()``.

    The fact maps canonical lock id → True; the join intersects key
    sets, so a lock is held at a statement only when acquired on every
    incoming path — the conservative direction for guard inference.
    """

    def __init__(self, canon) -> None:
        self._canon = canon

    def entry_fact(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict:
        return {}

    def join(self, facts: list[dict]) -> dict:
        if not facts:
            return {}
        keys = set(facts[0])
        for f in facts[1:]:
            keys &= set(f)
        return {k: True for k in sorted(keys)}

    def transfer(self, fact: dict, stmt: ast.stmt) -> dict:
        ops: list[tuple[str, str]] = []
        for node in head_walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                lock = self._canon(node.func.value)
                if lock is not None:
                    ops.append((node.func.attr, lock))
        if not ops:
            return fact
        out = dict(fact)
        for op, lock in ops:
            if op == "acquire":
                out[lock] = True
            else:
                out.pop(lock, None)
        return out


def _has_acquire(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr == "acquire":
            return True
    return False


# ----------------------------------------------------------------------
# per-function extraction
# ----------------------------------------------------------------------


class _FunctionExtractor:
    """One lexical walk of a function body collecting all fact kinds."""

    def __init__(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ClassConcurrency | None,
        module_locks: tuple[str, ...],
        imports: dict[str, str],
        local_defs: dict[str, str],
    ) -> None:
        self.module = module
        self.fn = fn
        self.owner = owner
        self.module_locks = set(module_locks)
        self.imports = imports
        self.local_defs = local_defs
        local = f"{owner.name}.{fn.name}" if owner else fn.name
        self.qualname = f"{module.name}.{local}"
        self.facts = FunctionConcurrency(
            name=fn.name,
            qualname=self.qualname,
            cls=owner.name if owner else None,
            lineno=fn.lineno,
        )
        #: local name → (kind, origin storage like "self._thread" or None)
        self.local_kinds: dict[str, tuple[str, str | None]] = {}
        self._prime_local_kinds()
        self._acq_at: dict[int, tuple[str, ...]] = {}
        if _has_acquire(fn):
            analysis = _MustHeldLocks(self._canonical_lock)
            analysis.run(fn, build_cfg(fn))
            for stmt, fact in analysis.statement_facts():
                if fact:
                    self._acq_at[id(stmt)] = tuple(sorted(fact))

    def _line(self, lineno: int) -> str:
        return self.module.line_at(lineno)

    # -- typing ---------------------------------------------------------
    def _prime_local_kinds(self) -> None:
        """Type locals assigned concurrency objects (order-insensitive)."""
        for stmt in _scope_statements(self.fn.body):
            targets, value = _assigned_value(stmt)
            if value is None:
                continue
            kind_origin: tuple[str, str | None] | None = None
            if isinstance(value, ast.Call):
                spec = _resolve_spec(value.func, self.imports, self.local_defs)
                kind = KIND_CTORS.get(spec or "")
                if kind is not None:
                    kind_origin = (kind, None)
            else:
                attr = _self_attr(value)
                if attr is not None and self.owner is not None:
                    kind = self.owner.attr_kinds.get(attr)
                    if kind is not None:
                        kind_origin = (kind, f"self.{attr}")
            if kind_origin is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.local_kinds[target.id] = kind_origin

    def _canonical_lock(self, expr: ast.expr) -> str | None:
        """Canonical lock id of *expr*, or None when not a known lock."""
        attr = _self_attr(expr)
        if attr is not None:
            if self.owner is not None and attr in self.owner.lock_attrs:
                return f"{self.owner.qualname}.{attr}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module_locks:
                return f"{self.module.name}.{expr.id}"
            local = self.local_kinds.get(expr.id)
            if local is not None and local[0] in LOCK_KINDS:
                origin = local[1]
                if origin is not None and self.owner is not None:
                    return f"{self.owner.qualname}.{origin[len('self.'):]}"
                return f"{self.qualname}.{expr.id}"
        return None

    def _receiver_kind(self, expr: ast.expr) -> tuple[str, str] | None:
        """(kind, rendered receiver) for a typed attribute or local."""
        attr = _self_attr(expr)
        if attr is not None and self.owner is not None:
            kind = self.owner.attr_kinds.get(attr)
            if kind is not None:
                return kind, f"self.{attr}"
        if isinstance(expr, ast.Name):
            local = self.local_kinds.get(expr.id)
            if local is not None:
                return local[0], local[1] or expr.id
        return None

    # -- walking --------------------------------------------------------
    def run(self) -> FunctionConcurrency:
        self._walk(self.fn.body, ())
        return self.facts

    def _effective(self, stmt: ast.stmt, lexical: tuple[str, ...]) -> tuple[str, ...]:
        acquired = self._acq_at.get(id(stmt), ())
        if not acquired:
            return lexical
        return tuple(sorted(set(lexical) | set(acquired)))

    def _walk(self, body: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scope: opaque
            eff = self._effective(stmt, held)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = set(held)
                for item in stmt.items:
                    lock = self._canonical_lock(item.context_expr)
                    if lock is not None:
                        self.facts.acquisitions.append(
                            LockAcquisition(
                                lock=lock,
                                held_before=tuple(sorted(inner | set(eff))),
                                lineno=item.context_expr.lineno,
                                col=item.context_expr.col_offset,
                                line_text=self._line(item.context_expr.lineno),
                            )
                        )
                        inner.add(lock)
                    else:
                        self._scan_expr(item.context_expr, eff)
                self._walk(stmt.body, tuple(sorted(inner)))
                continue
            self._scan_stmt(stmt, eff)
            for name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, name, None)
                if nested:
                    self._walk(nested, held)
            for handler in getattr(stmt, "handlers", ()):
                self._walk(handler.body, held)
            for case in getattr(stmt, "cases", ()):
                self._walk(case.body, held)

    # -- statement heads ------------------------------------------------
    def _scan_stmt(self, stmt: ast.stmt, eff: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(stmt.targets) if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                self._scan_target(target, eff)
            if stmt.value is not None:
                storage = None
                if len(targets) == 1:
                    if isinstance(targets[0], ast.Name):
                        storage = targets[0].id
                    else:
                        attr = _self_attr(targets[0])
                        if attr is not None:
                            storage = f"self.{attr}"
                self._scan_expr(stmt.value, eff, storage=storage)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._scan_target(target, eff)
            return
        for child in head_children(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, eff)

    def _scan_target(self, target: ast.expr, eff: tuple[str, ...]) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._record_access(attr, "write", target, eff)
            self.facts.last_self_assign_line = max(
                self.facts.last_self_assign_line, target.lineno
            )
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self._record_access(attr, "write", target, eff)
            else:
                self._scan_expr(target.value, eff)
            self._scan_expr(target.slice, eff)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._scan_target(elt, eff)
            return
        if isinstance(target, ast.Starred):
            self._scan_target(target.value, eff)
            return
        if isinstance(target, ast.Attribute):
            self._scan_expr(target.value, eff)

    # -- expressions ----------------------------------------------------
    def _record_access(
        self, attr: str, mode: str, node: ast.AST, eff: tuple[str, ...]
    ) -> None:
        owner = self.owner
        if owner is None:
            return
        if attr in owner.lock_attrs or attr in owner.methods:
            return  # lock handles and bound methods are not shared state
        self.facts.accesses.append(
            AttrAccess(
                attr=attr,
                mode=mode,
                held=eff,
                lineno=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                line_text=self._line(getattr(node, "lineno", 0)),
            )
        )

    def _scan_expr(
        self, expr: ast.expr, eff: tuple[str, ...], storage: str | None = None
    ) -> None:
        if isinstance(expr, (ast.Lambda, ast.GeneratorExp)):
            return  # deferred execution: held sets would be wrong
        if isinstance(expr, ast.Call):
            self._scan_call(expr, eff, storage)
            return
        attr = _self_attr(expr)
        if attr is not None:
            self._record_access(attr, "read", expr, eff)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, eff)

    def _scan_call(
        self, call: ast.Call, eff: tuple[str, ...], storage: str | None
    ) -> None:
        func = call.func
        handled_func = False
        if isinstance(func, ast.Attribute):
            meth = func.attr
            recv_attr = _self_attr(func.value)
            if recv_attr is not None:
                # self.<attr>.<meth>(...): container/primitive method.
                if meth in ("acquire", "release"):
                    if self._canonical_lock(func.value) is not None:
                        if meth == "acquire":
                            self.facts.acquisitions.append(
                                LockAcquisition(
                                    lock=self._canonical_lock(func.value),  # type: ignore[arg-type]
                                    held_before=eff,
                                    lineno=call.lineno,
                                    col=call.col_offset,
                                    line_text=self._line(call.lineno),
                                )
                            )
                        handled_func = True
                if not handled_func:
                    mode = "write" if meth in MUTATOR_METHODS else "read"
                    self._record_access(recv_attr, mode, func.value, eff)
                    self._typed_method_ops(func.value, meth, call, eff)
                handled_func = True
            else:
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and self.owner is not None
                ):
                    if meth in self.owner.methods:
                        self.facts.calls.append(
                            ConcCall(
                                callee=None,
                                self_method=meth,
                                held=eff,
                                lineno=call.lineno,
                                col=call.col_offset,
                                line_text=self._line(call.lineno),
                            )
                        )
                    else:
                        # self.<attr>(...) — calling a stored value.
                        self._record_access(meth, "read", func, eff)
                        if self.owner.attr_kinds.get(meth) == "param":
                            self.facts.blocking.append(
                                BlockingOp(
                                    kind="callback",
                                    detail=f"self.{meth}",
                                    held=eff,
                                    lineno=call.lineno,
                                    col=call.col_offset,
                                    line_text=self._line(call.lineno),
                                )
                            )
                    handled_func = True
                else:
                    typed = self._receiver_kind(func.value)
                    if typed is not None:
                        self._typed_method_ops(func.value, meth, call, eff)
                        handled_func = True
        spec = _resolve_spec(func, self.imports, self.local_defs)
        if spec is not None:
            self.facts.calls.append(
                ConcCall(
                    callee=spec,
                    self_method=None,
                    held=eff,
                    lineno=call.lineno,
                    col=call.col_offset,
                    line_text=self._line(call.lineno),
                )
            )
            if spec in BLOCKING_CALLS:
                self.facts.blocking.append(
                    BlockingOp(
                        kind=BLOCKING_CALLS[spec],
                        detail=spec,
                        held=eff,
                        lineno=call.lineno,
                        col=call.col_offset,
                        line_text=self._line(call.lineno),
                    )
                )
            if spec in ("threading.Thread", "threading.Timer"):
                self._thread_create(call, spec, eff, storage)
            handled_func = True
        if isinstance(func, ast.Name) and func.id == "open":
            self.facts.blocking.append(
                BlockingOp(
                    kind="file-io",
                    detail="open",
                    held=eff,
                    lineno=call.lineno,
                    col=call.col_offset,
                    line_text=self._line(call.lineno),
                )
            )
            handled_func = True
        if not handled_func and isinstance(func, ast.Attribute):
            self._scan_expr(func.value, eff)
        for arg in call.args:
            self._scan_expr(arg, eff)
        for kw in call.keywords:
            self._scan_expr(kw.value, eff)

    def _typed_method_ops(
        self, receiver: ast.expr, meth: str, call: ast.Call, eff: tuple[str, ...]
    ) -> None:
        """Blocking / thread-lifecycle ops on a typed receiver."""
        typed = self._receiver_kind(receiver)
        if typed is None:
            return
        kind, rendered = typed
        if meth in BLOCKING_METHODS.get(kind, frozenset()):
            if not self._nonblocking_override(call):
                self.facts.blocking.append(
                    BlockingOp(
                        kind=f"{kind}.{meth}",
                        detail=f"{rendered}.{meth}",
                        held=eff,
                        lineno=call.lineno,
                        col=call.col_offset,
                        line_text=self._line(call.lineno),
                    )
                )
        if kind == "thread" and meth in ("start", "join"):
            self.facts.thread_ops.append(
                ThreadOp(
                    kind=meth,
                    target=None,
                    daemon=None,
                    storage=rendered,
                    held=eff,
                    lineno=call.lineno,
                    col=call.col_offset,
                    line_text=self._line(call.lineno),
                )
            )

    @staticmethod
    def _nonblocking_override(call: ast.Call) -> bool:
        """True for ``get/put(..., block=False)`` style calls."""
        for kw in call.keywords:
            if kw.arg == "block" and isinstance(kw.value, ast.Constant):
                return not bool(kw.value.value)
        return False

    def _thread_create(
        self, call: ast.Call, spec: str, eff: tuple[str, ...], storage: str | None
    ) -> None:
        target_expr: ast.expr | None = None
        daemon: bool | None = None
        if spec == "threading.Timer":
            if len(call.args) >= 2:
                target_expr = call.args[1]
        for kw in call.keywords:
            if kw.arg == "target" or (spec == "threading.Timer" and kw.arg == "function"):
                target_expr = kw.value
            elif kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                daemon = bool(kw.value.value)
        target: str | None = None
        if target_expr is not None:
            attr = _self_attr(target_expr)
            if attr is not None:
                target = f"self.{attr}"
            elif isinstance(target_expr, ast.Name):
                target = (
                    self.local_defs.get(target_expr.id)
                    or self.imports.get(target_expr.id)
                    or target_expr.id
                )
        self.facts.thread_ops.append(
            ThreadOp(
                kind="create",
                target=target,
                daemon=daemon,
                storage=storage,
                held=eff,
                lineno=call.lineno,
                col=call.col_offset,
                line_text=self._line(call.lineno),
            )
        )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def build_module_concurrency(
    module: SourceModule,
    imports: dict[str, str],
    local_defs: dict[str, str],
) -> ModuleConcurrency | None:
    """Extract concurrency facts for one module (None when trivial).

    *imports* and *local_defs* are the maps the symbol extractor
    already built; passing them in keeps the two fact passes consistent
    about callee resolution.
    """
    tree = module.tree
    classes: list[ClassConcurrency] = []
    functions: list[FunctionConcurrency] = []
    module_locks = _module_locks(module, imports, local_defs)

    class_nodes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
    class_facts = {
        n.name: _class_concurrency(module, n, imports, local_defs) for n in class_nodes
    }

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _FunctionExtractor(
                    module, node, None, module_locks, imports, local_defs
                ).run()
            )
        elif isinstance(node, ast.ClassDef):
            owner = class_facts[node.name]
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        _FunctionExtractor(
                            module, sub, owner, module_locks, imports, local_defs
                        ).run()
                    )

    # Only classes with concurrency substance are kept (a class with no
    # lock/typed attrs and no thread ops cannot produce findings).
    for name, facts in class_facts.items():
        if facts.lock_attrs or facts.attr_kinds or any(
            f.cls == name and (f.thread_ops or f.acquisitions) for f in functions
        ):
            classes.append(facts)

    out = ModuleConcurrency(
        module_locks=module_locks,
        classes=classes,
        functions=functions,
    )
    if out.is_trivial():
        return None
    return out


__all__ = [
    "AttrAccess",
    "BLOCKING_CALLS",
    "BLOCKING_METHODS",
    "BlockingOp",
    "ClassConcurrency",
    "ConcCall",
    "FunctionConcurrency",
    "KIND_CTORS",
    "LOCK_KINDS",
    "LockAcquisition",
    "ModuleConcurrency",
    "MUTATOR_METHODS",
    "SYNC_KINDS",
    "ThreadOp",
    "build_module_concurrency",
]
