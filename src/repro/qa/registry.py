"""Rule base classes and the global rule registry.

A rule subclasses :class:`Rule` (per-file AST), :class:`IndexRule`
(flow-aware: sees the whole-project symbol/call-graph index built from
cached facts), or the legacy :class:`ProjectRule` (whole-tree over raw
modules; disables the incremental cache) and registers itself with the
:func:`register` decorator.  The engine runs every registered rule;
``python -m repro.qa rules`` lists them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence, Type

from .findings import Finding, Severity
from .source import SourceModule

if TYPE_CHECKING:
    from .callgraph import ProjectIndex


class Rule:
    """Per-file rule: inspects one :class:`SourceModule` at a time."""

    #: Stable kebab-case identifier used in output, pragmas, baselines.
    id: str = ""
    #: Default severity for this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line summary shown by ``repro-qa rules`` and the docs.
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, module: SourceModule, lineno: int, message: str, col: int = 0) -> Finding:
        """Build a finding anchored at ``module:lineno`` for this rule."""
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=module.relpath,
            line=lineno,
            col=col,
            message=message,
            source_line=module.line_at(lineno),
        )

    def finding_at(
        self, path: str, lineno: int, message: str, col: int = 0, source_line: str = ""
    ) -> Finding:
        """Build a finding from facts (no :class:`SourceModule` at hand)."""
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=path,
            line=lineno,
            col=col,
            message=message,
            source_line=source_line,
        )


class IndexRule(Rule):
    """Flow-aware rule over the project-wide :class:`ProjectIndex`.

    Index rules run after every file's facts are available (parsed or
    restored from the incremental cache) and may consult the symbol
    table, the call graph, shape contracts, and call-site argument
    facts.  They never see raw ASTs, which is what keeps warm cache
    runs parse-free.
    """

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_index(self, index: "ProjectIndex") -> Iterable[Finding]:
        """Yield findings computed over the full project index."""
        raise NotImplementedError


class ProjectRule(Rule):
    """Legacy whole-tree rule over raw modules.

    Prefer :class:`IndexRule`: a registered ProjectRule forces the
    engine to parse every file on every run (the incremental cache
    cannot satisfy it).
    """

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        """Yield findings computed over the full module set."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry.

    Raises
    ------
    ValueError
        On a missing or duplicate rule id.
    """
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Iterator[Rule]:
    """Every registered rule, sorted by id (imports the rule package)."""
    from . import rules  # noqa: F401  (import populates the registry)

    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id.

    Raises
    ------
    KeyError
        If no rule has that id.
    """
    from . import rules  # noqa: F401

    return _REGISTRY[rule_id]
