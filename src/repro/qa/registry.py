"""Rule base classes and the global rule registry.

A rule subclasses :class:`Rule` (per-file) or :class:`ProjectRule`
(whole-tree, e.g. dead-code detection needs cross-module references) and
registers itself with the :func:`register` decorator.  The engine runs
every registered rule; ``python -m repro.qa rules`` lists them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Type

from .findings import Finding, Severity
from .source import SourceModule


class Rule:
    """Per-file rule: inspects one :class:`SourceModule` at a time."""

    #: Stable kebab-case identifier used in output, pragmas, baselines.
    id: str = ""
    #: Default severity for this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line summary shown by ``repro-qa rules`` and the docs.
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, module: SourceModule, lineno: int, message: str, col: int = 0) -> Finding:
        """Build a finding anchored at ``module:lineno`` for this rule."""
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=module.relpath,
            line=lineno,
            col=col,
            message=message,
            source_line=module.line_at(lineno),
        )


class ProjectRule(Rule):
    """Whole-tree rule: sees every module at once (cross-file analysis)."""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        """Yield findings computed over the full module set."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry.

    Raises
    ------
    ValueError
        On a missing or duplicate rule id.
    """
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Iterator[Rule]:
    """Every registered rule, sorted by id (imports the rule package)."""
    from . import rules  # noqa: F401  (import populates the registry)

    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id.

    Raises
    ------
    KeyError
        If no rule has that id.
    """
    from . import rules  # noqa: F401

    return _REGISTRY[rule_id]
