"""Repro-specific static analysis (stdlib-``ast``, fully offline).

The QA subsystem mechanically checks the invariants the paper's results
depend on: determinism (no wall clocks / unseeded RNGs in the pipeline
and simulator), the package-layering DAG, matrix-orientation
documentation for the Figure-2 data flow, and general API hygiene.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog, the
``# qa: ignore[rule-id]`` pragma, and the baseline workflow.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import Analyzer, Report, collect_files
from .findings import Finding, Severity
from .registry import ProjectRule, Rule, all_rules, get_rule, register
from .source import SourceModule

__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "ProjectRule",
    "Report",
    "Rule",
    "Severity",
    "SourceModule",
    "all_rules",
    "collect_files",
    "get_rule",
    "register",
]
