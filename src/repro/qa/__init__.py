"""Repro-specific static analysis (stdlib-``ast``, fully offline).

The QA subsystem mechanically checks the invariants the paper's results
depend on: determinism (no wall clocks / unseeded RNGs in the pipeline
and simulator), the package-layering DAG, matrix-orientation
documentation for the Figure-2 data flow, and general API hygiene.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog, the
``# qa: ignore[rule-id]`` pragma, and the baseline workflow.
"""

from __future__ import annotations

from .baseline import Baseline
from .cache import ResultCache, rules_signature
from .callgraph import CallGraph, ProjectIndex
from .concurrency import ModuleConcurrency, build_module_concurrency
from .engine import Analyzer, Report, collect_files
from .findings import Finding, Severity
from .fix import FixResult, fix_file, fix_source
from .lockgraph import ConcurrencyIndex, LockOrderGraph
from .numerics import ModuleNumerics, NumericsIndex, build_module_numerics
from .registry import IndexRule, ProjectRule, Rule, all_rules, get_rule, register
from .sarif import to_sarif
from .source import SourceModule
from .symbols import ModuleSymbols, build_module_symbols

__all__ = [
    "Analyzer",
    "Baseline",
    "CallGraph",
    "ConcurrencyIndex",
    "Finding",
    "FixResult",
    "IndexRule",
    "LockOrderGraph",
    "ModuleConcurrency",
    "ModuleNumerics",
    "ModuleSymbols",
    "NumericsIndex",
    "ProjectIndex",
    "ProjectRule",
    "Report",
    "ResultCache",
    "Rule",
    "Severity",
    "SourceModule",
    "all_rules",
    "build_module_concurrency",
    "build_module_numerics",
    "build_module_symbols",
    "collect_files",
    "fix_file",
    "fix_source",
    "get_rule",
    "register",
    "rules_signature",
    "to_sarif",
]
