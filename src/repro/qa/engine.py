"""The analysis driver: collect files, run rules, filter suppressions.

:class:`Analyzer` walks the given paths and, per file, either parses it
(running every per-file rule and extracting
:class:`~repro.qa.symbols.ModuleSymbols` facts) or restores findings
and facts from the incremental :class:`~repro.qa.cache.ResultCache`.
The facts of all files are then joined into a
:class:`~repro.qa.callgraph.ProjectIndex` for the flow-aware
:class:`~repro.qa.registry.IndexRule` families (shape contracts,
metric names, cross-module dead code, unused results).  Finally
pragma-suppressed findings are dropped and the rest partitioned
against the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .baseline import Baseline
from .cache import ResultCache
from .callgraph import ProjectIndex
from .findings import Finding, Severity
from .registry import IndexRule, ProjectRule, Rule, all_rules
from .source import SourceModule
from .symbols import ModuleSymbols, build_module_symbols

#: Directory names never descended into.
SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".tox",
    ".venv",
    "build",
    "dist",
    "node_modules",
}

#: Relative path fragments never descended into (matched as consecutive
#: components anywhere in the path) — generated benchmark artefacts.
SKIP_PATH_FRAGMENTS = (("benchmarks", "out"),)


def _has_fragment(parts: tuple[str, ...], fragment: tuple[str, ...]) -> bool:
    span = len(fragment)
    return any(parts[i : i + span] == fragment for i in range(len(parts) - span + 1))


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Raises
    ------
    FileNotFoundError
        If a given path does not exist.
    """
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
        if p.is_dir():
            for f in p.rglob("*.py"):
                if any(part in SKIP_DIRS for part in f.parts):
                    continue
                if any(_has_fragment(f.parts, frag) for frag in SKIP_PATH_FRAGMENTS):
                    continue
                out.add(f)
        else:
            out.add(p)
    return sorted(out)


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    num_files: int = 0
    #: Files parsed this run vs. restored from the incremental cache.
    parsed_files: int = 0
    cached_files: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def failed(self, strict: bool = False) -> bool:
        """True if this run should exit non-zero."""
        return bool(self.errors) or (strict and bool(self.findings))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (used by ``--format json``)."""
        return {
            "version": 1,
            "files": self.num_files,
            "parsed": self.parsed_files,
            "cached": self.cached_files,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "grandfathered": len(self.grandfathered),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


class Analyzer:
    """Run a set of rules over a set of modules."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else list(all_rules())
        self.baseline = baseline or Baseline()
        self.cache = cache
        # Legacy whole-tree rules need raw modules for every file, which
        # the cache cannot provide: fall back to parsing everything.
        self._legacy_project_rules = [
            r for r in self.rules if isinstance(r, ProjectRule) and not isinstance(r, IndexRule)
        ]
        if self._legacy_project_rules:
            self.cache = None

    # ------------------------------------------------------------------
    # per-file analysis
    # ------------------------------------------------------------------
    def _file_rules(self) -> list[Rule]:
        return [r for r in self.rules if not isinstance(r, (IndexRule, ProjectRule))]

    def _analyze_module(self, module: SourceModule) -> tuple[ModuleSymbols, list[Finding]]:
        """Per-file rules + fact extraction for one parsed module."""
        raw: list[Finding] = []
        for rule in self._file_rules():
            raw.extend(rule.check_module(module))
        return build_module_symbols(module), raw

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _collect(
        self, paths: Iterable[str | Path]
    ) -> tuple[list[Path], list[ModuleSymbols], list[Finding], list[SourceModule], int, int]:
        """Gather facts + per-file findings for every file under *paths*.

        Each file is either parsed (running per-file rules and fact
        extraction) or restored from the incremental cache.  Shared by
        :meth:`run` and :meth:`build_index`.
        """
        files = collect_files(paths)
        raw: list[Finding] = []
        facts: list[ModuleSymbols] = []
        modules: list[SourceModule] = []
        parsed = cached = 0
        for path in files:
            relpath = _display_path(path)
            hit = self.cache.lookup(path, relpath) if self.cache is not None else None
            if hit is not None:
                file_facts, file_findings = hit
                cached += 1
            else:
                file_facts, file_findings, module = self._load_and_analyze(path, relpath)
                parsed += 1
                if module is not None:
                    modules.append(module)
                if self.cache is not None:
                    self.cache.store(path, relpath, file_facts, file_findings)
            if file_facts is not None:
                facts.append(file_facts)
            raw.extend(file_findings)
        if self.cache is not None:
            self.cache.prune(files)
            self.cache.save()
        return files, facts, raw, modules, parsed, cached

    def build_index(self, paths: Iterable[str | Path]) -> ProjectIndex:
        """The :class:`ProjectIndex` of *paths*, cache-accelerated.

        Used by the ``repro-qa concurrency`` CLI verb, which consumes
        the index directly instead of running rules over it.
        """
        _files, facts, _raw, _modules, _parsed, _cached = self._collect(paths)
        return ProjectIndex.build(facts)

    def run(self, paths: Iterable[str | Path]) -> Report:
        """Analyze every ``*.py`` under *paths* and return a report."""
        files, facts, raw, modules, parsed, cached = self._collect(paths)

        index = ProjectIndex.build(facts)
        for rule in self.rules:
            if isinstance(rule, IndexRule):
                raw.extend(rule.check_index(index))
        for rule in self._legacy_project_rules:
            raw.extend(rule.check_project(modules))

        facts_by_path: Mapping[str, ModuleSymbols] = {f.relpath: f for f in facts}
        visible = [f for f in raw if not _suppressed(facts_by_path.get(f.path), f)]
        new, old = self.baseline.split(visible)
        new.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return Report(
            findings=new,
            grandfathered=old,
            num_files=len(files),
            parsed_files=parsed,
            cached_files=cached,
        )

    def _load_and_analyze(
        self, path: Path, relpath: str
    ) -> tuple[ModuleSymbols | None, list[Finding], SourceModule | None]:
        try:
            module = SourceModule.parse(path, relpath=relpath)
        except SyntaxError as exc:
            finding = Finding(
                rule_id="parse-error",
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
            return None, [finding], None
        facts, findings = self._analyze_module(module)
        return facts, findings, module

    # ------------------------------------------------------------------
    # in-memory helpers (unit tests)
    # ------------------------------------------------------------------
    def run_sources(self, sources: Mapping[str, str]) -> list[Finding]:
        """Analyze a dict of ``module name → source`` as one project.

        Index rules see the whole synthetic project, so cross-module
        fixtures (shape contracts, dead code, a catalog stub for
        metric names) can be expressed inline in tests.
        """
        names = set(sources)
        modules = [
            SourceModule.from_source(
                src,
                relpath=f"<{name}>",
                name=name,
                is_package=any(other.startswith(name + ".") for other in names),
            )
            for name, src in sources.items()
        ]
        raw: list[Finding] = []
        facts: list[ModuleSymbols] = []
        for module in modules:
            file_facts, file_findings = self._analyze_module(module)
            facts.append(file_facts)
            raw.extend(file_findings)
        index = ProjectIndex.build(facts)
        for rule in self.rules:
            if isinstance(rule, IndexRule):
                raw.extend(rule.check_index(index))
        for rule in self._legacy_project_rules:
            raw.extend(rule.check_project(modules))
        by_path = {f.relpath: f for f in facts}
        visible = [f for f in raw if not _suppressed(by_path.get(f.path), f)]
        new, _old = self.baseline.split(visible)
        return sorted(new, key=lambda f: (f.path, f.line, f.col, f.rule_id))

    def run_source(self, source: str, name: str = "repro.core.snippet") -> list[Finding]:
        """Analyze one in-memory source string (unit-test helper).

        The synthetic *name* controls package-scoped rules: pass e.g.
        ``repro.core.x`` to exercise core-only rules.  Index rules see
        a single-module project.
        """
        module = SourceModule.from_source(source, relpath="<snippet>", name=name)
        facts, raw = self._analyze_module(module)
        index = ProjectIndex.build([facts])
        for rule in self.rules:
            if isinstance(rule, IndexRule):
                raw.extend(rule.check_index(index))
        for rule in self._legacy_project_rules:
            raw.extend(rule.check_project([module]))
        visible = [f for f in raw if not module.suppressed(f.rule_id, f.line)]
        new, _old = self.baseline.split(visible)
        return sorted(new, key=lambda f: (f.line, f.col, f.rule_id))


def _display_path(path: Path) -> str:
    """Path as shown in findings: relative to cwd when possible, posix."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _suppressed(facts: ModuleSymbols | None, finding: Finding) -> bool:
    if facts is None:
        return False
    return facts.suppressed(finding.rule_id, finding.line)
