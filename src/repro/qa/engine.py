"""The analysis driver: collect files, run rules, filter suppressions.

:class:`Analyzer` walks the given paths, parses every ``*.py`` into a
:class:`~repro.qa.source.SourceModule`, runs each registered per-file
rule on each module and each project rule on the full set, then drops
pragma-suppressed findings and partitions the rest against the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline
from .findings import Finding, Severity
from .registry import ProjectRule, Rule, all_rules
from .source import SourceModule

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Raises
    ------
    FileNotFoundError
        If a given path does not exist.
    """
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
        if p.is_dir():
            for f in p.rglob("*.py"):
                if not any(part in SKIP_DIRS for part in f.parts):
                    out.add(f)
        else:
            out.add(p)
    return sorted(out)


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    num_files: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def failed(self, strict: bool = False) -> bool:
        """True if this run should exit non-zero."""
        return bool(self.errors) or (strict and bool(self.findings))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (used by ``--format json``)."""
        return {
            "version": 1,
            "files": self.num_files,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "grandfathered": len(self.grandfathered),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


class Analyzer:
    """Run a set of rules over a set of modules."""

    def __init__(self, rules: Sequence[Rule] | None = None, baseline: Baseline | None = None) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else list(all_rules())
        self.baseline = baseline or Baseline()

    # ------------------------------------------------------------------
    # module loading
    # ------------------------------------------------------------------
    def load_modules(self, files: Sequence[Path]) -> tuple[list[SourceModule], list[Finding]]:
        """Parse *files*; unparseable ones become ``parse-error`` findings."""
        modules: list[SourceModule] = []
        errors: list[Finding] = []
        for path in files:
            relpath = _display_path(path)
            try:
                modules.append(SourceModule.parse(path, relpath=relpath))
            except SyntaxError as exc:
                errors.append(
                    Finding(
                        rule_id="parse-error",
                        severity=Severity.ERROR,
                        path=relpath,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        return modules, errors

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, paths: Iterable[str | Path]) -> Report:
        """Analyze every ``*.py`` under *paths* and return a report."""
        files = collect_files(paths)
        modules, parse_errors = self.load_modules(files)
        raw = list(parse_errors)
        for module in modules:
            for rule in self.rules:
                for finding in rule.check_module(module):
                    raw.append(finding)
        by_path = {m.relpath: m for m in modules}
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                for finding in rule.check_project(modules):
                    raw.append(finding)
        visible = [
            f
            for f in raw
            if not _suppressed(by_path.get(f.path), f)
        ]
        new, old = self.baseline.split(visible)
        new.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return Report(findings=new, grandfathered=old, num_files=len(files))

    def run_source(self, source: str, name: str = "repro.core.snippet") -> list[Finding]:
        """Analyze one in-memory source string (unit-test helper).

        The synthetic *name* controls package-scoped rules: pass e.g.
        ``repro.core.x`` to exercise core-only rules.  Project rules see
        a single-module project.
        """
        module = SourceModule.from_source(source, relpath="<snippet>", name=name)
        raw: list[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check_module(module))
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project([module]))
        visible = [f for f in raw if not module.suppressed(f.rule_id, f.line)]
        new, _old = self.baseline.split(visible)
        return sorted(new, key=lambda f: (f.line, f.col, f.rule_id))


def _display_path(path: Path) -> str:
    """Path as shown in findings: relative to cwd when possible, posix."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _suppressed(module: SourceModule | None, finding: Finding) -> bool:
    if module is None:
        return False
    return module.suppressed(finding.rule_id, finding.line)
