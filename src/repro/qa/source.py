"""Parsed source files and suppression pragmas.

Every rule receives :class:`SourceModule` objects: the parsed AST plus
the raw lines, the dotted module name (``repro.core.pipeline``), and the
per-line suppression pragmas already extracted.

Pragma syntax (checked by :meth:`SourceModule.suppressed`)::

    x = time.time()          # qa: ignore[determinism]
    y = risky()              # qa: ignore[float-eq, bare-except]
    z = anything()           # qa: ignore

A bare ``# qa: ignore`` suppresses every rule on that line; the
bracketed form suppresses only the listed rule ids.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Matches ``# qa: ignore`` and ``# qa: ignore[id, id2]``.
_PRAGMA_RE = re.compile(r"#\s*qa:\s*ignore(?:\[(?P<ids>[^\]]*)\])?")

#: Sentinel stored for a bare ``# qa: ignore`` (suppress all rules).
ALL_RULES = "*"


def extract_pragmas(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    pragmas: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(line)
        if m is None:
            continue
        ids = m.group("ids")
        if ids is None:
            pragmas[lineno] = {ALL_RULES}
        else:
            pragmas[lineno] = {part.strip() for part in ids.split(",") if part.strip()}
    return pragmas


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from *path*.

    Walks the path components looking for the ``repro`` package root (as
    laid out under ``src/``); files outside the package fall back to the
    bare stem, which leaves package-scoped rules (layering, determinism)
    inert for them.
    """
    parts = list(path.parts)
    if "repro" in parts:
        idx = parts.index("repro")
        dotted = parts[idx:]
    else:
        dotted = [parts[-1]]
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__" and len(dotted) > 1:
        dotted = dotted[:-1]
    return ".".join(dotted)


@dataclass
class SourceModule:
    """One parsed Python file handed to the rules."""

    path: Path
    relpath: str
    name: str
    source: str = field(repr=False)
    tree: ast.Module = field(repr=False)
    lines: list[str] = field(repr=False)
    pragmas: dict[int, set[str]] = field(repr=False)
    #: True for ``__init__.py`` files — relative imports resolve against
    #: the module itself rather than its parent.
    is_package: bool = False

    @property
    def package(self) -> str:
        """First package component under ``repro`` ('' outside it)."""
        parts = self.name.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return ""
        return parts[1]

    def in_packages(self, *packages: str) -> bool:
        """True if this module lives in one of the given repro packages."""
        return self.package in packages

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        """True if *rule_id* is pragma-suppressed on (1-based) *lineno*."""
        ids = self.pragmas.get(lineno)
        if not ids:
            return False
        return ALL_RULES in ids or rule_id in ids

    def line_at(self, lineno: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @classmethod
    def parse(cls, path: Path, relpath: str | None = None, name: str | None = None) -> "SourceModule":
        """Read and parse *path*.

        Raises
        ------
        SyntaxError
            If the file does not parse (the engine turns this into a
            ``parse-error`` finding rather than crashing the run).
        """
        source = path.read_text(encoding="utf-8")
        return cls.from_source(
            source,
            path=path,
            relpath=relpath if relpath is not None else str(path),
            name=name if name is not None else module_name_for(path),
            is_package=path.name == "__init__.py",
        )

    @classmethod
    def from_source(
        cls,
        source: str,
        path: Path | str = "<string>",
        relpath: str = "<string>",
        name: str = "module",
        is_package: bool = False,
    ) -> "SourceModule":
        """Build a module from an in-memory source string (test helper)."""
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        return cls(
            path=Path(path),
            relpath=relpath,
            name=name,
            source=source,
            tree=tree,
            lines=lines,
            pragmas=extract_pragmas(lines),
            is_package=is_package,
        )
